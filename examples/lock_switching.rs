//! Lock switching (§3.1.1): flip a readers-writer lock between the
//! neutral design and the BRAVO distributed-readers design as the
//! workload phase changes — at run time, through Concord.
//!
//!     cargo run --release --example lock_switching

use std::sync::Arc;

use concord::Concord;
use locks::{Bravo, NeutralRwLock, RawRwLock};

fn read_phase(lock: &Arc<Bravo<NeutralRwLock>>, label: &str) {
    let before = lock.stats();
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let l = Arc::clone(lock);
        handles.push(std::thread::spawn(move || {
            locks::topo::pin_thread(t * 13 % 80);
            for _ in 0..30_000 {
                let _r = l.read();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let after = lock.stats();
    println!(
        "  [{label}] fast reads +{}, slow reads +{}",
        after.0 - before.0,
        after.1 - before.1
    );
}

fn write_phase(lock: &Arc<Bravo<NeutralRwLock>>) {
    for _ in 0..100 {
        let _w = lock.write();
    }
}

fn main() {
    let concord = Concord::new();
    let file_table = Arc::new(Bravo::new(NeutralRwLock::new()));
    concord
        .registry()
        .register_bravo("file_table", Arc::clone(&file_table));

    println!("phase 1: read-heavy, reader bias ON (BRAVO behavior)");
    read_phase(&file_table, "biased");

    println!("phase 2: write burst coming — switch to the neutral design");
    concord.switch_bravo_bias("file_table", false).unwrap();
    write_phase(&file_table);
    read_phase(&file_table, "neutral");
    let (_, _, revocations) = file_table.stats();
    println!("  (writers needed no further revocations: total = {revocations})");

    println!("phase 3: reads dominate again — switch the bias back on");
    concord.switch_bravo_bias("file_table", true).unwrap();
    read_phase(&file_table, "re-biased");
}
