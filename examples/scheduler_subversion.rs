//! Scheduler subversion (§3.1.2): tasks with long critical sections
//! subvert the scheduling goal; the scheduler-cooperative policy favors
//! declared-short critical sections — "only when needed", as the paper
//! puts it, because it is attached (and detached) at run time.
//!
//!     cargo run --release --example scheduler_subversion

use std::cell::Cell;
use std::rc::Rc;

use concord::Concord;
use ksim::{CpuId, SimBuilder};
use simlocks::SimShflLock;

fn run(with_policy: bool) -> (u64, u64) {
    let sim = SimBuilder::new().seed(9).build();
    let concord = Concord::new();
    let lock = Rc::new(SimShflLock::new(&sim));
    if with_policy {
        let loaded = concord
            .load(concord::policies::scheduler_cooperative(1_000))
            .unwrap();
        let policy = concord.make_sim_policy(&sim, &[&loaded]);
        concord.attach_sim(&lock, Rc::new(policy));
    }
    let short_ops = Rc::new(Cell::new(0u64));
    let long_ops = Rc::new(Cell::new(0u64));
    for i in 0..24u32 {
        let l = Rc::clone(&lock);
        let long = i % 2 == 0;
        let acc = if long {
            Rc::clone(&long_ops)
        } else {
            Rc::clone(&short_ops)
        };
        sim.spawn_on(CpuId((i * 5) % 80), move |t| async move {
            let cs: u64 = if long { 2_400 } else { 300 };
            while t.now() < 3_000_000 {
                // Declare the expected critical-section length (the SCL
                // context); the policy compares it against its threshold.
                l.acquire_with(&t, 0, cs).await;
                t.advance(cs).await;
                l.release(&t).await;
                acc.set(acc.get() + 1);
                t.advance(150 + t.rng_u64() % 300).await;
            }
        });
    }
    sim.run();
    (short_ops.get(), long_ops.get())
}

fn main() {
    let (short_fifo, long_fifo) = run(false);
    let (short_scl, long_scl) = run(true);
    println!("12 short-CS (300ns) vs 12 long-CS (2400ns) tasks, one lock:");
    println!("  FIFO:       short {short_fifo:>6} ops   long {long_fifo:>6} ops");
    println!("  SCL policy: short {short_scl:>6} ops   long {long_scl:>6} ops");
    println!(
        "  short-CS class gains {:.1}% while long-CS class changes {:+.1}%",
        (short_scl as f64 / short_fifo as f64 - 1.0) * 100.0,
        (long_scl as f64 / long_fifo as f64 - 1.0) * 100.0
    );
}
