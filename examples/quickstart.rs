//! Quickstart: the full C3 workflow against a real lock in ~40 lines.
//!
//!     cargo run --release --example quickstart
//!
//! A NUMA-aware shuffling policy is written (here: taken from the prebuilt
//! library), verified, stored, livepatched into a running lock, exercised
//! under contention, and reverted — without the lock ever stopping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use concord::Concord;
use locks::{RawLock, ShflLock};

fn hammer(lock: &Arc<ShflLock>, label: &str) {
    let counter = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let (l, c) = (Arc::clone(lock), Arc::clone(&counter));
        handles.push(std::thread::spawn(move || {
            // Declare a virtual placement: socket = cpu / 10.
            locks::topo::pin_thread(t * 10 % 80);
            for _ in 0..50_000 {
                let _g = l.lock();
                c.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "  [{label}] {} acquisitions, {} shuffle phases so far",
        counter.load(Ordering::Relaxed),
        lock.shuffle_count()
    );
}

fn main() {
    let concord = Concord::new();

    // A kernel lock, registered so userspace can address it by name.
    let mmap_sem = Arc::new(ShflLock::new());
    concord
        .registry()
        .register_shfl("mmap_sem", Arc::clone(&mmap_sem));

    println!("1. baseline (FIFO, no policy):");
    hammer(&mmap_sem, "stock");

    // Steps 1-5 of the paper's Fig. 1: specify, compile, verify, store.
    let spec = concord::policies::numa_aware();
    let loaded = concord.load(spec).expect("the NUMA policy verifies");
    println!(
        "2. policy `{}` verified and pinned at policies/{}/cmp_node",
        loaded.name, loaded.name
    );

    // Step 6: livepatch the running lock.
    let handle = concord.attach("mmap_sem", &loaded).expect("attach");
    println!("3. attached: live patches = {:?}", concord.live_patches());
    hammer(&mmap_sem, "numa policy");

    // Revert.
    concord.detach(handle).expect("detach");
    println!("4. detached: live patches = {:?}", concord.live_patches());
    hammer(&mmap_sem, "stock again");
}
