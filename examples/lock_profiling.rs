//! Dynamic lock profiling (§3.2): profile *one* lock instance while the
//! rest of the system runs unobserved — the granularity `lockstat`
//! cannot give.
//!
//!     cargo run --release --example lock_profiling

use std::sync::Arc;

use concord::profiler::Profiler;
use concord::Concord;
use locks::{RawLock, ShflLock};

fn main() {
    let concord = Concord::new();

    // Three kernel locks; we suspect only `dcache` matters to our app.
    let names = ["mmap_sem", "dcache", "futex_q"];
    let locks: Vec<Arc<ShflLock>> = names
        .iter()
        .map(|n| {
            let l = Arc::new(ShflLock::new());
            concord.registry().register_shfl(n, Arc::clone(&l));
            l
        })
        .collect();

    // Profile just the suspect.
    let mut profiler = Profiler::attach(&concord, &["dcache"]).unwrap();

    // A mixed workload: dcache is hot and held long, the others are quiet.
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let ls: Vec<_> = locks.iter().map(Arc::clone).collect();
        handles.push(std::thread::spawn(move || {
            locks::topo::pin_thread(t * 20 % 80);
            for i in 0..20_000u64 {
                {
                    let _g = ls[1].lock(); // dcache: hot.
                    std::hint::spin_loop();
                }
                if i % 50 == 0 {
                    let _g = ls[0].lock(); // mmap_sem: rare.
                }
                if i % 200 == 0 {
                    let _g = ls[2].lock(); // futex_q: rarer.
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    println!("{}", profiler.report());
    let p = profiler.profile("dcache").unwrap();
    println!(
        "dcache contention ratio: {:.1}% | wait p99 ≈ {} ns | hold max = {} ns",
        p.contention_ratio() * 100.0,
        p.wait_hist().quantile(0.99),
        p.hold_hist().max()
    );

    profiler.detach(&concord).expect("profiler detaches");
    println!("profiler detached; locks run unobserved again");
}
