//! Priority boosting (§3.1.1) on the simulated 8-socket machine: two
//! latency-critical tasks among thirty contenders get their annotated
//! priority honored by a verified bytecode policy.
//!
//!     cargo run --release --example priority_boost

use std::cell::Cell;
use std::rc::Rc;

use concord::Concord;
use ksim::{CpuId, SimBuilder};
use simlocks::SimShflLock;

fn run(with_policy: bool) -> (f64, f64) {
    let sim = SimBuilder::new().seed(3).build();
    let concord = Concord::new();
    let lock = Rc::new(SimShflLock::new(&sim));
    if with_policy {
        let loaded = concord.load(concord::policies::priority_boost()).unwrap();
        let policy = concord.make_sim_policy(&sim, &[&loaded]);
        concord.attach_sim(&lock, Rc::new(policy));
    }
    let hi = Rc::new(Cell::new((0u64, 0u64)));
    let lo = Rc::new(Cell::new((0u64, 0u64)));
    for i in 0..30u32 {
        let l = Rc::clone(&lock);
        let critical = i < 2;
        let acc = if critical {
            Rc::clone(&hi)
        } else {
            Rc::clone(&lo)
        };
        sim.spawn_on(CpuId((i * 7) % 80), move |t| async move {
            while t.now() < 3_000_000 {
                let start = t.now();
                // The C3 context channel: annotate this task's priority.
                l.acquire_with(&t, if critical { 5 } else { 0 }, 0).await;
                acc.set((acc.get().0 + (t.now() - start), acc.get().1 + 1));
                t.advance(300).await;
                l.release(&t).await;
                t.advance(200 + t.rng_u64() % 500).await;
            }
        });
    }
    sim.run();
    let mean = |c: &Rc<Cell<(u64, u64)>>| c.get().0 as f64 / c.get().1.max(1) as f64;
    (mean(&hi), mean(&lo))
}

fn main() {
    let (hi_fifo, lo_fifo) = run(false);
    let (hi_pol, lo_pol) = run(true);
    println!("mean lock-wait per acquisition (ns), 2 critical + 28 normal tasks:");
    println!("  FIFO lock:       critical {hi_fifo:>8.0}   normal {lo_fifo:>8.0}");
    println!("  priority policy: critical {hi_pol:>8.0}   normal {lo_pol:>8.0}");
    println!(
        "  critical tasks wait {:.2}× less; normal tasks pay {:.1}%",
        hi_fifo / hi_pol,
        (lo_pol / lo_fifo - 1.0) * 100.0
    );
}
