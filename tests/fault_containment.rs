//! End-to-end fault containment: a policy that faults at runtime must
//! degrade to the unpatched lock's behavior, trip its circuit breaker,
//! get quarantined by a livepatch revert — and none of it may cost the
//! lock its invariants (mutual exclusion, queue-node preservation) or
//! the simulator its bit-for-bit determinism.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use cbpf::fault::{FaultInjector, FaultPlan};
use cbpf::FaultKind;
use concord::{Breaker, BreakerConfig, BreakerState, Concord, ContainedPolicy};
use ksim::{CpuId, SimBuilder, SimStats};
use locks::hooks::{CmpNodeCtx, HookKind, NodeView};
use locks::{RawLock, ShflLock};
use proptest::prelude::*;
use simlocks::SimShflLock;

fn view(cpu: u32) -> NodeView {
    NodeView {
        tid: u64::from(cpu) + 1,
        cpu,
        socket: cpu / 10,
        prio: 0,
        cs_hint: 0,
        held_locks: 0,
        wait_start_ns: 0,
    }
}

/// Outcome of one simulated containment run, everything that must be
/// bit-identical across replays of the same seed.
#[derive(Clone, PartialEq, Eq, Debug)]
struct ChainOutcome {
    stats: SimStats,
    moves: u64,
    trips: u64,
    faults: [u64; 4],
    quarantined_at: u64,
    quarantines: usize,
}

/// The full chain under the DES: healthy policy → injected faults →
/// fail-safe decisions → breaker trip → quarantine (revert to FIFO) →
/// recovery, with a supervisor task playing `sweep_breakers` in virtual
/// time.
fn chain_run(seed: u64) -> ChainOutcome {
    let sim = SimBuilder::new().seed(seed).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    let concord = Concord::new();
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();
    let breaker = Arc::new(Breaker::new(BreakerConfig {
        threshold: 3,
        cooldown_ns: None,
    }));
    let injector = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
        60,
        FaultKind::Helper,
    )));
    let policy = concord
        .make_sim_policy(&sim, &[&loaded])
        .with_containment(Arc::clone(&breaker), Some(injector));
    concord.attach_sim(&lock, Rc::new(policy));

    for i in 0..16u32 {
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId((i % 8) * 10 + i / 8), move |t| async move {
            for _ in 0..25 {
                l.acquire(&t).await;
                t.advance(200 + t.rng_u64() % 100).await;
                l.release(&t).await;
                t.advance(t.rng_u64() % 400).await;
            }
        });
    }
    // The supervisor: polls the breaker on a virtual-time cadence and
    // quarantines the tripped policy, exactly what `sweep_breakers` does
    // for real locks.
    let quarantined_at = Rc::new(Cell::new(0u64));
    {
        let (l, b, q) = (Rc::clone(&lock), Arc::clone(&breaker), Rc::clone(&quarantined_at));
        let concord = Concord::new();
        let registry_probe = concord; // Records quarantines; owned by the task.
        sim.spawn_on(CpuId(79), move |t| async move {
            for _ in 0..400 {
                t.advance(1_000).await;
                if b.wants_quarantine() {
                    let rec = registry_probe.quarantine_sim(
                        &l,
                        "sim_lock",
                        HookKind::CmpNode,
                        "numa_aware",
                        b.reason(),
                        t.now(),
                    );
                    assert!(rec.reason.contains("helper"));
                    q.set(t.now());
                    break;
                }
            }
        });
    }
    let stats = sim.run();
    ChainOutcome {
        stats,
        moves: lock.move_count(),
        trips: breaker.trips(),
        faults: breaker.faults_by_kind(),
        quarantined_at: quarantined_at.get(),
        quarantines: 1, // asserted below via quarantined_at != 0
    }
}

#[test]
fn sim_chain_faults_trip_quarantine_and_recover() {
    let out = chain_run(7);
    assert!(out.moves > 0, "healthy phase shuffled before the faults");
    assert_eq!(out.trips, 1, "breaker tripped exactly once");
    assert!(
        out.faults[FaultKind::Helper.index()] >= 3,
        "threshold-many consecutive injected faults were recorded"
    );
    assert!(
        out.quarantined_at > 0,
        "the supervisor quarantined the tripped policy in virtual time"
    );
    // Recovery: every task still finished every acquisition (16 workers +
    // 1 supervisor), on fail-safe decisions and then on plain FIFO.
    assert_eq!(out.stats.tasks_completed, 17);
}

#[test]
fn sim_chain_replays_bit_identically() {
    let a = chain_run(42);
    let b = chain_run(42);
    assert_eq!(a, b, "same seed ⇒ identical trace, faults and quarantine");
    let c = chain_run(43);
    assert_ne!(
        a.stats.trace_hash, c.stats.trace_hash,
        "different seed ⇒ different trace"
    );
}

#[test]
fn sim_breaker_with_cooldown_rearms_after_transient_fault() {
    let sim = SimBuilder::new().seed(9).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    let concord = Concord::new();
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();
    let breaker = Arc::new(Breaker::new(BreakerConfig {
        threshold: 1,
        cooldown_ns: Some(20_000),
    }));
    // One transient fault: trips the breaker, then the half-open probe
    // succeeds and the policy resumes.
    let injector = Arc::new(FaultInjector::new(FaultPlan::on_invocation(
        10,
        FaultKind::Trap,
    )));
    let policy = concord
        .make_sim_policy(&sim, &[&loaded])
        .with_containment(Arc::clone(&breaker), Some(injector));
    concord.attach_sim(&lock, Rc::new(policy));
    for i in 0..8u32 {
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(i * 10), move |t| async move {
            for _ in 0..60 {
                l.acquire(&t).await;
                t.advance(300).await;
                l.release(&t).await;
                t.advance(100).await;
            }
        });
    }
    sim.run();
    assert_eq!(breaker.trips(), 1, "the transient fault tripped once");
    assert_eq!(
        breaker.state(),
        BreakerState::Closed,
        "cooldown elapsed and the probe re-armed the breaker"
    );
    assert!(!breaker.wants_quarantine());
}

#[test]
fn real_lock_stays_mutually_exclusive_while_policy_faults() {
    // A counter that would corrupt under racing increments; the guard is
    // the lock under test with an always-faulting policy attached.
    struct Racy(std::cell::UnsafeCell<u64>);
    // SAFETY: only accessed under the ShflLock guard, which is exactly
    // the property the test asserts.
    unsafe impl Sync for Racy {}

    let c = Concord::new();
    let lock = Arc::new(ShflLock::new());
    c.registry().register_shfl("hot", Arc::clone(&lock));
    let loaded = c.load(concord::policies::numa_aware()).unwrap();
    let inj = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
        1,
        FaultKind::Trap,
    )));
    let (_h, breaker) = c
        .attach_contained_with_injector(
            "hot",
            &loaded,
            BreakerConfig {
                threshold: 1_000_000, // Never trips: faults keep flowing.
                cooldown_ns: None,
            },
            Some(inj),
        )
        .unwrap();

    const THREADS: u32 = 4;
    const ITERS: u64 = 2_000;
    let counter = Arc::new(Racy(std::cell::UnsafeCell::new(0)));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let (l, ctr) = (Arc::clone(&lock), Arc::clone(&counter));
        handles.push(std::thread::spawn(move || {
            locks::topo::pin_thread((t * 10) % 80);
            for _ in 0..ITERS {
                let _g = l.lock();
                // SAFETY: under the guard (the assertion of this test).
                unsafe { *ctr.0.get() += 1 };
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Queue-node preservation is asserted by shuffle()'s debug invariants
    // while this contended workload runs; the count proves exclusion.
    assert_eq!(
        unsafe { *counter.0.get() },
        u64::from(THREADS) * ITERS,
        "no lost increments despite every policy invocation faulting"
    );
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert!(c.sweep_breakers().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fault injected at an arbitrary invocation with an arbitrary
    /// kind never breaks the DES: all tasks complete all acquisitions
    /// and the trace replays bit-identically.
    #[test]
    fn sim_fault_at_arbitrary_invocation_keeps_determinism(
        seed in any::<u64>(),
        fault_at in 1u64..120,
        kind_ix in 0usize..4,
    ) {
        let kind = FaultKind::ALL[kind_ix];
        let run = || {
            let sim = SimBuilder::new().seed(seed).build();
            let lock = Rc::new(SimShflLock::new(&sim));
            let concord = Concord::new();
            let loaded = concord.load(concord::policies::numa_aware()).unwrap();
            let breaker = Arc::new(Breaker::new(BreakerConfig::default()));
            let injector = Arc::new(FaultInjector::new(
                FaultPlan::from_invocation(fault_at, kind),
            ));
            let policy = concord
                .make_sim_policy(&sim, &[&loaded])
                .with_containment(Arc::clone(&breaker), Some(injector));
            concord.attach_sim(&lock, Rc::new(policy));
            let in_cs = Rc::new(Cell::new(false));
            for i in 0..8u32 {
                let (l, flag) = (Rc::clone(&lock), Rc::clone(&in_cs));
                sim.spawn_on(CpuId(i * 10), move |t| async move {
                    for _ in 0..10 {
                        l.acquire(&t).await;
                        assert!(!flag.get(), "two tasks inside the critical section");
                        flag.set(true);
                        t.advance(150 + t.rng_u64() % 50).await;
                        flag.set(false);
                        l.release(&t).await;
                        t.advance(t.rng_u64() % 200).await;
                    }
                });
            }
            let stats = sim.run();
            prop_assert_eq!(stats.tasks_completed, 8, "every task finished");
            Ok((stats, breaker.trips(), breaker.faults_by_kind()))
        };
        let a = run()?;
        let b = run()?;
        prop_assert_eq!(a, b, "same seed and plan ⇒ identical replay");
    }

    /// Whenever enough consecutive faults trip a breaker on a real lock,
    /// the quarantine sweep always ends with the patch reverted, the hook
    /// vacant, and a record explaining why.
    #[test]
    fn tripped_breaker_always_ends_in_a_reverted_patch(
        fault_at in 1u64..8,
        threshold in 1u32..5,
        kind_ix in 0usize..4,
    ) {
        let kind = FaultKind::ALL[kind_ix];
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("l", Arc::clone(&lock));
        let loaded = c.load(concord::policies::numa_aware()).unwrap();
        let inj = Arc::new(FaultInjector::new(FaultPlan::from_invocation(fault_at, kind)));
        let (_h, breaker) = c
            .attach_contained_with_injector(
                "l",
                &loaded,
                BreakerConfig { threshold, cooldown_ns: None },
                Some(inj),
            )
            .unwrap();
        // Drive the hook as the shuffle phase would, enough times to pass
        // the fault onset plus the trip threshold.
        let ctx = CmpNodeCtx { lock_id: lock.id(), shuffler: view(0), curr: view(10) };
        for _ in 0..(fault_at + u64::from(threshold) + 2) {
            lock.hooks().eval_cmp_node(&ctx);
        }
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        let records = c.sweep_breakers();
        prop_assert_eq!(records.len(), 1);
        prop_assert!(records[0].reason.contains("breaker tripped"));
        prop_assert!(c.live_patches().is_empty(), "patch reverted");
        prop_assert!(!lock.hooks().is_active(HookKind::CmpNode), "hook vacant");
        prop_assert_eq!(c.registry().quarantines("l").len(), 1);
        // Once quarantined, the lock serves vacant-slot decisions.
        prop_assert!(!lock.hooks().eval_cmp_node(&ctx));
    }
}

/// The `ContainedPolicy` wrapper (sim-side containment without bytecode)
/// degrades each hook class to its vacant-slot default once open.
#[test]
fn contained_wrapper_serves_fail_safe_defaults_when_open() {
    let sim = SimBuilder::new().build();
    let breaker = Arc::new(Breaker::new(BreakerConfig {
        threshold: 1,
        cooldown_ns: None,
    }));
    let inj = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
        1,
        FaultKind::Map,
    )));
    let p = ContainedPolicy::new(
        &sim,
        Rc::new(simlocks::NativePolicy::numa_aware()),
        Arc::clone(&breaker),
        Some(inj),
    );
    use simlocks::policy::SimPolicy;
    let ctx = CmpNodeCtx {
        lock_id: 1,
        shuffler: view(0),
        curr: view(0),
    };
    let (d, _) = p.cmp_node(&ctx); // Faults → fail-safe "no reorder".
    assert!(!d, "NUMA policy would have said true; fail-safe says false");
    assert_eq!(breaker.state(), BreakerState::Open);
    assert!(breaker.wants_quarantine());
    assert!(breaker.reason().contains("map"));
}
