//! A corpus of hostile policies that the Concord workflow must reject —
//! each one written the way an adversarial (or merely buggy) user would,
//! in assembly, and each checked for the *right* rejection reason.

use cbpf::asm::assemble;
use cbpf::ctx::CtxLayout;
use cbpf::error::DecodeError;
use cbpf::insn::{decode, RawInsn};
use cbpf::map::{Map, MapDef, MapKind, MAX_MAP_ENTRIES};
use cbpf::store::VerifiedProgram;
use cbpf::verifier::HookRules;
use concord::{Concord, ConcordError, PolicySpec};
use locks::hooks::HookKind;

fn rejects(hook: HookKind, asm: &str) -> String {
    let c = Concord::new();
    match c.load(PolicySpec::from_asm("hostile", hook, asm)) {
        Err(ConcordError::Verify(e)) => e.to_string(),
        Err(other) => panic!("expected verifier rejection, got: {other}"),
        Ok(_) => panic!("hostile policy was accepted:\n{asm}"),
    }
}

#[test]
fn infinite_loop() {
    let msg = rejects(HookKind::CmpNode, "top:\n mov r0, 0\n ja top\n exit");
    assert!(msg.contains("backward"), "{msg}");
}

#[test]
fn self_loop() {
    let msg = rejects(HookKind::CmpNode, "mov r0, 0\nx:\n jeq r0, 0, x\n exit");
    assert!(msg.contains("backward"), "{msg}");
}

#[test]
fn stack_out_of_bounds_write() {
    let msg = rejects(
        HookKind::CmpNode,
        "mov r1, 1\n stxdw [r10-520], r1\n mov r0, 0\n exit",
    );
    assert!(msg.contains("out of bounds"), "{msg}");
}

#[test]
fn stack_uninitialized_read() {
    let msg = rejects(HookKind::CmpNode, "ldxdw r0, [r10-8]\n exit");
    assert!(msg.contains("uninitialized stack"), "{msg}");
}

#[test]
fn uninitialized_register() {
    let msg = rejects(HookKind::CmpNode, "mov r0, r6\n exit");
    assert!(msg.contains("uninitialized r6"), "{msg}");
}

#[test]
fn missing_return_value() {
    let msg = rejects(HookKind::CmpNode, "exit");
    assert!(msg.contains("r0"), "{msg}");
}

#[test]
fn ctx_out_of_bounds_read() {
    // Way past the cmp_node context.
    let msg = rejects(HookKind::CmpNode, "ldxdw r0, [r1+4096]\n exit");
    assert!(msg.contains("matches no field"), "{msg}");
}

#[test]
fn ctx_write_forbidden() {
    // Writing any context field from a decision hook is refused (all
    // fields are read-only AND the hook bans ctx writes).
    let msg = rejects(
        HookKind::CmpNode,
        "mov r2, 0\n stxdw [r1], r2\n mov r0, 0\n exit",
    );
    assert!(
        msg.contains("read-only") || msg.contains("forbids context writes"),
        "{msg}"
    );
}

#[test]
fn misaligned_ctx_read() {
    let msg = rejects(HookKind::CmpNode, "ldxw r0, [r1+2]\n exit");
    assert!(msg.contains("matches no field"), "{msg}");
}

#[test]
fn frame_pointer_clobber() {
    let msg = rejects(HookKind::CmpNode, "mov r10, 0\n mov r0, 0\n exit");
    assert!(msg.contains("frame pointer"), "{msg}");
}

#[test]
fn pointer_arithmetic_escape() {
    // Trying to fabricate a pointer from arithmetic on r10.
    let msg = rejects(
        HookKind::CmpNode,
        "mov r1, r10\n mul r1, 8\n mov r0, 0\n exit",
    );
    assert!(msg.contains("pointer"), "{msg}");
}

#[test]
fn variable_offset_stack_access() {
    let msg = rejects(
        HookKind::CmpNode,
        "call cpu_id\n mov r1, r10\n add r1, r0\n mov r2, 0\n stxdw [r1-8], r2\n mov r0, 0\n exit",
    );
    assert!(msg.contains("pointer"), "{msg}");
}

#[test]
fn division_by_constant_zero() {
    let msg = rejects(HookKind::CmpNode, "mov r0, 7\n div r0, 0\n exit");
    assert!(msg.contains("zero"), "{msg}");
}

#[test]
fn unknown_helper() {
    let msg = rejects(HookKind::CmpNode, "call 777\n exit");
    assert!(msg.contains("unknown helper"), "{msg}");
}

#[test]
fn trace_in_decision_hook() {
    let msg = rejects(
        HookKind::CmpNode,
        "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 1\n call trace_printk\n exit",
    );
    assert!(msg.contains("helper not allowed"), "{msg}");
}

#[test]
fn trace_emit_zero_length_rejected() {
    // An empty emit is meaningless; the verifier refuses it statically.
    let msg = rejects(
        HookKind::CmpNode,
        "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 0\n call trace_emit\n mov r0, 0\n exit",
    );
    assert!(msg.contains("trace_emit payload length"), "{msg}");
}

#[test]
fn trace_emit_oversized_payload_rejected() {
    // 17 bytes: one past the trace record's inline payload capacity.
    let msg = rejects(
        HookKind::CmpNode,
        "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 17\n call trace_emit\n mov r0, 0\n exit",
    );
    assert!(msg.contains("trace_emit payload length"), "{msg}");
}

#[test]
fn trace_emit_at_capacity_accepted_in_decision_hook() {
    // Unlike trace_printk (rejected above), trace_emit is decision-hook
    // safe: bounded payload, fixed weight, lock-free ring. A full
    // 16-byte payload is the accept boundary.
    let c = Concord::new();
    let asm = "mov r3, 0\n stxdw [r10-8], r3\n stxdw [r10-16], r3\n \
               mov r1, r10\n add r1, -16\n mov r2, 16\n call trace_emit\n mov r0, 0\n exit";
    assert!(
        c.load(PolicySpec::from_asm("emit16", HookKind::CmpNode, asm))
            .is_ok(),
        "16-byte trace_emit must verify in a decision hook"
    );
}

#[test]
fn oversized_decision_policy() {
    // 200 no-ops blow the 128-instruction budget for decision hooks.
    let mut asm = String::new();
    for _ in 0..200 {
        asm.push_str("mov r0, 0\n");
    }
    asm.push_str("exit");
    let msg = rejects(HookKind::CmpNode, &asm);
    assert!(msg.contains("instruction limit"), "{msg}");
    // The same program is fine as a profiling hook (512 budget).
    let c = Concord::new();
    assert!(c
        .load(PolicySpec::from_asm("big", HookKind::LockAcquired, &asm))
        .is_ok());
}

#[test]
fn clobbered_register_after_helper() {
    let msg = rejects(
        HookKind::CmpNode,
        "mov r3, 5\n call cpu_id\n mov r0, r3\n exit",
    );
    assert!(msg.contains("uninitialized r3"), "{msg}");
}

#[test]
fn fall_off_end() {
    let msg = rejects(HookKind::CmpNode, "mov r0, 0");
    assert!(msg.contains("fall off"), "{msg}");
}

// ---------------------------------------------------------------------------
// The optimized execution form is an internal representation only. The
// fused superinstructions produced by `Program::prepare()` (`Nop`,
// `Alu2`, `Load2`, `CallMapLookupBr`) must be unreachable from every
// external input channel: the assembler, the binary decoder, and the
// map/program constructors.
// ---------------------------------------------------------------------------

#[test]
fn fused_mnemonics_do_not_assemble() {
    // No assembly spelling names a fused form; a user cannot hand the
    // loader pre-fused code and skip the optimizer's invariants.
    for asm in [
        "nop\n exit",
        "alu2 r0, r1\n exit",
        "load2 r0, [r10-8], r1, [r10-16]\n exit",
        "call_map_lookup_br r1, ok\nok:\n exit",
        "map_lookup_br r1, 0\n exit",
    ] {
        let err = assemble(asm).expect_err(asm).to_string();
        assert!(err.contains("unknown mnemonic"), "{asm}: {err}");
    }
}

#[test]
fn raw_bytecode_cannot_name_fused_opcodes() {
    // `decode` returns the public `Insn` enum, which has no fused
    // variants — so fused forms are unrepresentable by construction.
    // Sweep the whole opcode byte space to pin down that everything
    // outside the public ISA is rejected, not silently mapped.
    let mut accepted = 0u32;
    for op in 0..=u8::MAX {
        let raw = [RawInsn {
            op,
            ..Default::default()
        }];
        if decode(&raw).is_ok() {
            accepted += 1;
        }
    }
    assert!(
        accepted < 128,
        "opcode space unexpectedly permissive: {accepted}/256 bytes decode"
    );
    // Class 0x06 is unassigned in this ISA and 0xff's ALU sub-op does
    // not exist; both must fail loudly.
    for hostile in [0x06u8, 0xfe, 0xff] {
        let raw = [RawInsn {
            op: hostile,
            ..Default::default()
        }];
        assert!(
            matches!(decode(&raw), Err(DecodeError::BadOpcode { pc: 0, op }) if op == hostile),
            "opcode {hostile:#04x} must be rejected"
        );
    }
}

#[test]
#[should_panic(expected = "over the 65536 cap")]
fn oversized_map_capacity_is_unconstructible() {
    // Slab sizing happens once, at construction; capacities beyond the
    // cap are refused outright rather than clamped.
    let _ = Map::new(MapDef {
        name: "huge".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: MAX_MAP_ENTRIES + 1,
    });
}

#[test]
fn tampered_programs_cannot_reach_the_fast_path() {
    // `VerifiedProgram` is the only currency the object store and hook
    // tables accept, its fields are private, and its sole constructor
    // runs the verifier before lowering — so a program that fails
    // verification can never be prepared through the public API, and a
    // prepared form can never be swapped in after the fact.
    let hostile = assemble("ldxdw r0, [r10-8]\n exit").unwrap();
    assert!(
        VerifiedProgram::new(hostile, &CtxLayout::empty(), &HookRules::permissive()).is_err(),
        "unverifiable program must not yield a VerifiedProgram"
    );
}

#[test]
fn dead_branch_does_not_hide_errors() {
    // The bad access sits on a branch that IS reachable (cpu_id unknown).
    let msg = rejects(
        HookKind::CmpNode,
        "call cpu_id\n jeq r0, 0, ok\n ldxdw r0, [r10-16]\nok:\n mov r0, 0\n exit",
    );
    assert!(msg.contains("uninitialized stack"), "{msg}");
}
