//! A corpus of hostile policies that the Concord workflow must reject —
//! each one written the way an adversarial (or merely buggy) user would,
//! in assembly, and each checked for the *right* rejection reason.

use cbpf::asm::assemble;
use cbpf::ctx::CtxLayout;
use cbpf::error::DecodeError;
use cbpf::insn::{decode, RawInsn};
use cbpf::map::{Map, MapDef, MapKind, MAX_MAP_ENTRIES};
use cbpf::store::VerifiedProgram;
use cbpf::verifier::HookRules;
use concord::{Concord, ConcordError, PolicySpec};
use locks::hooks::HookKind;

fn rejects(hook: HookKind, asm: &str) -> String {
    let c = Concord::new();
    match c.load(PolicySpec::from_asm("hostile", hook, asm)) {
        Err(ConcordError::Verify(e)) => e.to_string(),
        Err(other) => panic!("expected verifier rejection, got: {other}"),
        Ok(_) => panic!("hostile policy was accepted:\n{asm}"),
    }
}

#[test]
fn infinite_loop() {
    let msg = rejects(HookKind::CmpNode, "top:\n mov r0, 0\n ja top\n exit");
    assert!(msg.contains("backward"), "{msg}");
}

#[test]
fn self_loop() {
    let msg = rejects(HookKind::CmpNode, "mov r0, 0\nx:\n jeq r0, 0, x\n exit");
    assert!(msg.contains("backward"), "{msg}");
}

#[test]
fn stack_out_of_bounds_write() {
    let msg = rejects(
        HookKind::CmpNode,
        "mov r1, 1\n stxdw [r10-520], r1\n mov r0, 0\n exit",
    );
    assert!(msg.contains("out of bounds"), "{msg}");
}

#[test]
fn stack_uninitialized_read() {
    let msg = rejects(HookKind::CmpNode, "ldxdw r0, [r10-8]\n exit");
    assert!(msg.contains("uninitialized stack"), "{msg}");
}

#[test]
fn uninitialized_register() {
    let msg = rejects(HookKind::CmpNode, "mov r0, r6\n exit");
    assert!(msg.contains("uninitialized r6"), "{msg}");
}

#[test]
fn missing_return_value() {
    let msg = rejects(HookKind::CmpNode, "exit");
    assert!(msg.contains("r0"), "{msg}");
}

#[test]
fn ctx_out_of_bounds_read() {
    // Way past the cmp_node context.
    let msg = rejects(HookKind::CmpNode, "ldxdw r0, [r1+4096]\n exit");
    assert!(msg.contains("matches no field"), "{msg}");
}

#[test]
fn ctx_write_forbidden() {
    // Writing any context field from a decision hook is refused (all
    // fields are read-only AND the hook bans ctx writes).
    let msg = rejects(
        HookKind::CmpNode,
        "mov r2, 0\n stxdw [r1], r2\n mov r0, 0\n exit",
    );
    assert!(
        msg.contains("read-only") || msg.contains("forbids context writes"),
        "{msg}"
    );
}

#[test]
fn misaligned_ctx_read() {
    let msg = rejects(HookKind::CmpNode, "ldxw r0, [r1+2]\n exit");
    assert!(msg.contains("matches no field"), "{msg}");
}

#[test]
fn frame_pointer_clobber() {
    let msg = rejects(HookKind::CmpNode, "mov r10, 0\n mov r0, 0\n exit");
    assert!(msg.contains("frame pointer"), "{msg}");
}

#[test]
fn pointer_arithmetic_escape() {
    // Trying to fabricate a pointer from arithmetic on r10.
    let msg = rejects(
        HookKind::CmpNode,
        "mov r1, r10\n mul r1, 8\n mov r0, 0\n exit",
    );
    assert!(msg.contains("pointer"), "{msg}");
}

#[test]
fn variable_offset_stack_access() {
    let msg = rejects(
        HookKind::CmpNode,
        "call cpu_id\n mov r1, r10\n add r1, r0\n mov r2, 0\n stxdw [r1-8], r2\n mov r0, 0\n exit",
    );
    assert!(msg.contains("pointer"), "{msg}");
}

#[test]
fn division_by_constant_zero() {
    let msg = rejects(HookKind::CmpNode, "mov r0, 7\n div r0, 0\n exit");
    assert!(msg.contains("zero"), "{msg}");
}

#[test]
fn unknown_helper() {
    let msg = rejects(HookKind::CmpNode, "call 777\n exit");
    assert!(msg.contains("unknown helper"), "{msg}");
}

#[test]
fn trace_in_decision_hook() {
    let msg = rejects(
        HookKind::CmpNode,
        "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 1\n call trace_printk\n exit",
    );
    assert!(msg.contains("helper not allowed"), "{msg}");
}

#[test]
fn trace_emit_zero_length_rejected() {
    // An empty emit is meaningless; the verifier refuses it statically.
    let msg = rejects(
        HookKind::CmpNode,
        "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 0\n call trace_emit\n mov r0, 0\n exit",
    );
    assert!(msg.contains("trace_emit payload length"), "{msg}");
}

#[test]
fn trace_emit_oversized_payload_rejected() {
    // 17 bytes: one past the trace record's inline payload capacity.
    let msg = rejects(
        HookKind::CmpNode,
        "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 17\n call trace_emit\n mov r0, 0\n exit",
    );
    assert!(msg.contains("trace_emit payload length"), "{msg}");
}

#[test]
fn trace_emit_at_capacity_accepted_in_decision_hook() {
    // Unlike trace_printk (rejected above), trace_emit is decision-hook
    // safe: bounded payload, fixed weight, lock-free ring. A full
    // 16-byte payload is the accept boundary.
    let c = Concord::new();
    let asm = "mov r3, 0\n stxdw [r10-8], r3\n stxdw [r10-16], r3\n \
               mov r1, r10\n add r1, -16\n mov r2, 16\n call trace_emit\n mov r0, 0\n exit";
    assert!(
        c.load(PolicySpec::from_asm("emit16", HookKind::CmpNode, asm))
            .is_ok(),
        "16-byte trace_emit must verify in a decision hook"
    );
}

#[test]
fn oversized_decision_policy() {
    // 200 no-ops blow the 128-instruction budget for decision hooks.
    let mut asm = String::new();
    for _ in 0..200 {
        asm.push_str("mov r0, 0\n");
    }
    asm.push_str("exit");
    let msg = rejects(HookKind::CmpNode, &asm);
    assert!(msg.contains("instruction limit"), "{msg}");
    // The same program is fine as a profiling hook (512 budget).
    let c = Concord::new();
    assert!(c
        .load(PolicySpec::from_asm("big", HookKind::LockAcquired, &asm))
        .is_ok());
}

#[test]
fn clobbered_register_after_helper() {
    let msg = rejects(
        HookKind::CmpNode,
        "mov r3, 5\n call cpu_id\n mov r0, r3\n exit",
    );
    assert!(msg.contains("uninitialized r3"), "{msg}");
}

#[test]
fn fall_off_end() {
    let msg = rejects(HookKind::CmpNode, "mov r0, 0");
    assert!(msg.contains("fall off"), "{msg}");
}

// ---------------------------------------------------------------------------
// The optimized execution form is an internal representation only. The
// fused superinstructions produced by `Program::prepare()` (`Nop`,
// `Alu2`, `Load2`, `CallMapLookupBr`) must be unreachable from every
// external input channel: the assembler, the binary decoder, and the
// map/program constructors.
// ---------------------------------------------------------------------------

#[test]
fn fused_mnemonics_do_not_assemble() {
    // No assembly spelling names a fused form; a user cannot hand the
    // loader pre-fused code and skip the optimizer's invariants.
    for asm in [
        "nop\n exit",
        "alu2 r0, r1\n exit",
        "load2 r0, [r10-8], r1, [r10-16]\n exit",
        "call_map_lookup_br r1, ok\nok:\n exit",
        "map_lookup_br r1, 0\n exit",
    ] {
        let err = assemble(asm).expect_err(asm).to_string();
        assert!(err.contains("unknown mnemonic"), "{asm}: {err}");
    }
}

#[test]
fn raw_bytecode_cannot_name_fused_opcodes() {
    // `decode` returns the public `Insn` enum, which has no fused
    // variants — so fused forms are unrepresentable by construction.
    // Sweep the whole opcode byte space to pin down that everything
    // outside the public ISA is rejected, not silently mapped.
    let mut accepted = 0u32;
    for op in 0..=u8::MAX {
        let raw = [RawInsn {
            op,
            ..Default::default()
        }];
        if decode(&raw).is_ok() {
            accepted += 1;
        }
    }
    assert!(
        accepted < 128,
        "opcode space unexpectedly permissive: {accepted}/256 bytes decode"
    );
    // Class 0x06 is unassigned in this ISA and 0xff's ALU sub-op does
    // not exist; both must fail loudly.
    for hostile in [0x06u8, 0xfe, 0xff] {
        let raw = [RawInsn {
            op: hostile,
            ..Default::default()
        }];
        assert!(
            matches!(decode(&raw), Err(DecodeError::BadOpcode { pc: 0, op }) if op == hostile),
            "opcode {hostile:#04x} must be rejected"
        );
    }
}

#[test]
#[should_panic(expected = "over the 65536 cap")]
fn oversized_map_capacity_is_unconstructible() {
    // Slab sizing happens once, at construction; capacities beyond the
    // cap are refused outright rather than clamped.
    let _ = Map::new(MapDef {
        name: "huge".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: MAX_MAP_ENTRIES + 1,
    });
}

#[test]
fn tampered_programs_cannot_reach_the_fast_path() {
    // `VerifiedProgram` is the only currency the object store and hook
    // tables accept, its fields are private, and its sole constructor
    // runs the verifier before lowering — so a program that fails
    // verification can never be prepared through the public API, and a
    // prepared form can never be swapped in after the fact.
    let hostile = assemble("ldxdw r0, [r10-8]\n exit").unwrap();
    assert!(
        VerifiedProgram::new(hostile, &CtxLayout::empty(), &HookRules::permissive()).is_err(),
        "unverifiable program must not yield a VerifiedProgram"
    );
}

#[test]
fn dead_branch_does_not_hide_errors() {
    // The bad access sits on a branch that IS reachable (cpu_id unknown).
    let msg = rejects(
        HookKind::CmpNode,
        "call cpu_id\n jeq r0, 0, ok\n ldxdw r0, [r10-16]\nok:\n mov r0, 0\n exit",
    );
    assert!(msg.contains("uninitialized stack"), "{msg}");
}

// ---------------------------------------------------------------------------
// Compiled-policy wire artifacts (`cbpf::wire`). The artifact is
// evidence, not authority: every mutation of the bytes must fail loudly
// (checksum), every context drift must fail loudly (digest), and even a
// byte-perfect forgery must still pass the verifier on the load host
// before anything runnable comes back.
// ---------------------------------------------------------------------------

mod wire_support {
    /// Independent reimplementation of the wire digest from its spec
    /// (dual-basis FNV-1a, second stream rotates each byte by 17, length
    /// folded at the end) so these tests can forge checksums and prove
    /// each rejection is its own check — not just a ride on the
    /// checksum. Drifting from `cbpf::wire` breaks the forgery tests,
    /// which is exactly the point: the encoding is a stable contract.
    pub fn digest(bytes: &[u8]) -> [u8; 16] {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut a = 0xcbf2_9ce4_8422_2325u64;
        let mut b = 0x6c62_272e_07bb_0142u64;
        let step = |x: &mut u64, y: &mut u64, byte: u8| {
            *x = (*x ^ u64::from(byte)).wrapping_mul(PRIME);
            *y = (*y ^ u64::from(byte).rotate_left(17)).wrapping_mul(PRIME);
        };
        for &byte in bytes {
            step(&mut a, &mut b, byte);
        }
        for byte in (bytes.len() as u64).to_le_bytes() {
            step(&mut a, &mut b, byte);
        }
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        out
    }

    /// Re-seals a mutated artifact body with a freshly forged checksum,
    /// so the mutation reaches the check it targets.
    pub fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
        let body = bytes.len() - 16;
        let sum = digest(&bytes[..body]);
        bytes[body..].copy_from_slice(&sum);
        bytes
    }
}

fn sealed_policy() -> (Vec<u8>, CtxLayout, HookRules) {
    let layout = CtxLayout::empty();
    let rules = HookRules::permissive();
    let counters = std::sync::Arc::new(Map::new(MapDef {
        name: "counters".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: 8,
    }));
    let prog = cbpf::asm::assemble_named(
        "bump",
        "ldmap r1, counters\n stw [r10-4], 1\n mov r2, r10\n add r2, -4\n \
         call map_lookup_elem\n jeq r0, 0, miss\n ldxdw r1, [r0]\n add r1, 1\n \
         stxdw [r0], r1\n mov r0, 1\n exit\nmiss:\n mov r0, 0\n exit",
        &[counters],
    )
    .unwrap();
    let verified = VerifiedProgram::new(prog, &layout, &rules).unwrap();
    (verified.seal(), layout, rules)
}

#[test]
fn wire_roundtrip_is_stable() {
    let (bytes, layout, rules) = sealed_policy();
    let reopened = cbpf::wire::open(&bytes, &layout, &rules).expect("valid artifact must open");
    assert_eq!(reopened.program().name(), "bump");
    assert_eq!(reopened.program().maps().len(), 1);
    assert_eq!(reopened.program().maps()[0].def().name, "counters");
    // Re-sealing the opened program reproduces the artifact bit-for-bit:
    // the encoding is canonical, so digests are stable across hops.
    assert_eq!(reopened.seal(), bytes, "re-seal must be byte-identical");
}

#[test]
fn wire_truncation_rejected_at_every_length() {
    let (bytes, layout, rules) = sealed_policy();
    for len in 0..bytes.len() {
        assert!(
            cbpf::wire::open(&bytes[..len], &layout, &rules).is_err(),
            "prefix of {len}/{} bytes must not open",
            bytes.len()
        );
    }
}

#[test]
fn wire_tamper_rejected_at_every_byte() {
    let (bytes, layout, rules) = sealed_policy();
    for i in 0..bytes.len() {
        let mut t = bytes.clone();
        t[i] ^= 0x40;
        assert!(
            cbpf::wire::open(&t, &layout, &rules).is_err(),
            "byte {i} flipped must not open"
        );
    }
}

#[test]
fn wire_version_mismatch_is_its_own_rejection() {
    let (bytes, layout, rules) = sealed_policy();
    let mut t = bytes.clone();
    t[4..6].copy_from_slice(&9u16.to_le_bytes());
    // With a forged checksum the version check itself must fire.
    let t = wire_support::reseal(t);
    assert!(
        matches!(
            cbpf::wire::open(&t, &layout, &rules),
            Err(cbpf::WireError::UnsupportedVersion { version: 9 })
        ),
        "future version must be rejected as unsupported"
    );
}

#[test]
fn wire_digest_binds_the_verification_context() {
    let (bytes, _, rules) = sealed_policy();
    // Same bytes, different load-host layout: the artifact was not
    // verified against this context, so it must not open — before the
    // verifier even runs.
    let other_layout = CtxLayout::builder()
        .field("waiters", 8, cbpf::FieldAccess::ReadOnly)
        .build();
    assert!(
        matches!(
            cbpf::wire::open(&bytes, &other_layout, &rules),
            Err(cbpf::WireError::DigestMismatch)
        ),
        "layout drift must be a digest mismatch"
    );
    // Different rules, same effect.
    let strict = HookRules {
        allowed_helpers: Some(vec![]),
        ..HookRules::permissive()
    };
    assert!(
        matches!(
            cbpf::wire::open(&bytes, &CtxLayout::empty(), &strict),
            Err(cbpf::WireError::DigestMismatch)
        ),
        "rules drift must be a digest mismatch"
    );
}

#[test]
fn wire_forgery_still_faces_the_verifier() {
    // A byte-perfect artifact (magic, version, digest and checksum all
    // correct for the load context) whose program is hostile: the open
    // path must still run the verifier and reject it. This is the
    // "never runnable without re-verification evidence" guarantee — a
    // compromised compile host cannot smuggle an unverifiable program
    // past a healthy load host.
    let hostile = assemble("ldxdw r0, [r10-8]\n exit").unwrap();
    let raw = cbpf::insn::encode(hostile.insns());
    let mut body = Vec::new();
    body.extend_from_slice(b"C3PW");
    body.extend_from_slice(&1u16.to_le_bytes()); // version
    body.extend_from_slice(&0u16.to_le_bytes()); // flags
    body.extend_from_slice(&(b"forged".len() as u16).to_le_bytes());
    body.extend_from_slice(b"forged");
    body.extend_from_slice(&0u16.to_le_bytes()); // no maps
    body.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    let mut insn_bytes = Vec::new();
    for r in &raw {
        insn_bytes.push(r.op);
        insn_bytes.push(r.dst);
        insn_bytes.push(r.src);
        insn_bytes.extend_from_slice(&r.off.to_le_bytes());
        insn_bytes.extend_from_slice(&r.imm.to_le_bytes());
    }
    body.extend_from_slice(&insn_bytes);
    // Verification digest for (empty layout, permissive rules, no
    // maps, these insns), per the spec'd encoding.
    let mut ctx = Vec::new();
    ctx.extend_from_slice(b"layout:");
    ctx.extend_from_slice(b"rules:");
    ctx.push(0); // max_insns: none
    ctx.push(0); // allowed_helpers: none
    ctx.push(1); // allow_ctx_writes
    ctx.extend_from_slice(b"maps:");
    ctx.extend_from_slice(b"insns:");
    ctx.extend_from_slice(&insn_bytes);
    body.extend_from_slice(&wire_support::digest(&ctx));
    let sum = wire_support::digest(&body);
    let mut artifact = body;
    artifact.extend_from_slice(&sum);

    match cbpf::wire::open(&artifact, &CtxLayout::empty(), &HookRules::permissive()) {
        Err(cbpf::WireError::Verify(_)) => {}
        other => panic!("forged hostile artifact must die in the verifier, got {other:?}"),
    }
}
