//! Property-based model check of the fleet store's CAS op-head
//! convergence (DESIGN.md §4.10) and of the host-side version-gated
//! apply.
//!
//! Concurrent writers are modeled as interleaved state machines
//! (read-head → conditional publish → retry-merge on conflict), driven
//! by a deterministic seed-derived schedule, with injected stale reads
//! (forced CAS conflicts) and per-writer crash points (a writer simply
//! abandons mid-protocol). A reference model — a fold of the deltas in
//! observed commit order — predicts the exact final state:
//!
//! * the op-head equals the number of commits, every intermediate
//!   snapshot survives immutably, and the head snapshot equals the
//!   model fold;
//! * the sharded tenant index agrees with the head snapshot for every
//!   tenant ever bound;
//! * a crashed (abandoned) writer either committed fully or left zero
//!   trace — there is no partial publish;
//! * duplicate/reordered delivery into a host's version gate never
//!   double-applies a version and always converges the host to the
//!   newest version it saw.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use std::collections::BTreeMap;
use std::sync::Arc;

use concord::fleet::{Delta, DeliverOutcome, HostState, PolicyStore, StoreError};

/// Splitmix finalize, the workspace's standard derived-randomness hash.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn artifact(tag: u64) -> Arc<Vec<u8>> {
    Arc::new(tag.to_le_bytes().to_vec())
}

/// One writer's protocol position.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WriterStep {
    /// About to read the head.
    Read,
    /// Read `observed`; about to attempt the conditional publish.
    Commit {
        /// The head the writer will publish against.
        observed: u64,
    },
    /// Committed (or crashed) — no further steps.
    Done,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Interleaved writers with injected conflicts and crash points
    /// always leave the store exactly where the reference model says.
    #[test]
    fn store_matches_reference_model(
        n_writers in 1usize..=6,
        sched_seed in 0u64..=0xffff_ffff_ffff,
        stale_mask in 0u64..=63,     // writers whose first read is forced stale
        crash_sel in 0u64..=0xffff,  // packs per-writer crash points
        tenants_per in 1u64..=8,
    ) {
        let store = PolicyStore::new(256);
        // Writer w publishes policy 100+w over an overlapping tenant
        // range (overlap is what makes last-writer-wins interesting).
        let deltas: Vec<Delta> = (0..n_writers as u64)
            .map(|w| {
                let tenants: Vec<u64> = (0..tenants_per).map(|i| w * 2 + i).collect();
                Delta::bind_all(&tenants, 100 + w, artifact(w))
            })
            .collect();
        // Crash point per writer: steps allowed before abandoning.
        // 4 bits each; 0xF means "never crashes".
        let crash_at: Vec<Option<u64>> = (0..n_writers)
            .map(|w| {
                let nib = (crash_sel >> (4 * w)) & 0xF;
                (nib != 0xF).then_some(nib)
            })
            .collect();

        let mut steps = vec![WriterStep::Read; n_writers];
        let mut taken = vec![0u64; n_writers];
        let mut injected_stale = vec![false; n_writers];
        let mut commit_order: Vec<usize> = Vec::new();
        let mut conflicts_seen = 0u64;
        let mut tick = 0u64;
        // Drive the interleaving until every writer committed or
        // crashed. Each iteration steps one seed-chosen active writer.
        while steps.iter().any(|s| *s != WriterStep::Done) {
            let active: Vec<usize> = (0..n_writers)
                .filter(|w| steps[*w] != WriterStep::Done)
                .collect();
            let w = active[(mix(sched_seed, tick) % active.len() as u64) as usize];
            tick += 1;
            if let Some(limit) = crash_at[w] {
                if taken[w] >= limit {
                    // The writer dies mid-protocol: whatever it did so
                    // far must be all-or-nothing in the store.
                    steps[w] = WriterStep::Done;
                    continue;
                }
            }
            taken[w] += 1;
            steps[w] = match steps[w] {
                WriterStep::Read => {
                    let mut observed = store.head();
                    // Injected CAS conflict: the writer's first read is
                    // forced stale once the store has moved.
                    if !injected_stale[w] && (stale_mask >> w) & 1 == 1 && observed > 0 {
                        injected_stale[w] = true;
                        observed -= 1;
                    }
                    WriterStep::Commit { observed }
                }
                WriterStep::Commit { observed } => {
                    match store.try_publish(observed, &deltas[w]) {
                        Ok(_) => {
                            commit_order.push(w);
                            WriterStep::Done
                        }
                        Err(StoreError::StaleHead { current, .. }) => {
                            conflicts_seen += 1;
                            prop_assert_eq!(current, store.head());
                            WriterStep::Read // retry-merge
                        }
                        Err(e) => return Err(TestCaseError::fail(format!(
                            "unexpected store error: {e}"
                        ))),
                    }
                }
                WriterStep::Done => WriterStep::Done,
            };
        }

        // Reference model: fold committed deltas in commit order.
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for w in &commit_order {
            for (t, p) in &deltas[*w].bindings {
                model.insert(*t, *p);
            }
        }

        // Head counts commits, nothing more (no partial publishes).
        prop_assert_eq!(store.head(), commit_order.len() as u64);
        prop_assert_eq!(store.publishes(), commit_order.len() as u64);
        // Every StaleHead the writers saw was a genuine lost CAS.
        prop_assert_eq!(store.conflicts(), conflicts_seen);

        // The head snapshot is exactly the model fold.
        let head = store.head_snapshot();
        prop_assert_eq!(&head.bindings, &model);
        // The sharded index agrees with the head for every tenant.
        for (t, p) in &model {
            prop_assert_eq!(store.index().lookup(*t), Some(*p));
        }
        prop_assert_eq!(store.index().len(), model.len());

        // Every intermediate snapshot survives, versioned and
        // monotonically richer: version v holds the fold of the first
        // v commits.
        let mut fold: BTreeMap<u64, u64> = BTreeMap::new();
        for (v, w) in commit_order.iter().enumerate() {
            for (t, p) in &deltas[*w].bindings {
                fold.insert(*t, *p);
            }
            let snap = store.snapshot(v as u64 + 1).expect("snapshot evicted");
            prop_assert_eq!(snap.version, v as u64 + 1);
            prop_assert_eq!(&snap.bindings, &fold);
        }
    }

    /// The host version gate: any delivery sequence with duplicates and
    /// reorders applies each version at most once, in strictly
    /// increasing order, and lands on the newest version delivered.
    #[test]
    fn dedupe_never_double_applies(
        n_versions in 1u64..=8,
        order_seed in 0u64..=0xffff_ffff_ffff,
        dup_factor in 1usize..=4,
    ) {
        let store = PolicyStore::new(64);
        for v in 0..n_versions {
            store
                .publish(&Delta::bind_all(&[v], 100 + v, artifact(v)))
                .unwrap();
        }
        // Delivery schedule: each version appears `dup_factor` times,
        // then the whole thing is seed-shuffled (duplicates + reorders).
        let mut schedule: Vec<u64> = (1..=n_versions)
            .flat_map(|v| std::iter::repeat_n(v, dup_factor))
            .collect();
        for i in (1..schedule.len()).rev() {
            schedule.swap(i, (mix(order_seed, i as u64) % (i as u64 + 1)) as usize);
        }

        let mut host = HostState::new(0, store.snapshot(0).unwrap());
        let mut applies = 0u64;
        for v in &schedule {
            let snap = store.snapshot(*v).unwrap();
            match host.deliver(*v, &snap) {
                DeliverOutcome::Applied => applies += 1,
                DeliverOutcome::Duplicate => {}
            }
        }
        // No version applied twice, order strictly increasing.
        prop_assert!(
            host.apply_log.windows(2).all(|w| w[0] < w[1]),
            "apply log not strictly increasing: {:?}",
            host.apply_log
        );
        prop_assert_eq!(applies as usize, host.apply_log.len());
        prop_assert_eq!(
            host.dedup_drops as usize,
            schedule.len() - host.apply_log.len()
        );
        // The host converged to the newest version it saw.
        let newest = *schedule.iter().max().unwrap();
        prop_assert_eq!(host.served.version, newest);
        prop_assert_eq!(host.apply_log.last().copied(), Some(newest));
    }
}
