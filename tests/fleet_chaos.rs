//! Integration tests for the fleet control plane: convergence under the
//! full chaos sweep, deterministic replay, degraded-mode serving, the
//! exactly-once real-host apply path, rollout-driven batched attach, and
//! the Prometheus exposition of the fleet metrics.

use std::collections::BTreeMap;
use std::sync::Arc;

use concord::fleet::{
    fleet_sweep, run_fleet, seal_demo_artifact, Delta, DeliverOutcome, FleetConfig, FleetTarget,
    PolicyStore, RealFleetHost,
};
use concord::rollout::{
    AlwaysGreen, ChaosInjector, ChaosPlan, Rollout, RolloutLog, RolloutOutcome, RolloutPlan,
};
use locks::hooks::HookKind;
use locks::{RawLock, ShflLock};

/// An inert (no-crash) run on a lossy network with a partition window
/// converges every host to the store head, never tears an apply, and
/// exercises the whole failure surface: retries, dedupe, lease expiry,
/// reconciliation, degraded-mode serving.
#[test]
fn lossy_run_converges_and_serves_degraded() {
    let cfg = FleetConfig::small(7, seal_demo_artifact());
    let report = run_fleet(&cfg, ChaosPlan::inert(7));
    assert!(
        report.converged,
        "head {} hosts {:?}",
        report.head, report.host_versions
    );
    assert_eq!(report.torn, 0, "torn applies observed");
    assert_eq!(report.head, cfg.versions);
    assert!(report.retries > 0, "lossy run should retransmit");
    assert!(report.dedup_drops > 0, "lossy run should deduplicate");
    assert!(
        report.lease_expiries > 0,
        "partition window should lapse a lease"
    );
    assert!(
        report.degraded_serves > 0,
        "degraded host should keep serving last-known-good"
    );
    assert!(report.reconciles > 0, "reconcile sweep should do work");
}

/// The same seed replays bit-identically, fingerprint included; a
/// different seed diverges.
#[test]
fn fleet_runs_are_bit_identical_per_seed() {
    let cfg = FleetConfig::small(11, seal_demo_artifact());
    let a = run_fleet(&cfg, ChaosPlan::inert(11));
    let b = run_fleet(&cfg, ChaosPlan::inert(11));
    assert_eq!(a, b, "same seed, different world");
    let cfg13 = FleetConfig::small(13, seal_demo_artifact());
    let c = run_fleet(&cfg13, ChaosPlan::inert(13));
    assert_ne!(a.fingerprint, c.fingerprint, "seed is not flowing");
}

/// The full crash sweep: the daemon is killed at every protocol step
/// boundary, and every run still converges all hosts to the head.
#[test]
fn crash_sweep_converges_at_every_step() {
    let cfg = FleetConfig::small(3, seal_demo_artifact());
    let report = fleet_sweep(3, &cfg).expect("sweep must converge");
    assert!(report.crash_points > 0, "no crash points swept");
    assert_eq!(
        report.applied_runs,
        report.crash_points + 1,
        "every run (inert + each crash) must end all-applied"
    );
    // And the sweep itself replays bit-identically.
    let again = fleet_sweep(3, &cfg).expect("sweep must converge");
    assert_eq!(report, again, "sweep is not deterministic");
}

/// At-least-once delivery composes with the version gate into
/// exactly-once livepatch effect: duplicated applies of the same
/// version change nothing, and the whole host moves in one transaction.
#[test]
fn real_host_applies_exactly_once() {
    let concord = concord::Concord::new();
    let mut locks = BTreeMap::new();
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let name = format!("fleet_lock_{t}");
        let l = Arc::new(ShflLock::new());
        concord.registry().register_shfl(&name, Arc::clone(&l));
        locks.insert(t, name);
        handles.push(l);
    }
    let store = PolicyStore::new(16);
    let v1 = store
        .publish(&Delta::bind_all(&[0, 1, 2], 500, seal_demo_artifact()))
        .unwrap();
    let snap = store.snapshot(v1).unwrap();

    let host = RealFleetHost::new(&concord, HookKind::CmpNode, locks);
    assert_eq!(host.apply(v1, &snap).unwrap(), DeliverOutcome::Applied);
    let live_after_first = concord.live_patches().len();
    assert_eq!(host.patched_locks(v1).len(), 3);

    // Duplicate deliveries: wire-level at-least-once.
    for _ in 0..4 {
        assert_eq!(host.apply(v1, &snap).unwrap(), DeliverOutcome::Duplicate);
    }
    assert_eq!(
        concord.live_patches().len(),
        live_after_first,
        "duplicate delivery re-applied patches"
    );
    assert_eq!(host.applied(), v1);

    // The locks still work with the policy live.
    for l in &handles {
        drop(l.lock());
    }

    // A newer version applies once and supersedes.
    let v2 = store
        .publish(&Delta::bind_all(&[0, 1, 2], 501, seal_demo_artifact()))
        .unwrap();
    let snap2 = store.snapshot(v2).unwrap();
    assert_eq!(host.apply(v2, &snap2).unwrap(), DeliverOutcome::Applied);
    assert_eq!(host.apply(v1, &snap).unwrap(), DeliverOutcome::Duplicate);
    assert_eq!(host.applied(), v2);
}

/// A malformed artifact unwinds the whole host transaction: no lock
/// moves, the previous version keeps serving (never torn).
#[test]
fn real_host_apply_is_all_or_nothing() {
    let concord = concord::Concord::new();
    let mut locks = BTreeMap::new();
    for t in 0..2u64 {
        let name = format!("aon_lock_{t}");
        let l = Arc::new(ShflLock::new());
        concord.registry().register_shfl(&name, Arc::clone(&l));
        locks.insert(t, name);
    }
    let store = PolicyStore::new(16);
    // Tenant 1's artifact is garbage: it fails wire::open on the host.
    let mut delta = Delta::bind_all(&[0], 600, seal_demo_artifact());
    delta.artifacts.push((601, Arc::new(vec![0xff; 32])));
    delta.bindings.push((1, 601));
    let v = store.publish(&delta).unwrap();
    let snap = store.snapshot(v).unwrap();

    let host = RealFleetHost::new(&concord, HookKind::CmpNode, locks);
    let before = concord.live_patches().len();
    assert!(host.apply(v, &snap).is_err());
    assert_eq!(
        concord.live_patches().len(),
        before,
        "failed apply left partial patches"
    );
    assert_eq!(host.applied(), 0, "failed apply advanced the version");
}

/// Batched cross-host attach through the rollout controller: hosts are
/// the "locks", waves are cohorts, and the staged rollout commits with
/// every host serving the pinned store version.
#[test]
fn rollout_waves_drive_fleet_hosts() {
    let concord = concord::Concord::new();
    let mut fleet_hosts = BTreeMap::new();
    let mut names = Vec::new();
    for h in 0..4u64 {
        let lock_name = format!("wave_lock_{h}");
        let l = Arc::new(ShflLock::new());
        concord.registry().register_shfl(&lock_name, Arc::clone(&l));
        let host_name = format!("host{h}");
        let mut locks = BTreeMap::new();
        locks.insert(h, lock_name);
        fleet_hosts.insert(
            host_name.clone(),
            RealFleetHost::new(&concord, HookKind::CmpNode, locks),
        );
        names.push(host_name);
    }
    let store = Arc::new(PolicyStore::new(16));
    store
        .publish(&Delta::bind_all(&[0, 1, 2, 3], 700, seal_demo_artifact()))
        .unwrap();

    let target = FleetTarget::new(Arc::clone(&store), fleet_hosts);
    let plan = RolloutPlan::staged(1, "fleet", HookKind::CmpNode, &names, &[25, 50]);
    let log = RolloutLog::new();
    let outcome = Rollout::run(plan, &log, &target, &mut AlwaysGreen, &ChaosInjector::inert())
        .expect("staged fleet rollout");
    assert_eq!(outcome, RolloutOutcome::Committed);
    let pinned = target.version_of(1).expect("generation pinned a version");
    assert_eq!(pinned, store.head());
    for name in &names {
        assert_eq!(target.host(name).unwrap().applied(), pinned);
    }
}

/// Every `c3_fleet_*` metric surfaces in the Prometheus exposition
/// after a run, with the right types.
#[test]
fn fleet_metrics_render_in_prometheus() {
    let cfg = FleetConfig::small(19, seal_demo_artifact());
    let report = run_fleet(&cfg, ChaosPlan::inert(19));
    assert!(report.converged);
    let text = telemetry::metrics().render_prometheus();
    for name in [
        "c3_fleet_publishes_total",
        "c3_fleet_retries_total",
        "c3_fleet_dedup_drops_total",
        "c3_fleet_lease_expired_total",
        "c3_fleet_reconciles_total",
        "c3_fleet_store_head",
        "c3_fleet_degraded_hosts",
        "c3_fleet_propagation_lag",
    ] {
        assert!(
            text.contains(name),
            "metric {name} missing from exposition:\n{text}"
        );
    }
    for line in [
        "# TYPE c3_fleet_retries_total counter",
        "# TYPE c3_fleet_degraded_hosts gauge",
        "# TYPE c3_fleet_propagation_lag gauge",
    ] {
        assert!(text.contains(line), "missing {line}");
    }
}
