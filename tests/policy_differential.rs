//! Differential tests: every prebuilt bytecode policy must make exactly
//! the decisions of its native reference implementation, over randomized
//! contexts — the correctness argument for replacing compiled-in policies
//! with verified user bytecode (§5's "pre-compiled versions of the same
//! locks").

use std::sync::Arc;

use concord::env::RealEnv;
use concord::policy::BytecodePolicy;
use concord::Concord;
use locks::hooks::{CmpNodeCtx, CmpNodeFn, NodeView, ScheduleWaiterCtx};
use proptest::prelude::*;

fn view_strategy() -> impl Strategy<Value = NodeView> {
    (
        1u64..1000,
        0u32..80,
        -20i64..20,
        0u64..100_000,
        0u32..12,
        any::<u32>(),
    )
        .prop_map(|(tid, cpu, prio, cs_hint, held, wait)| NodeView {
            tid,
            cpu,
            socket: cpu / 10,
            prio,
            cs_hint,
            held_locks: held,
            wait_start_ns: u64::from(wait),
        })
}

fn cmp_ctx_strategy() -> impl Strategy<Value = CmpNodeCtx> {
    (any::<u64>(), view_strategy(), view_strategy()).prop_map(|(lock_id, shuffler, curr)| {
        CmpNodeCtx {
            lock_id,
            shuffler,
            curr,
        }
    })
}

fn bytecode_cmp(spec: concord::PolicySpec) -> CmpNodeFn {
    let c = Concord::new();
    let loaded = c.load(spec).expect("prebuilt policy verifies");
    BytecodePolicy::new(loaded.prog, loaded.hook, Arc::new(RealEnv::new()))
        .as_cmp_node()
        .expect("loaded for cmp_node")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn numa_aware_matches_native(ctx in cmp_ctx_strategy()) {
        let bytecode = bytecode_cmp(concord::policies::numa_aware());
        let native = concord::policies::numa_aware_native();
        prop_assert_eq!(bytecode(&ctx), native(&ctx));
    }

    #[test]
    fn priority_boost_matches_native(ctx in cmp_ctx_strategy()) {
        let bytecode = bytecode_cmp(concord::policies::priority_boost());
        let native = concord::policies::priority_boost_native();
        prop_assert_eq!(bytecode(&ctx), native(&ctx));
    }

    #[test]
    fn lock_inheritance_matches_native(ctx in cmp_ctx_strategy()) {
        let bytecode = bytecode_cmp(concord::policies::lock_inheritance());
        let native = concord::policies::lock_inheritance_native();
        prop_assert_eq!(bytecode(&ctx), native(&ctx));
    }

    #[test]
    fn scheduler_cooperative_matches_native(
        ctx in cmp_ctx_strategy(),
        threshold in 0u64..50_000,
    ) {
        let bytecode = bytecode_cmp(concord::policies::scheduler_cooperative(threshold));
        let native = concord::policies::scheduler_cooperative_native(threshold);
        prop_assert_eq!(bytecode(&ctx), native(&ctx));
    }

    #[test]
    fn amp_aware_matches_native(ctx in cmp_ctx_strategy(), fast in 1u32..80) {
        let bytecode = bytecode_cmp(concord::policies::amp_aware(fast));
        let native = concord::policies::amp_aware_native(fast);
        prop_assert_eq!(bytecode(&ctx), native(&ctx));
    }

    #[test]
    fn adaptive_parking_matches_native(
        curr in view_strategy(),
        waited in 0u64..200_000,
        spin in 0u64..100_000,
    ) {
        let c = Concord::new();
        let loaded = c.load(concord::policies::adaptive_parking(spin)).unwrap();
        let f = BytecodePolicy::new(loaded.prog, loaded.hook, Arc::new(RealEnv::new()))
            .as_schedule_waiter()
            .expect("loaded for schedule_waiter");
        let native = concord::policies::adaptive_parking_native(spin);
        let ctx = ScheduleWaiterCtx { lock_id: 1, curr, waited_ns: waited };
        prop_assert_eq!(f(&ctx), native(&ctx));
    }
}

#[test]
fn no_faults_across_many_invocations() {
    // The fault counter is the canary for verifier/interpreter drift.
    let c = Concord::new();
    let loaded = c.load(concord::policies::numa_aware()).unwrap();
    let policy = BytecodePolicy::new(loaded.prog, loaded.hook, Arc::new(RealEnv::new()));
    let f = policy.as_cmp_node().expect("loaded for cmp_node");
    let mk = |cpu| NodeView {
        tid: 1,
        cpu,
        socket: cpu / 10,
        prio: 0,
        cs_hint: 0,
        held_locks: 0,
        wait_start_ns: 0,
    };
    for i in 0..10_000u32 {
        f(&CmpNodeCtx {
            lock_id: u64::from(i),
            shuffler: mk(i % 80),
            curr: mk((i * 7) % 80),
        });
    }
    let (inv, faults) = policy.stats();
    assert_eq!(inv, 10_000);
    assert_eq!(faults, 0);
}
