//! Deterministic chaos for the staged rollout controller.
//!
//! Three layers, per the rollout design (DESIGN.md §4.7):
//!
//! 1. **ksim sweep** — the controller runs as a task inside the discrete
//!    event simulator, applying waves to simulated locks in virtual time
//!    while worker tasks hammer them. A seeded [`ChaosPlan`] kills the
//!    controller at every reachable step boundary (all intent-log
//!    prefixes); after `Rollout::recover` the world must be fully
//!    applied or fully reverted, never mixed — and same-seed replays
//!    must be bit-identical, including the sim's trace hash.
//! 2. **real-thread sweep** — the same sweep against a real [`Concord`]
//!    with livepatch transactions, while threads hammer the locks.
//! 3. **live auto-abort** — a canary running an always-faulting policy
//!    must go red, abort, and restore every pre-rollout generation.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use cbpf::error::FaultKind;
use cbpf::fault::{FaultInjector, FaultPlan};
use concord::rollout::{
    chaos::{crash_sweep, Convergence, SweepOutcome},
    AlwaysGreen, ChaosInjector, ChaosPlan, HealthConfig, HealthVerdict, MetricsHealth, RealTarget,
    Rollout, RolloutError, RolloutLog, RolloutOutcome, RolloutPlan, RolloutTarget, ScriptedHealth,
    SimTarget, WaveOutcome,
};
use concord::{BreakerConfig, Concord, PolicySpec};
use ksim::{CpuId, SimBuilder};
use locks::hooks::HookKind;
use locks::{RawLock, ShflLock};
use simlocks::policy::SimPolicy;
use simlocks::SimShflLock;

const SIM_LOCKS: usize = 6;

/// One full ksim scenario under a chaos plan: build the world, run the
/// rollout inside `sim.run()`, recover if the controller died, report
/// convergence and a replay fingerprint.
fn sim_scenario(plan: ChaosPlan, red_wave: Option<usize>) -> Result<SweepOutcome, RolloutError> {
    let sim = SimBuilder::new().seed(plan.seed).build();
    let concord = Concord::new();
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();

    let locks: Vec<(String, Rc<SimShflLock>)> = (0..SIM_LOCKS)
        .map(|i| (format!("sim{i}"), Rc::new(SimShflLock::new(&sim))))
        .collect();
    let names: Vec<String> = locks.iter().map(|(n, _)| n.clone()).collect();
    let base_gens: Vec<u64> = locks.iter().map(|(_, l)| l.policy_generation()).collect();

    let policy: Rc<dyn SimPolicy> = Rc::new(concord.make_sim_policy(&sim, &[&loaded]));
    let target = Rc::new(SimTarget::new(locks.clone(), move |_| Rc::clone(&policy)));
    let log = RolloutLog::new();
    let chaos = Rc::new(ChaosInjector::new(plan));
    let crashed = Rc::new(Cell::new(false));

    // Workers: contention on every lock, so policy swaps land mid-wave.
    for (i, (_, l)) in locks.iter().enumerate() {
        for w in 0..3u32 {
            let l = Rc::clone(l);
            sim.spawn_on(CpuId(((i as u32) * 3 + w) * 7 % 64), move |t| async move {
                for _ in 0..20 {
                    l.acquire(&t).await;
                    t.advance(150 + t.rng_u64() % 100).await;
                    l.release(&t).await;
                    t.advance(t.rng_u64() % 300).await;
                }
            });
        }
    }

    // The controller task: staged waves in virtual time.
    {
        let target = Rc::clone(&target);
        let log = log.clone();
        let chaos = Rc::clone(&chaos);
        let crashed = Rc::clone(&crashed);
        let rollout_plan = RolloutPlan::staged(1, "numa", HookKind::CmpNode, &names, &[50]);
        let verdicts: Vec<HealthVerdict> = (0..rollout_plan.waves.len())
            .map(|w| {
                if red_wave == Some(w) {
                    HealthVerdict::Red(format!("scripted red on wave {w}"))
                } else {
                    HealthVerdict::Green
                }
            })
            .collect();
        sim.spawn_on(CpuId(0), move |t| async move {
            let mut health = ScriptedHealth::new(verdicts);
            let mut outcome =
                match Rollout::start(rollout_plan, &log, &*target, &mut health, &chaos) {
                    Ok(o) => o,
                    Err(RolloutError::Crashed(_)) => {
                        crashed.set(true);
                        return;
                    }
                    Err(e) => panic!("unexpected rollout error: {e}"),
                };
            loop {
                match outcome {
                    WaveOutcome::Committed | WaveOutcome::Aborted(_) => return,
                    WaveOutcome::WaveHealthy { .. } => {
                        // Soak: let the applied wave run under load before
                        // the next promotion.
                        t.advance(4_000).await;
                        outcome =
                            match Rollout::promote(&log, &*target, &mut health, &chaos) {
                                Ok(o) => o,
                                Err(RolloutError::Crashed(_)) => {
                                    crashed.set(true);
                                    return;
                                }
                                Err(e) => panic!("unexpected rollout error: {e}"),
                            };
                    }
                }
            }
        });
    }

    let stats = sim.run();
    if crashed.get() {
        // The controller process died; a fresh one recovers from the
        // durable log against the surviving lock state.
        Rollout::recover(&log, &*target, &ChaosInjector::inert())?;
    }

    let applied = target.applied_count();
    let converged = if applied == SIM_LOCKS {
        Convergence::AllApplied
    } else if applied == 0 {
        // Fully reverted also means every lock is back on its original
        // policy object: generation moved by exactly 0 or 2 (swap in +
        // swap out), never 1.
        for ((name, l), base) in locks.iter().zip(&base_gens) {
            let delta = l.policy_generation() - base;
            if delta % 2 != 0 {
                return Ok(SweepOutcome {
                    converged: Convergence::Mixed(format!(
                        "{name}: odd policy-generation delta {delta}"
                    )),
                    steps: chaos.steps_taken(),
                    fingerprint: 0,
                });
            }
        }
        Convergence::AllReverted
    } else {
        Convergence::Mixed(format!("{applied}/{SIM_LOCKS} locks patched"))
    };
    Ok(SweepOutcome {
        converged,
        steps: chaos.steps_taken(),
        // Replay fingerprint: the intent log fold mixed with the sim's
        // own trace hash — bit-identical across same-seed replays.
        fingerprint: log.fingerprint() ^ stats.trace_hash.rotate_left(17),
    })
}

/// Every intent-log prefix (crash point) converges in the simulator, for
/// several seeds, both on the commit path and on a red-health path.
#[test]
fn ksim_crash_sweep_converges_at_every_step() {
    for seed in [7, 42, 1009] {
        let report = crash_sweep(seed, |plan| sim_scenario(plan, None)).unwrap();
        assert!(
            report.crash_points > 15,
            "seed {seed}: suspiciously few steps ({})",
            report.crash_points
        );
        assert!(report.applied_runs >= 1, "seed {seed}: no run committed");
        assert!(
            report.reverted_runs >= 1,
            "seed {seed}: no crash forced a rollback"
        );
    }
    // Red health mid-rollout: every crash point still converges (all
    // runs end reverted — a red canary must never leave patches behind).
    let report = crash_sweep(5, |plan| sim_scenario(plan, Some(1))).unwrap();
    assert_eq!(
        report.applied_runs, 0,
        "a red wave must never end fully applied"
    );
}

/// Same seed, same chaos plan → bit-identical outcome, including the
/// simulator's trace hash folded into the fingerprint.
#[test]
fn ksim_chaos_replays_bit_identically() {
    for plan in [
        ChaosPlan::inert(42),
        ChaosPlan::crash_at(42, 5),
        ChaosPlan::crash_at(42, 19),
        ChaosPlan::crash_at(1234, 11),
    ] {
        let a = sim_scenario(plan, None).unwrap();
        let b = sim_scenario(plan, None).unwrap();
        assert_eq!(a, b, "replay of {plan:?} diverged");
    }
    // Different seeds must visibly change the world.
    let a = sim_scenario(ChaosPlan::inert(1), None).unwrap();
    let b = sim_scenario(ChaosPlan::inert(2), None).unwrap();
    assert_ne!(a.fingerprint, b.fingerprint);
}

/// The real-thread analogue: livepatch transactions on real locks with
/// hammer threads racing every wave, crashed at every step boundary.
#[test]
fn real_thread_crash_sweep_converges() {
    let scenario = |plan: ChaosPlan| -> Result<SweepOutcome, RolloutError> {
        let concord = Concord::new();
        let mut handles = Vec::new();
        let mut names = Vec::new();
        for i in 0..5 {
            let name = format!("lock{i}");
            let l = Arc::new(ShflLock::new());
            concord.registry().register_shfl(&name, Arc::clone(&l));
            names.push(name);
            handles.push(l);
        }
        let loaded = concord.load(concord::policies::numa_aware()).unwrap();
        let target = RealTarget::new(&concord, loaded, BreakerConfig::default());
        let log = RolloutLog::new();
        let chaos = ChaosInjector::new(plan);

        // Two hammer threads race the whole rollout on the canary and
        // one late-wave lock.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammers: Vec<_> = [0usize, 4]
            .into_iter()
            .map(|i| {
                let l = Arc::clone(&handles[i]);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let _g = l.lock();
                    }
                })
            })
            .collect();

        let rollout_plan = RolloutPlan::staged(1, "numa", HookKind::CmpNode, &names, &[50]);
        let run = Rollout::run(rollout_plan, &log, &target, &mut AlwaysGreen, &chaos);
        if let Err(RolloutError::Crashed(_)) = run {
            Rollout::recover(&log, &target, &ChaosInjector::inert())?;
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        for h in hammers {
            h.join().unwrap();
        }

        let live = target.applied_locks(1, &names).len();
        let converged = if live == names.len() {
            Convergence::AllApplied
        } else if live == 0 {
            Convergence::AllReverted
        } else {
            Convergence::Mixed(format!("{live}/{} locks patched", names.len()))
        };
        // Post-condition either way: the locks still work.
        for l in &handles {
            drop(l.lock());
        }
        Ok(SweepOutcome {
            converged,
            steps: chaos.steps_taken(),
            fingerprint: log.fingerprint(),
        })
    };
    let report = crash_sweep(3, scenario).unwrap();
    assert!(report.crash_points > 10);
    assert!(report.applied_runs >= 1);
    assert!(report.reverted_runs >= 1);
}

/// The acceptance scenario: a live rollout whose canary runs an
/// always-faulting policy must auto-abort on the canary's health gate
/// and restore every pre-rollout generation.
#[test]
fn live_canary_fault_auto_aborts_and_restores() {
    let concord = Concord::new();
    let mut names = Vec::new();
    let mut locks = Vec::new();
    for i in 0..4 {
        let name = format!("lock{i}");
        let l = Arc::new(ShflLock::new());
        concord.registry().register_shfl(&name, Arc::clone(&l));
        names.push(name);
        locks.push(l);
    }
    // A policy on the lock_acquire event hook: invoked on *every*
    // acquisition, with a fault injector that fails from the first
    // invocation on — the always-faulting canary.
    let loaded = concord
        .load(PolicySpec::from_c("hot", HookKind::LockAcquire, "return 0;"))
        .unwrap();
    let injector = Arc::new(FaultInjector::new(FaultPlan::from_invocation(
        1,
        FaultKind::Helper,
    )));
    let target = RealTarget::new(
        &concord,
        loaded,
        BreakerConfig {
            threshold: 3,
            cooldown_ns: None,
        },
    )
    .with_injector(injector);

    // Health judges each wave by driving real load on the wave's locks
    // and reading the fault deltas out of the wave's breakers.
    let exercise_locks = locks.clone();
    let exercise_names = names.clone();
    let mut health = MetricsHealth::new(HealthConfig::default(), target.breakers())
        .with_exercise(move |_wave, wave_locks| {
            for wl in wave_locks {
                let ix = exercise_names.iter().position(|n| n == wl).unwrap();
                for _ in 0..16 {
                    drop(exercise_locks[ix].lock());
                }
            }
        });

    let pre_patches = concord.live_patches();
    let log = RolloutLog::new();
    let plan = RolloutPlan::staged(9, "hot", HookKind::LockAcquire, &names, &[50]);
    let outcome = Rollout::run(plan, &log, &target, &mut health, &ChaosInjector::inert()).unwrap();

    match &outcome {
        RolloutOutcome::Aborted(reason) => {
            assert!(
                reason.contains("policy faults") || reason.contains("breaker trips"),
                "abort must come from the health gate, got: {reason}"
            );
        }
        RolloutOutcome::Committed => panic!("a faulting canary must not commit"),
    }
    // Every pre-rollout generation is restored: no rollout patches
    // remain, the patch stack matches the pre-rollout stack, and the
    // locks dispatch normally.
    assert_eq!(target.applied_locks(9, &names), Vec::<String>::new());
    assert_eq!(concord.live_patches(), pre_patches);
    assert_eq!(Rollout::status(&log).state, format!("aborted: {}", match outcome {
        RolloutOutcome::Aborted(r) => r,
        RolloutOutcome::Committed => unreachable!(),
    }));
    for l in &locks {
        drop(l.lock());
    }
}

/// A canary whose faults stay *under* budget promotes: the gate reads
/// deltas, not absolutes.
#[test]
fn healthy_rollout_under_load_commits() {
    let concord = Concord::new();
    let mut names = Vec::new();
    let mut locks = Vec::new();
    for i in 0..4 {
        let name = format!("lock{i}");
        let l = Arc::new(ShflLock::new());
        concord.registry().register_shfl(&name, Arc::clone(&l));
        names.push(name);
        locks.push(l);
    }
    let loaded = concord
        .load(PolicySpec::from_c("ok", HookKind::LockAcquire, "return 0;"))
        .unwrap();
    let target = RealTarget::new(&concord, loaded, BreakerConfig::default());
    let exercise_locks = locks.clone();
    let exercise_names = names.clone();
    // The breaker-trip gate reads the process-global metrics registry;
    // sibling tests in this binary trip breakers concurrently, so only
    // the (per-rollout, isolated) fault gate is armed here.
    let cfg = HealthConfig {
        max_breaker_trips: u64::MAX / 2,
        ..HealthConfig::default()
    };
    let mut health = MetricsHealth::new(cfg, target.breakers())
        .with_exercise(move |_wave, wave_locks| {
            for wl in wave_locks {
                let ix = exercise_names.iter().position(|n| n == wl).unwrap();
                for _ in 0..16 {
                    drop(exercise_locks[ix].lock());
                }
            }
        });
    let log = RolloutLog::new();
    let plan = RolloutPlan::staged(2, "ok", HookKind::LockAcquire, &names, &[50]);
    let outcome = Rollout::run(plan, &log, &target, &mut health, &ChaosInjector::inert()).unwrap();
    assert_eq!(outcome, RolloutOutcome::Committed);
    assert_eq!(target.applied_locks(2, &names).len(), names.len());
    // And a follow-up generation can pull it all back out.
    Rollout::abort("test teardown", &log, &target, &ChaosInjector::inert()).unwrap_err();
    // (terminal log refuses abort — tear down via a probe-driven revert)
    target.revert_locks(2, &names).unwrap();
    assert!(target.applied_locks(2, &names).is_empty());
}

/// SimTarget's scripted apply failure unwinds mid-wave and the rollout
/// aborts — the sim analogue of a torn livepatch transaction.
#[test]
fn sim_apply_failure_mid_wave_unwinds() {
    let sim = SimBuilder::new().seed(11).build();
    let locks: Vec<(String, Rc<SimShflLock>)> = (0..4)
        .map(|i| (format!("sim{i}"), Rc::new(SimShflLock::new(&sim))))
        .collect();
    let names: Vec<String> = locks.iter().map(|(n, _)| n.clone()).collect();
    let fifo: Rc<dyn SimPolicy> = Rc::new(simlocks::FifoPolicy);
    let target = SimTarget::new(locks, move |_| Rc::clone(&fifo));
    // Wave 1 (sim1, sim2 under [50]) fails on its second lock.
    target.fail_apply_on("sim2");
    let log = RolloutLog::new();
    let plan = RolloutPlan::staged(1, "fifo", HookKind::CmpNode, &names, &[75]);
    let outcome = Rollout::run(
        plan,
        &log,
        &target,
        &mut AlwaysGreen,
        &ChaosInjector::inert(),
    )
    .unwrap();
    match outcome {
        RolloutOutcome::Aborted(reason) => assert!(reason.contains("injected apply failure")),
        RolloutOutcome::Committed => panic!("expected abort"),
    }
    assert_eq!(target.applied_count(), 0, "canary must unwind too");
}

/// Crash *during recovery* still converges: recovery is idempotent
/// because every decision probes live patch state.
#[test]
fn crash_during_recovery_reconverges() {
    // First crash the rollout at a point where waves are partially
    // applied, then crash recovery itself at each of *its* steps and
    // re-recover until it completes.
    let concord = Concord::new();
    let mut names = Vec::new();
    for i in 0..5 {
        let name = format!("lock{i}");
        concord
            .registry()
            .register_shfl(&name, Arc::new(ShflLock::new()));
        names.push(name);
    }
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();
    let target = RealTarget::new(&concord, loaded, BreakerConfig::default());
    let log = RolloutLog::new();
    // Crash mid-rollout (step 8 lands after the canary applied).
    let plan = RolloutPlan::staged(1, "numa", HookKind::CmpNode, &names, &[50]);
    let run = Rollout::run(
        plan,
        &log,
        &target,
        &mut AlwaysGreen,
        &ChaosInjector::new(ChaosPlan::crash_at(0, 8)),
    );
    assert!(matches!(run, Err(RolloutError::Crashed(8))));
    assert!(
        !target.applied_locks(1, &names).is_empty(),
        "step 8 must land with patches applied"
    );

    // Sweep recovery's own crash points.
    let probe = ChaosInjector::inert();
    let baseline_log = log.clone();
    // Count recovery steps with a dry run on a cloned world? Recovery
    // mutates, so instead: crash recovery at step k for growing k until
    // a run completes without crashing; each attempt recovers the same
    // (durable) log and world.
    let mut k = 0;
    loop {
        match Rollout::recover(&baseline_log, &target, &ChaosInjector::new(ChaosPlan::crash_at(0, k))) {
            Err(RolloutError::Crashed(_)) => {
                k += 1;
                assert!(k < 200, "recovery never completes");
            }
            Ok(out) => {
                // Converged (possibly after several crashed attempts).
                assert!(matches!(
                    out,
                    concord::RecoverOutcome::RolledBack
                        | concord::RecoverOutcome::AlreadyTerminal(_)
                ));
                break;
            }
            Err(e) => panic!("unexpected recovery error: {e}"),
        }
    }
    assert!(target.applied_locks(1, &names).is_empty());
    // A final recover on the terminal log is a no-op.
    assert!(matches!(
        Rollout::recover(&baseline_log, &target, &probe).unwrap(),
        concord::RecoverOutcome::AlreadyTerminal(RolloutOutcome::Aborted(_))
    ));
}
