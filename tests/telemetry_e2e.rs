//! End-to-end telemetry: the single ordered stream the trace plane
//! promises, exercised through every event class at once.
//!
//! A bytecode policy that calls `trace_emit` is attached to a contended
//! ShflLock; the drained stream must interleave lock-slow-path
//! transitions, hook-dispatch spans, and the policy's own emitted
//! records, in timestamp order. The same scenario on the simulated
//! machine must produce a deterministic, seed-stable sequence stamped in
//! DES virtual time.
//!
//! The armed flag is process-global, so every test here serializes on
//! one mutex and drains leftovers before measuring.

use std::rc::Rc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use concord::{Concord, PolicySpec};
use ksim::SimBuilder;
use locks::hooks::HookKind;
use locks::{RawLock, ShflLock};
use simlocks::SimShflLock;
use telemetry::{EventKind, TraceEvent};

/// One-byte `trace_emit` payload (`b"A"`), valid on every hook.
const EMITTER_ASM: &str =
    "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 1\n call trace_emit\n mov r0, 0\n exit";

static TRACE_GUARD: Mutex<()> = Mutex::new(());

/// Serializes armed-plane tests and starts from an empty, disarmed plane.
fn trace_session() -> MutexGuard<'static, ()> {
    let guard = TRACE_GUARD
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    telemetry::set_armed(false);
    telemetry::drain();
    guard
}

#[test]
fn real_lock_stream_interleaves_all_three_event_classes() {
    let _session = trace_session();

    let c = Concord::new();
    let lock = Arc::new(ShflLock::new());
    c.registry().register_shfl("traced", Arc::clone(&lock));
    let loaded = c
        .load(PolicySpec::from_asm(
            "emitter",
            HookKind::LockAcquired,
            EMITTER_ASM,
        ))
        .unwrap();
    let handle = c.attach("traced", &loaded).unwrap();

    telemetry::set_armed(true);
    // Guarantee contention regardless of core count: one holder sleeps
    // inside the critical section while the waiters pile up, then
    // everyone hammers for volume.
    let held = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let holder = {
        let l = Arc::clone(&lock);
        let h = Arc::clone(&held);
        std::thread::spawn(move || {
            locks::topo::pin_thread(0);
            let g = l.lock();
            h.store(true, std::sync::atomic::Ordering::Release);
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(g);
            for _ in 0..200 {
                let g = l.lock();
                std::hint::black_box(&g);
                drop(g);
            }
        })
    };
    while !held.load(std::sync::atomic::Ordering::Acquire) {
        std::hint::spin_loop();
    }
    let mut workers = Vec::new();
    for i in 1..4u32 {
        let l = Arc::clone(&lock);
        workers.push(std::thread::spawn(move || {
            locks::topo::pin_thread(i * 10);
            for _ in 0..200 {
                let g = l.lock();
                std::hint::black_box(&g);
                drop(g);
            }
        }));
    }
    holder.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }
    telemetry::set_armed(false);
    let events = telemetry::drain();
    c.detach(handle).unwrap();

    let lock_id = c.registry().get("traced").unwrap().id();
    let stream: Vec<&TraceEvent> = events.iter().filter(|e| e.a == lock_id).collect();
    assert!(!stream.is_empty(), "no events for the traced lock");

    // Merged drain order is the stream's contract: nondecreasing time.
    assert!(
        stream.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "drained stream is not in timestamp order"
    );

    let count = |k: EventKind| stream.iter().filter(|e| e.kind == k).count();
    assert!(count(EventKind::LockAcquire) > 0, "no acquire transitions");
    assert!(count(EventKind::LockAcquired) > 0, "no acquired transitions");
    assert!(count(EventKind::LockRelease) > 0, "no release transitions");
    assert!(
        count(EventKind::LockContended) > 0,
        "4-thread hammer produced no contention"
    );
    assert!(count(EventKind::HookSpan) > 0, "no hook-dispatch spans");
    assert!(count(EventKind::PolicyEmit) > 0, "no policy-emitted events");

    // Interleaving: policy emissions happen *among* the transitions, not
    // batched before or after them.
    let first = |k: EventKind| stream.iter().position(|e| e.kind == k).unwrap();
    let last = |k: EventKind| stream.iter().rposition(|e| e.kind == k).unwrap();
    assert!(
        first(EventKind::PolicyEmit) < last(EventKind::LockRelease),
        "policy emissions all trail the transitions"
    );
    assert!(
        first(EventKind::LockAcquire) < last(EventKind::PolicyEmit),
        "transitions all trail the policy emissions"
    );

    for ev in stream.iter().filter(|e| e.kind == EventKind::HookSpan) {
        assert_eq!(
            ev.b,
            u64::from(HookKind::LockAcquired.bit()),
            "hook span carries the wrong hook bit"
        );
        assert!(ev.c > 0, "hook span executed zero instructions");
        assert_eq!(
            ev.c + ev.d,
            1 << 16,
            "insns + budget-remaining must equal the hook budget"
        );
    }
    for ev in stream.iter().filter(|e| e.kind == EventKind::PolicyEmit) {
        assert_eq!(ev.payload_bytes(), b"A", "trace_emit payload mangled");
        assert!(ev.b > 0, "policy emit lost the emitting tid");
    }
}

/// Runs the contended-sim scenario and returns its drained, seq-normalized
/// event stream. Caller holds the session guard with the plane armed.
fn sim_trace(seed: u64) -> Vec<TraceEvent> {
    telemetry::drain();
    let c = Concord::new();
    let sim = SimBuilder::new().seed(seed).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    let loaded = c
        .load(PolicySpec::from_asm(
            "emitter",
            HookKind::CmpNode,
            EMITTER_ASM,
        ))
        .unwrap();
    let policy = c.make_sim_policy(&sim, &[&loaded]);
    c.attach_sim(&lock, Rc::new(policy));

    // Two waiters per socket keeps the queue deep enough that the
    // shuffler scans successors (and so consults `cmp_node`) every phase.
    for i in 0..16u32 {
        let l = Rc::clone(&lock);
        sim.spawn_on(ksim::CpuId((i % 8) * 10 + i / 8), move |t| async move {
            for _ in 0..25 {
                l.acquire(&t).await;
                t.advance(200 + t.rng_u64() % 100).await;
                l.release(&t).await;
                t.advance(t.rng_u64() % 400).await;
            }
        });
    }
    sim.run();

    let lock_id = lock.id();
    let mut events = telemetry::drain();
    events.retain(|e| e.a == lock_id);
    // Ring sequence numbers are process-global and monotonic, so two
    // identical runs differ only there; normalize them away.
    for e in &mut events {
        e.seq = 0;
    }
    events
}

#[test]
fn sim_trace_is_deterministic_and_seed_stable() {
    let _session = trace_session();
    telemetry::set_armed(true);
    let first = sim_trace(7);
    let second = sim_trace(7);
    let other_seed = sim_trace(8);
    telemetry::set_armed(false);
    telemetry::drain();

    assert!(!first.is_empty(), "sim scenario produced no events");
    assert!(
        first.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "sim stream is not in virtual-timestamp order"
    );
    let has = |k: EventKind| first.iter().any(|e| e.kind == k);
    assert!(has(EventKind::LockAcquire), "no sim acquire transitions");
    assert!(has(EventKind::LockContended), "no sim contention");
    assert!(has(EventKind::CmpNode), "shuffler consulted no policy");
    assert!(has(EventKind::HookSpan), "no sim hook spans");
    assert!(has(EventKind::PolicyEmit), "no sim policy emissions");

    assert_eq!(
        first, second,
        "same seed must replay a bit-identical event sequence"
    );
    assert_ne!(
        first, other_seed,
        "different seeds should not collide on the full stream"
    );
}
