//! Cross-crate mutual-exclusion stress for the whole real-thread lock zoo,
//! with and without policies attached.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use locks::{
    Bravo, ClhLock, CnaLock, McsLock, NeutralRwLock, RawLock, RawRwLock, ShflLock, ShflMutex,
    TasLock, TicketLock,
};

const THREADS: usize = 8;
const ITERS: usize = 3_000;

struct Shared<L> {
    lock: L,
    counter: UnsafeCell<u64>,
    inside: AtomicU32,
}

// SAFETY: `counter` is only touched while `lock` is held; the test asserts
// exactly that via `inside`.
unsafe impl<L: RawLock> Sync for Shared<L> {}

fn stress<L: RawLock + 'static>(lock: L) {
    let shared = Arc::new(Shared {
        lock,
        counter: UnsafeCell::new(0),
        inside: AtomicU32::new(0),
    });
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let s = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            locks::topo::pin_thread((t as u32 * 13) % 80);
            for _ in 0..ITERS {
                let _g = s.lock.lock();
                assert_eq!(s.inside.fetch_add(1, Ordering::SeqCst), 0);
                // SAFETY: protected by the lock under test.
                unsafe {
                    *s.counter.get() += 1;
                }
                s.inside.fetch_sub(1, Ordering::SeqCst);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: all threads joined.
    assert_eq!(unsafe { *shared.counter.get() }, (THREADS * ITERS) as u64);
}

#[test]
fn tas_lock() {
    stress(TasLock::new());
}

#[test]
fn ticket_lock() {
    stress(TicketLock::new());
}

#[test]
fn mcs_lock() {
    stress(McsLock::new());
}

#[test]
fn clh_lock() {
    stress(ClhLock::new());
}

#[test]
fn cna_lock() {
    stress(CnaLock::new());
}

#[test]
fn shfl_lock_fifo() {
    stress(ShflLock::new());
}

#[test]
fn shfl_lock_numa() {
    stress(ShflLock::with_numa_policy());
}

#[test]
fn shfl_mutex() {
    stress(ShflMutex::new());
}

#[test]
fn shfl_lock_with_every_prebuilt_policy() {
    use concord::Concord;

    for spec in [
        concord::policies::numa_aware(),
        concord::policies::priority_boost(),
        concord::policies::lock_inheritance(),
        concord::policies::scheduler_cooperative(5_000),
        concord::policies::amp_aware(40),
    ] {
        let c = Concord::new();
        let lock = Arc::new(ShflLock::new());
        c.registry().register_shfl("under_test", Arc::clone(&lock));
        let name = spec.name.clone();
        let loaded = c.load(spec).unwrap();
        let h = c.attach("under_test", &loaded).unwrap();

        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..6u32 {
            let (l, cnt) = (Arc::clone(&lock), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                locks::topo::pin_thread(t * 11 % 80);
                locks::topo::set_priority(t as i64 - 3);
                locks::topo::set_cs_hint(u64::from(t) * 1_000);
                for _ in 0..1_000 {
                    let _g = l.lock();
                    cnt.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for hdl in handles {
            hdl.join().unwrap();
        }
        assert_eq!(
            counter.load(Ordering::Relaxed),
            6_000,
            "policy `{name}` lost acquisitions"
        );
        c.detach(h).unwrap();
    }
}

#[test]
fn rwlock_consistency() {
    struct RwShared {
        lock: NeutralRwLock,
        pair: UnsafeCell<(u64, u64)>,
    }
    // SAFETY: pair written under write lock, read under read lock.
    unsafe impl Sync for RwShared {}

    let s = Arc::new(RwShared {
        lock: NeutralRwLock::new(),
        pair: UnsafeCell::new((0, 0)),
    });
    let mut handles = Vec::new();
    for t in 0..6 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                if t < 2 {
                    let _g = s.lock.write();
                    // SAFETY: exclusive.
                    unsafe {
                        let p = &mut *s.pair.get();
                        p.0 += 1;
                        p.1 += 1;
                    }
                } else {
                    let _g = s.lock.read();
                    // SAFETY: shared, writers excluded.
                    let p = unsafe { *s.pair.get() };
                    assert_eq!(p.0, p.1);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: joined.
    assert_eq!(unsafe { *s.pair.get() }.0, 4_000);
}

#[test]
fn bravo_consistency_under_switching() {
    struct BrShared {
        lock: Bravo<NeutralRwLock>,
        pair: UnsafeCell<(u64, u64)>,
    }
    // SAFETY: as above.
    unsafe impl Sync for BrShared {}

    let s = Arc::new(BrShared {
        lock: Bravo::new(NeutralRwLock::new()),
        pair: UnsafeCell::new((0, 0)),
    });
    let stop = Arc::new(AtomicU32::new(0));
    // A control-plane thread toggling the bias while readers/writers run.
    let toggler = {
        let (s, stop) = (Arc::clone(&s), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut on = false;
            while stop.load(Ordering::Relaxed) == 0 {
                s.lock.set_bias_enabled(on);
                on = !on;
                std::thread::yield_now();
            }
            s.lock.set_bias_enabled(true);
        })
    };
    let mut handles = Vec::new();
    for t in 0..5 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                if t == 0 {
                    let _g = s.lock.write();
                    // SAFETY: exclusive.
                    unsafe {
                        let p = &mut *s.pair.get();
                        p.0 += 1;
                        p.1 += 1;
                    }
                } else {
                    let _g = s.lock.read();
                    // SAFETY: shared.
                    let p = unsafe { *s.pair.get() };
                    assert_eq!(p.0, p.1, "writer overlapped a reader");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    toggler.join().unwrap();
    // SAFETY: joined.
    assert_eq!(unsafe { *s.pair.get() }.0, 2_000);
}

#[test]
fn sim_zoo_sweep_under_schedule_explorer() {
    // The simulated zoo, swept by the schedule explorer's random strategy:
    // adversarial delay/preempt injection at every hook site must never
    // produce a mutual-exclusion, lock-order, deadlock or starvation
    // violation on a correct lock (the planted-bug fixtures prove the
    // same oracles do fire on broken ones — tests/schedule_explore.rs).
    use concord::{explore, ExploreConfig, Fixture, StrategySpec, ZooLock};

    let spec = StrategySpec::from_name("random").unwrap();
    for zoo in ZooLock::ALL {
        let cfg = ExploreConfig {
            schedules: 12,
            base_seed: 0xa11,
            ..ExploreConfig::default()
        };
        let report = explore(Fixture::Zoo(zoo), &spec, &cfg).unwrap();
        assert!(
            report.violation.is_none(),
            "zoo_{} flagged under injection: {:?}",
            zoo.name(),
            report.violation
        );
        assert_eq!(report.schedules_run, 12, "sweep ended early");
    }
}
