//! Contention analysis over real traces, simulated and native.
//!
//! The ksim half drives the contended SimShflLock scenario (sized to fit
//! the rings losslessly) through `telemetry::analyze` and asserts the
//! blame conservation law holds *exactly* across randomized seeds, and
//! that a fixed seed re-analyzes to a bit-identical report (the repo's
//! determinism convention: run-to-run equality, not pinned constants).
//! The native half reuses the holder-sleeps pattern from
//! `tests/telemetry_e2e.rs`: timing-dependent volumes mean we assert the
//! conservation law and chain coverage, not exactness.
//!
//! The armed flag is process-global, so every test here serializes on
//! one mutex and drains leftovers before measuring.

use std::rc::Rc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use concord::{Concord, PolicySpec};
use ksim::SimBuilder;
use locks::hooks::HookKind;
use locks::{RawLock, ShflLock};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use simlocks::SimShflLock;
use telemetry::analyze::{analyze, HANDOFF_TENANT};
use telemetry::{AnalyzeConfig, Report};

/// One-byte `trace_emit` payload (`b"A"`), valid on every hook.
const EMITTER_ASM: &str =
    "stb [r10-1], 65\n mov r1, r10\n add r1, -1\n mov r2, 1\n call trace_emit\n mov r0, 0\n exit";

static TRACE_GUARD: Mutex<()> = Mutex::new(());

/// Serializes armed-plane tests and starts from an empty, disarmed plane.
fn trace_session() -> MutexGuard<'static, ()> {
    let guard = TRACE_GUARD
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    telemetry::set_armed(false);
    telemetry::drain();
    guard
}

/// Runs the contended-sim scenario at `seed` and analyzes its drained
/// trace. Sized (8 tasks × 15 iterations) so the whole run fits the
/// rings without overwrite — asserted via the plane's drop counter,
/// since per-ring prefix loss is invisible to seq-gap detection.
/// Caller holds the session guard.
fn analyzed_sim_trace(seed: u64) -> Report {
    telemetry::drain();
    let dropped_before = telemetry::dropped();
    telemetry::set_armed(true);

    let c = Concord::new();
    let sim = SimBuilder::new().seed(seed).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    let loaded = c
        .load(PolicySpec::from_asm(
            "emitter",
            HookKind::CmpNode,
            EMITTER_ASM,
        ))
        .unwrap();
    let policy = c.make_sim_policy(&sim, &[&loaded]);
    c.attach_sim(&lock, Rc::new(policy));

    for i in 0..8u32 {
        let l = Rc::clone(&lock);
        sim.spawn_on(ksim::CpuId(i * 10), move |t| async move {
            for _ in 0..15 {
                l.acquire(&t).await;
                t.advance(200 + t.rng_u64() % 100).await;
                l.release(&t).await;
                t.advance(t.rng_u64() % 400).await;
            }
        });
    }
    sim.run();

    telemetry::set_armed(false);
    let lock_id = lock.id();
    let mut events = telemetry::drain();
    assert_eq!(
        telemetry::dropped() - dropped_before,
        0,
        "sim scenario overflowed the rings; shrink it so the trace is lossless"
    );
    events.retain(|e| e.a == lock_id);
    // Ring sequence numbers are process-global and monotonic across
    // drains; normalize so two identical runs analyze identically.
    for e in &mut events {
        e.seq = 0;
    }
    // Retaining one lock's records leaves same-ring seqs non-contiguous;
    // zeroing them above means no false gaps either.
    analyze(&events, AnalyzeConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The conservation law is a theorem of the partition, not a property
    /// of one lucky interleaving: random seeds, always exact on a
    /// lossless virtual-time trace.
    #[test]
    fn ksim_conservation_is_exact_across_seeds(seed in 0u64..1000) {
        let _session = trace_session();
        let r = analyzed_sim_trace(seed);
        prop_assert!(r.events > 0, "sim scenario produced no events");
        prop_assert!(
            r.exact(),
            "lossless sim trace not exact (gaps={} anomalies={} truncated={})",
            r.seq_gaps,
            r.anomalies,
            r.truncated
        );
        prop_assert!(r.conservation_holds(), "law violated:\n{}", r.render());
        let chain_ns: u64 = r.chains.values().sum();
        prop_assert_eq!(chain_ns, r.total_wait_ns());
    }
}

#[test]
fn ksim_fixed_seed_analysis_is_bit_identical() {
    let _session = trace_session();
    let a = analyzed_sim_trace(7);
    let b = analyzed_sim_trace(7);
    let other = analyzed_sim_trace(8);

    assert!(a.total_wait_ns() > 0, "fixed-seed scenario saw no contention");
    assert_eq!(
        a.render(),
        b.render(),
        "same seed must analyze to a byte-identical report"
    );
    assert_eq!(a.stable_hash(), b.stable_hash());
    assert_ne!(
        a.stable_hash(),
        other.stable_hash(),
        "different seeds should not collide on the full report"
    );
}

#[test]
fn real_lock_blame_respects_conservation() {
    let _session = trace_session();

    let c = Concord::new();
    let lock = Arc::new(ShflLock::new());
    c.registry().register_shfl("traced", Arc::clone(&lock));
    let lock_id = c.registry().get("traced").unwrap().id();

    telemetry::set_armed(true);
    // One holder sleeps inside the critical section while the waiters
    // pile up — guaranteed contention regardless of core count — then
    // everyone hammers for volume.
    let held = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let holder = {
        let l = Arc::clone(&lock);
        let h = Arc::clone(&held);
        std::thread::spawn(move || {
            locks::topo::pin_thread(0);
            let g = l.lock();
            h.store(true, std::sync::atomic::Ordering::Release);
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(g);
            // Modest volume: 4 threads × 50 contended iterations emit well
            // under the 4-ring (2048-record) capacity in play here, so the
            // 50ms-hold prefix — the blame this test asserts on — cannot
            // be overwritten before the final drain.
            for _ in 0..50 {
                let g = l.lock();
                std::hint::black_box(&g);
                drop(g);
            }
        })
    };
    while !held.load(std::sync::atomic::Ordering::Acquire) {
        std::hint::spin_loop();
    }
    let mut workers = Vec::new();
    for i in 1..4u32 {
        let l = Arc::clone(&lock);
        workers.push(std::thread::spawn(move || {
            locks::topo::pin_thread(i * 10);
            for _ in 0..50 {
                let g = l.lock();
                std::hint::black_box(&g);
                drop(g);
            }
        }));
    }
    holder.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }
    telemetry::set_armed(false);
    let events = telemetry::drain();

    let mut cfg = AnalyzeConfig::default();
    cfg.lock_names.insert(lock_id, "traced".into());
    let r = analyze(&events, cfg);

    let lr = r.locks.get(&lock_id).expect("traced lock absent from report");
    assert_eq!(lr.name, "traced");
    assert!(lr.completed_waits > 0, "holder-sleeps produced no completed waits");
    assert!(lr.wait_ns > 0, "completed waits measured zero time");
    // The law holds on wall-clock traces too — even if the ring dropped
    // records (this run's volume is timing-dependent), because the
    // partition fills unobserved time with the handoff row instead of
    // inventing or losing nanoseconds.
    assert!(r.conservation_holds(), "law violated:\n{}", r.render());
    assert!(!r.chains.is_empty(), "contended waits produced no blocking chains");

    // The flamegraph is the chains verbatim: its total width must equal
    // the total measured wait.
    let flame = telemetry::export::to_flamegraph(&r);
    let width: u64 = flame
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(width, r.total_wait_ns(), "flamegraph width != total wait");

    // The 50ms holder is the dominant blamed party: the biggest caused
    // cell must dwarf pure-handoff time.
    let top = lr.caused.iter().max_by_key(|(_, ns)| **ns).unwrap();
    assert_ne!(
        *top.0,
        (HANDOFF_TENANT, "(unpatched)".to_string()),
        "blame should land on the sleeping holder, not on handoff:\n{}",
        r.render()
    );
}
