//! End-to-end schedule exploration: every planted bug in `simlocks::broken`
//! must be found by every strategy, shrink to a minimal injection list, and
//! replay bit-identically from its text artifact (DESIGN.md §4.8).

use concord::{explore, ExploreConfig, ExploreError, Fixture, Repro, StrategySpec, Violation};

const STRATEGIES: &[&str] = &["random", "pct", "policy"];

fn campaign(fixture: Fixture, strategy: &str) -> concord::ExploreReport {
    let spec = StrategySpec::from_name(strategy).unwrap();
    let cfg = ExploreConfig {
        schedules: 64,
        base_seed: 7,
        ..ExploreConfig::default()
    };
    explore(fixture, &spec, &cfg).unwrap()
}

#[test]
fn every_strategy_finds_every_planted_bug() {
    for fixture in Fixture::BROKEN {
        for strategy in STRATEGIES {
            let report = campaign(fixture, strategy);
            let v = report.violation.unwrap_or_else(|| {
                panic!("{} not caught under {strategy}", fixture.name())
            });
            let expected: &[&str] = match fixture {
                // The lost-ticket race surfaces as double entry or as the
                // second ticket-holder waiting forever.
                Fixture::BrokenTicket => &["mutex", "deadlock"],
                Fixture::Inversion => &["lock_order", "deadlock"],
                Fixture::Steal => &["starvation", "hazard"],
                Fixture::Zoo(_) => unreachable!(),
            };
            assert!(
                expected.contains(&v.kind()),
                "{} under {strategy}: unexpected violation {v}",
                fixture.name()
            );
            assert!(report.repro.is_some(), "violation without repro");
        }
    }
}

#[test]
fn shrunk_repros_replay_bit_identically() {
    for fixture in Fixture::BROKEN {
        let report = campaign(fixture, "random");
        let repro = report.repro.expect("planted bug not found");

        // Text artifact round-trips exactly.
        let parsed = Repro::from_text(&repro.to_text()).unwrap();
        assert_eq!(parsed, repro);

        // Two independent replays from the parsed artifact must both land
        // on the recorded violation kind and the pinned trace hash
        // (replay() verifies both internally).
        let first = parsed.replay().unwrap();
        let second = parsed.replay().unwrap();
        assert_eq!(first.trace_hash, repro.trace_hash);
        assert_eq!(second.trace_hash, repro.trace_hash);
    }
}

#[test]
fn exploration_is_deterministic() {
    for strategy in STRATEGIES {
        let a = campaign(Fixture::BrokenTicket, strategy);
        let b = campaign(Fixture::BrokenTicket, strategy);
        assert_eq!(a.first_bug_schedule, b.first_bug_schedule);
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.repro, b.repro, "shrink diverged under {strategy}");
    }
}

#[test]
fn shrunk_injection_lists_are_minimal() {
    // Dropping any single surviving injection must lose the violation —
    // otherwise the shrinker left slack. (Skip repros that already shrank
    // to the empty list, e.g. the schedule-independent ordering bug.)
    let report = campaign(Fixture::BrokenTicket, "random");
    let repro = report.repro.expect("planted bug not found");
    assert!(
        !repro.injections.is_empty(),
        "broken_ticket needs injections to race"
    );
    for drop_at in 0..repro.injections.len() {
        let mut trimmed = repro.clone();
        trimmed.injections.remove(drop_at);
        match trimmed.replay() {
            Err(ExploreError::ReplayDiverged { .. }) => {}
            Err(ExploreError::NondeterministicReplay { .. }) => {
                // Still failing, but along a different schedule — the
                // injection was load-bearing for the pinned trace.
            }
            Ok(_) => panic!("injection {drop_at} was removable; shrink not minimal"),
            Err(e) => panic!("unexpected replay error: {e}"),
        }
    }
}

#[test]
fn tampered_artifact_is_rejected() {
    let report = campaign(Fixture::BrokenTicket, "random");
    let repro = report.repro.expect("planted bug not found");
    let mut tampered = repro.clone();
    tampered.trace_hash ^= 1;
    assert!(matches!(
        tampered.replay(),
        Err(ExploreError::NondeterministicReplay { .. })
    ));
    let mut wrong_kind = repro;
    wrong_kind.violation = "starvation".to_string();
    assert!(matches!(
        wrong_kind.replay(),
        Err(ExploreError::ReplayDiverged { .. })
    ));
}

#[test]
fn inversion_is_schedule_independent() {
    // The AB/BA ordering bug is a protocol error, not a timing one: the
    // lock-order oracle flags it on the very first schedule and the
    // shrinker reduces the repro to the empty injection list.
    let report = campaign(Fixture::Inversion, "random");
    assert_eq!(report.first_bug_schedule, Some(0));
    let v = report.violation.unwrap();
    assert!(matches!(v, Violation::LockOrder { .. }), "got {v}");
    let repro = report.repro.unwrap();
    assert!(repro.injections.is_empty());
    repro.replay().unwrap();
}
