//! The simulator must be bit-for-bit deterministic: identical seeds and
//! workloads produce identical event traces, times and results — the
//! property that makes figure regeneration reproducible.

use std::cell::Cell;
use std::rc::Rc;

use concord::Concord;
use ksim::{CpuId, SimBuilder, SimStats};
use simlocks::{SimBravo, SimMcsLock, SimShflLock};

fn shfl_run(seed: u64, with_policy: bool) -> (SimStats, u64, u64) {
    let sim = SimBuilder::new().seed(seed).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    if with_policy {
        let concord = Concord::new();
        let loaded = concord.load(concord::policies::numa_aware()).unwrap();
        let policy = concord.make_sim_policy(&sim, &[&loaded]);
        concord.attach_sim(&lock, Rc::new(policy));
    }
    let acquired = Rc::new(Cell::new(0u64));
    for i in 0..32u32 {
        let (l, _a) = (Rc::clone(&lock), Rc::clone(&acquired));
        sim.spawn_on(CpuId((i % 8) * 10 + i / 8), move |t| async move {
            for _ in 0..40 {
                l.acquire(&t).await;
                t.advance(200 + t.rng_u64() % 100).await;
                l.release(&t).await;
                t.advance(t.rng_u64() % 500).await;
            }
        });
    }
    let stats = sim.run();
    (stats, acquired.get(), lock.move_count())
}

#[test]
fn identical_seeds_identical_traces() {
    let a = shfl_run(42, true);
    let b = shfl_run(42, true);
    assert_eq!(a.0, b.0, "SimStats must match exactly");
    assert_eq!(a.2, b.2, "shuffle moves must match exactly");
}

#[test]
fn different_seeds_different_traces() {
    let a = shfl_run(1, true);
    let b = shfl_run(2, true);
    assert_ne!(a.0.trace_hash, b.0.trace_hash);
}

#[test]
fn policy_attachment_changes_the_trace() {
    let plain = shfl_run(7, false);
    let patched = shfl_run(7, true);
    assert_ne!(
        plain.0.trace_hash, patched.0.trace_hash,
        "attaching a policy must be observable in the trace"
    );
    assert_eq!(plain.2, 0);
}

#[test]
fn mcs_and_bravo_runs_are_deterministic() {
    let run = |seed: u64| {
        let sim = SimBuilder::new().seed(seed).build();
        let mcs = Rc::new(SimMcsLock::new(&sim));
        let rw = Rc::new(SimBravo::new(&sim));
        for i in 0..16u32 {
            let (m, r) = (Rc::clone(&mcs), Rc::clone(&rw));
            sim.spawn_on(CpuId(i * 5), move |t| async move {
                for k in 0..30u64 {
                    m.acquire(&t).await;
                    t.advance(100 + t.rng_u64() % 50).await;
                    m.release(&t).await;
                    if k % 10 == 0 && i == 0 {
                        r.write_acquire(&t).await;
                        t.advance(300).await;
                        r.write_release(&t).await;
                    } else {
                        r.read_acquire(&t).await;
                        t.advance(150).await;
                        r.read_release(&t).await;
                    }
                }
            });
        }
        sim.run()
    };
    assert_eq!(run(9), run(9));
    assert_ne!(run(9).trace_hash, run(10).trace_hash);
}

#[test]
fn wall_clock_independence() {
    // Virtual time must not depend on host speed: two runs interleaved
    // with host-side delays still agree.
    let a = shfl_run(3, true);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let b = shfl_run(3, true);
    assert_eq!(a.0.final_time_ns, b.0.final_time_ns);
    assert_eq!(a.0.trace_hash, b.0.trace_hash);
}
