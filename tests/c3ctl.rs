//! Drives the `c3ctl` control-plane binary with a script and checks the
//! full userspace workflow from the outside.

use std::io::Write;

#[test]
fn scripted_session_exercises_the_workflow() {
    let script = r#"
locks
loadsrc numa cmp_node if (curr_socket == shuffler_socket) return 1; return 0;
attach mmap_sem numa
patches
profile dcache
hammer dcache 2 2000
report
unprofile
detach
patches
store
quarantines
quit
"#;
    let dir = std::env::temp_dir().join(format!("c3ctl_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("session.c3");
    std::fs::File::create(&path)
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_c3ctl"))
        .arg(&path)
        .output()
        .expect("c3ctl runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "c3ctl failed:\n{stdout}");
    assert!(stdout.contains("mmap_sem     kind=shfl_spin"), "{stdout}");
    assert!(stdout.contains("verified and pinned policies/numa/cmp_node"));
    assert!(stdout.contains("patched mmap_sem/cmp_node"));
    assert!(stdout.contains("4000 acquisitions"));
    assert!(stdout.contains("dcache"));
    assert!(stdout.contains("reverted mmap_sem/cmp_node"));
    assert!(stdout.contains("prog policies/numa/cmp_node"));
    assert!(stdout.contains("(no quarantined policies)"));
    assert!(!stdout.contains("error:"), "unexpected error:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_commands_report_errors_not_crashes() {
    let script = "bogus\nattach nope nothing\nload x bad_hook /nonexistent\nquit\n";
    let dir = std::env::temp_dir().join(format!("c3ctl_test_err_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.c3");
    std::fs::write(&path, script).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_c3ctl"))
        .arg(&path)
        .output()
        .expect("c3ctl runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    assert!(stdout.contains("unknown command `bogus`"));
    assert!(stdout.contains("no loaded policy"));
    assert!(stdout.contains("unknown hook"));
    std::fs::remove_dir_all(&dir).ok();
}
