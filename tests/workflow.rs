//! End-to-end test of the Concord workflow (paper Fig. 1).
//!
//! specify → compile → verify → notify → store → patch → run → revert,
//! including the rejection path and the simulated-machine attach.

use std::rc::Rc;
use std::sync::Arc;

use concord::{Concord, ConcordError, PolicySpec};
use ksim::{CpuId, SimBuilder};
use locks::hooks::HookKind;
use locks::{RawLock, ShflLock};
use simlocks::SimShflLock;

/// The user's policy, written as the assembly a C-style frontend would
/// emit: NUMA-aware cmp_node (same socket ⇒ move forward).
fn numa_asm() -> String {
    let layout = concord::hookctx::cmp_node_layout();
    let sh = layout.field("shuffler_socket").unwrap().offset;
    let cu = layout.field("curr_socket").unwrap().offset;
    format!(
        r#"
        ; cmp_node(lock, shuffler, curr) -> curr.socket == shuffler.socket
        ldxw r2, [r1+{sh}]
        ldxw r3, [r1+{cu}]
        mov  r0, 0
        jne  r2, r3, out
        mov  r0, 1
    out:
        exit
        "#
    )
}

#[test]
fn fig1_full_pipeline_real_lock() {
    let concord = Concord::new();
    let lock = Arc::new(ShflLock::new());
    concord
        .registry()
        .register_shfl("mmap_sem", Arc::clone(&lock));

    // Step 1: specify.
    let spec = PolicySpec::from_asm("numa", HookKind::CmpNode, &numa_asm());
    // Steps 2-5: compile, verify, store.
    let loaded = concord.load(spec).expect("valid policy must verify");
    assert!(
        concord
            .store()
            .get_program("policies/numa/cmp_node")
            .is_some(),
        "verified policy must be pinned in the store"
    );
    // Step 6: patch.
    let handle = concord.attach("mmap_sem", &loaded).expect("attach");
    assert!(lock.hooks().is_active(HookKind::CmpNode));
    assert_eq!(concord.live_patches(), vec!["mmap_sem/cmp_node"]);

    // The patched lock still provides mutual exclusion under load.
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let (l, c) = (Arc::clone(&lock), Arc::clone(&counter));
        handles.push(std::thread::spawn(move || {
            locks::topo::pin_thread(t * 10);
            for _ in 0..1_000 {
                let _g = l.lock();
                c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 6_000);

    // Revert.
    concord.detach(handle).expect("detach");
    assert!(!lock.hooks().is_active(HookKind::CmpNode));
    assert!(concord.live_patches().is_empty());
}

#[test]
fn fig1_rejection_path_notifies_user() {
    let concord = Concord::new();
    // Unbounded loop: the verifier must reject and report the reason.
    let spec = PolicySpec::from_asm(
        "evil",
        HookKind::CmpNode,
        "spin:\n  mov r0, 1\n  ja spin\n  exit",
    );
    match concord.load(spec) {
        Err(ConcordError::Verify(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("backward"), "unexpected reason: {msg}");
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("an unbounded loop must not verify"),
    }
    // Nothing was stored.
    assert!(concord.store().list_programs("policies/evil").is_empty());
}

fn sim_moves(attach_numa: bool) -> u64 {
    let sim = SimBuilder::new().seed(5).build();
    let lock = Rc::new(SimShflLock::new(&sim));
    if attach_numa {
        let concord = Concord::new();
        let loaded = concord.load(concord::policies::numa_aware()).unwrap();
        let policy = concord.make_sim_policy(&sim, &[&loaded]);
        concord.attach_sim(&lock, Rc::new(policy));
    }
    for i in 0..24u32 {
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId((i % 4) * 10 + i / 4), move |t| async move {
            for _ in 0..25 {
                l.acquire(&t).await;
                t.advance(300).await;
                l.release(&t).await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty());
    lock.move_count()
}

#[test]
fn sim_attach_changes_behavior() {
    assert_eq!(sim_moves(false), 0, "unpatched lock never reorders");
    assert!(sim_moves(true) > 0, "NUMA policy must reorder the queue");
}

#[test]
fn sim_detach_restores_fifo() {
    let concord = Concord::new();
    let loaded = concord.load(concord::policies::numa_aware()).unwrap();
    let sim = SimBuilder::new().build();
    let lock = Rc::new(SimShflLock::new(&sim));
    let policy = concord.make_sim_policy(&sim, &[&loaded]);
    concord.attach_sim(&lock, Rc::new(policy));
    concord.detach_sim(&lock);
    for i in 0..8u32 {
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(i * 10), move |t| async move {
            for _ in 0..10 {
                l.acquire(&t).await;
                t.advance(100).await;
                l.release(&t).await;
            }
        });
    }
    let stats = sim.run();
    assert!(stats.stuck_tasks.is_empty());
    assert_eq!(lock.move_count(), 0, "detached lock must be FIFO again");
}

#[test]
fn store_supports_reattach_without_recompile() {
    // A policy pinned in the store can be fetched and attached later
    // without recompiling (the point of Fig. 1 step 5).
    let concord = Concord::new();
    let lock = Arc::new(ShflLock::new());
    concord.registry().register_shfl("l", Arc::clone(&lock));
    concord
        .load(PolicySpec::from_asm(
            "keep",
            HookKind::LockAcquired,
            "mov r0, 0\nexit",
        ))
        .unwrap();

    let fetched = concord
        .store()
        .get_program("policies/keep/lock_acquired")
        .expect("pinned");
    let loaded = concord::LoadedPolicy {
        name: "keep".into(),
        hook: HookKind::LockAcquired,
        prog: fetched,
    };
    let h = concord.attach("l", &loaded).unwrap();
    {
        let _g = lock.lock();
    }
    concord.detach(h).unwrap();
}

#[test]
fn c_style_policy_end_to_end() {
    // The paper's §4.2 authoring surface: the user writes restricted C,
    // Concord compiles, verifies, stores and patches it.
    let concord = Concord::new();
    let lock = Arc::new(ShflLock::new());
    concord.registry().register_shfl("inode", Arc::clone(&lock));

    let spec = PolicySpec::from_c(
        "numa_c",
        HookKind::CmpNode,
        r#"
        // Group waiters from the shuffler's socket; break ties toward
        // higher-priority waiters.
        if (curr_socket == shuffler_socket)
            return 1;
        if (curr_prio > shuffler_prio)
            return 1;
        return 0;
        "#,
    );
    let loaded = concord.load(spec).expect("C policy compiles and verifies");
    let h = concord.attach("inode", &loaded).unwrap();

    // Probe decisions through the hook table.
    let mk = |cpu: u32, prio: i64| locks::hooks::NodeView {
        tid: 1,
        cpu,
        socket: cpu / 10,
        prio,
        cs_hint: 0,
        held_locks: 0,
        wait_start_ns: 0,
    };
    let same_socket = locks::hooks::CmpNodeCtx {
        lock_id: lock.id(),
        shuffler: mk(5, 0),
        curr: mk(7, 0),
    };
    let remote_high_prio = locks::hooks::CmpNodeCtx {
        lock_id: lock.id(),
        shuffler: mk(5, 0),
        curr: mk(45, 3),
    };
    let remote_low_prio = locks::hooks::CmpNodeCtx {
        lock_id: lock.id(),
        shuffler: mk(5, 0),
        curr: mk(45, -1),
    };
    assert!(lock.hooks().eval_cmp_node(&same_socket));
    assert!(lock.hooks().eval_cmp_node(&remote_high_prio));
    assert!(!lock.hooks().eval_cmp_node(&remote_low_prio));

    concord.detach(h).unwrap();

    // The rejection path speaks C too: unknown fields are caught at
    // compile time, before the verifier even runs.
    let bad = PolicySpec::from_c("oops", HookKind::CmpNode, "return not_a_field;");
    match concord.load(bad) {
        Err(ConcordError::Asm(e)) => assert!(e.msg.contains("unknown identifier"), "{e}"),
        _ => panic!("expected a compile error"),
    }
}
