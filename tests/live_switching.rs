//! Live policy switching under load: the core C3 promise — "modify kernel
//! locks on the fly without re-compiling" — exercised while worker threads
//! hammer the locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use concord::{Concord, PolicySpec};
use locks::hooks::HookKind;
use locks::{Bravo, NeutralRwLock, RawLock, RawRwLock, ShflLock};

#[test]
fn attach_detach_while_lock_is_hot() {
    let concord = Arc::new(Concord::new());
    let lock = Arc::new(ShflLock::new());
    concord.registry().register_shfl("hot", Arc::clone(&lock));

    let stop = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for t in 0..4u32 {
        let (l, s, tot) = (Arc::clone(&lock), Arc::clone(&stop), Arc::clone(&total));
        workers.push(std::thread::spawn(move || {
            locks::topo::pin_thread(t * 20);
            while s.load(Ordering::Relaxed) == 0 {
                let _g = l.lock();
                tot.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Control plane: repeatedly load, attach, detach different policies
    // while the workers run.
    let loaded_numa = concord.load(concord::policies::numa_aware()).unwrap();
    let loaded_prio = concord.load(concord::policies::priority_boost()).unwrap();
    for _ in 0..50 {
        let h1 = concord.attach("hot", &loaded_numa).unwrap();
        std::thread::yield_now();
        let h2 = concord.attach("hot", &loaded_prio).unwrap();
        std::thread::yield_now();
        concord.detach(h2).unwrap();
        concord.detach(h1).unwrap();
    }
    assert!(concord.live_patches().is_empty());

    stop.store(1, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    assert!(total.load(Ordering::Relaxed) > 0);
    // After all switching, the lock still works.
    let _g = lock.lock();
}

#[test]
fn profiling_toggles_while_hot() {
    use concord::profiler::Profiler;

    let concord = Concord::new();
    let lock = Arc::new(ShflLock::new());
    concord
        .registry()
        .register_shfl("observed", Arc::clone(&lock));

    let stop = Arc::new(AtomicU64::new(0));
    let worker = {
        let (l, s) = (Arc::clone(&lock), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut n = 0u64;
            while s.load(Ordering::Relaxed) == 0 {
                let _g = l.lock();
                n += 1;
            }
            n
        })
    };

    let mut observed_total = 0;
    for _ in 0..10 {
        let mut prof = Profiler::attach(&concord, &["observed"]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let profiles = prof.detach(&concord).unwrap();
        observed_total += profiles[0].1.counters().0;
    }
    stop.store(1, Ordering::Relaxed);
    let worker_count = worker.join().unwrap();
    assert!(observed_total > 0, "profiler saw nothing");
    assert!(
        observed_total <= worker_count,
        "profiler cannot see more acquisitions than happened"
    );
}

#[test]
fn bravo_switching_shifts_read_paths_under_load() {
    let concord = Concord::new();
    let lock = Arc::new(Bravo::new(NeutralRwLock::new()));
    concord
        .registry()
        .register_bravo("file_table", Arc::clone(&lock));

    // Warm up with biased reads.
    for _ in 0..100 {
        let _r = lock.read();
    }
    let (fast_before, _, _) = lock.stats();
    assert!(fast_before > 0);

    // Switch off: all reads take the underlying lock.
    concord.switch_bravo_bias("file_table", false).unwrap();
    let (fast_mid, slow_mid, _) = lock.stats();
    for _ in 0..100 {
        let _r = lock.read();
    }
    let (fast_after, slow_after, _) = lock.stats();
    assert_eq!(fast_after, fast_mid, "no fast reads while disabled");
    assert_eq!(slow_after - slow_mid, 100);

    // Switch back on: bias returns after a slow read re-enables it.
    concord.switch_bravo_bias("file_table", true).unwrap();
    for _ in 0..10 {
        let _r = lock.read();
    }
    let (fast_final, _, _) = lock.stats();
    assert!(fast_final > fast_after, "bias did not come back");
}

#[test]
fn policy_asm_hot_swap_changes_decisions() {
    // Two policies with opposite answers, swapped live; a probe via the
    // hook table must observe the swap.
    let concord = Concord::new();
    let lock = Arc::new(ShflLock::new());
    concord.registry().register_shfl("l", Arc::clone(&lock));

    let yes = concord
        .load(PolicySpec::from_asm(
            "yes",
            HookKind::CmpNode,
            "mov r0, 1\nexit",
        ))
        .unwrap();
    let no = concord
        .load(PolicySpec::from_asm(
            "no",
            HookKind::CmpNode,
            "mov r0, 0\nexit",
        ))
        .unwrap();

    let probe_ctx = locks::hooks::CmpNodeCtx {
        lock_id: lock.id(),
        shuffler: locks::hooks::NodeView {
            tid: 1,
            cpu: 0,
            socket: 0,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        },
        curr: locks::hooks::NodeView {
            tid: 2,
            cpu: 40,
            socket: 4,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        },
    };

    let h_yes = concord.attach("l", &yes).unwrap();
    assert!(lock.hooks().eval_cmp_node(&probe_ctx));
    let h_no = concord.attach("l", &no).unwrap();
    assert!(!lock.hooks().eval_cmp_node(&probe_ctx));
    concord.detach(h_no).unwrap();
    assert!(
        lock.hooks().eval_cmp_node(&probe_ctx),
        "revert restores `yes`"
    );
    concord.detach(h_yes).unwrap();
    assert!(
        !lock.hooks().eval_cmp_node(&probe_ctx),
        "vacant hook = FIFO"
    );
}

#[test]
fn rename_style_lock_chains_with_inheritance_policy() {
    // The paper's lock-inheritance motivation: a rename-like operation
    // "can acquire up to 12 locks". Build a 12-lock chain, attach the
    // inheritance policy to every lock, and verify the chain completes
    // correctly under competing single-lock traffic.
    use std::sync::atomic::AtomicBool;

    let concord = Arc::new(Concord::new());
    let chain: Vec<Arc<ShflLock>> = (0..12)
        .map(|i| {
            let l = Arc::new(ShflLock::new());
            concord.registry().register_shfl(&format!("vfs{i}"), Arc::clone(&l));
            l
        })
        .collect();
    let loaded = concord.load(concord::policies::lock_inheritance()).unwrap();
    let mut patches = Vec::new();
    for i in 0..12 {
        patches.push(concord.attach(&format!("vfs{i}"), &loaded).unwrap());
    }

    let stop = Arc::new(AtomicBool::new(false));
    // Competing single-lock traffic on half the chain members (a single
    // host CPU serializes everything; keep the schedule pressure bounded).
    let mut noise = Vec::new();
    for (i, l) in chain.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
        let (l, s) = (Arc::clone(l), Arc::clone(&stop));
        noise.push(std::thread::spawn(move || {
            locks::topo::pin_thread((i as u32 * 7) % 80);
            while !s.load(Ordering::Relaxed) {
                let _g = l.lock();
            }
        }));
    }
    // The renamer: acquires the whole chain in order, declaring held
    // counts — the context the inheritance policy consumes.
    let renamer = {
        let chain: Vec<_> = chain.iter().map(Arc::clone).collect();
        std::thread::spawn(move || {
            locks::topo::pin_thread(0);
            for _ in 0..100 {
                let mut guards = Vec::new();
                for l in &chain {
                    guards.push(l.lock());
                    locks::topo::note_lock_acquired();
                }
                // All 12 held: the composite op.
                std::hint::spin_loop();
                while guards.pop().is_some() {
                    locks::topo::note_lock_released();
                }
            }
        })
    };
    renamer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for n in noise {
        n.join().unwrap();
    }
    // LIFO revert of all 12 patches.
    while let Some(p) = patches.pop() {
        concord.detach(p).unwrap();
    }
    assert!(concord.live_patches().is_empty());
}
