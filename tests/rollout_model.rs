//! Property-based model check of the rollout state machine.
//!
//! Random wave splits, health verdicts, scripted apply failures and
//! crash points run against the real controller with a pure in-memory
//! target; a reference model — a straight fold over the plan — predicts
//! the outcome, and a structural checker validates every intent log the
//! controller can produce (DESIGN.md §4.7 schema):
//!
//! * a no-crash run's outcome equals the model's prediction;
//! * any crashed run, after recovery (itself possibly crashed once and
//!   re-run), converges all-applied or all-reverted — all-applied iff
//!   `CommitIntent` is durable, which in turn implies the model predicted
//!   a commit;
//! * the log is well-formed: `PlanStart` first, intents precede their
//!   effects, healthy waves are contiguous from zero, exactly one
//!   terminal record, and it is last;
//! * recovery on a terminal log is a no-op.

use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use concord::rollout::{
    ChaosInjector, ChaosPlan, HealthVerdict, Intent, RecoverOutcome, Rollout, RolloutError,
    RolloutLog, RolloutOutcome, RolloutPlan, RolloutTarget, ScriptedHealth,
};
use locks::hooks::HookKind;

/// Pure in-memory world standing in for the patch plane.
struct ModelTarget {
    applied: RefCell<BTreeMap<String, u64>>,
    fail_apply: BTreeSet<String>,
}

impl ModelTarget {
    fn new(fail_apply: BTreeSet<String>) -> Self {
        ModelTarget {
            applied: RefCell::new(BTreeMap::new()),
            fail_apply,
        }
    }

    fn applied_total(&self) -> usize {
        self.applied.borrow().len()
    }
}

impl RolloutTarget for ModelTarget {
    fn apply_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
        for l in locks {
            if self.fail_apply.contains(l) {
                return Err(format!("model apply failure on {l}"));
            }
        }
        let mut applied = self.applied.borrow_mut();
        for l in locks {
            applied.insert(l.clone(), generation);
        }
        Ok(())
    }

    fn applied_locks(&self, generation: u64, locks: &[String]) -> Vec<String> {
        let applied = self.applied.borrow();
        locks
            .iter()
            .filter(|l| applied.get(*l) == Some(&generation))
            .cloned()
            .collect()
    }

    fn revert_locks(&self, generation: u64, locks: &[String]) -> Result<(), String> {
        let mut applied = self.applied.borrow_mut();
        for l in locks {
            if applied.get(l) == Some(&generation) {
                applied.remove(l);
            }
        }
        Ok(())
    }
}

/// What the reference model predicts for an uncrashed run.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Prediction {
    Committed,
    AbortedByApply(usize),
    AbortedByHealth(usize),
}

/// The model: fold the plan wave by wave; an apply failure fires before
/// that wave's verdict, a red verdict fires after a successful apply.
fn reference_model(
    plan: &RolloutPlan,
    fail_lock: Option<&String>,
    red_wave: Option<usize>,
) -> Prediction {
    for (w, wave) in plan.waves.iter().enumerate() {
        if let Some(fail) = fail_lock {
            if wave.contains(fail) {
                return Prediction::AbortedByApply(w);
            }
        }
        if red_wave == Some(w) {
            return Prediction::AbortedByHealth(w);
        }
    }
    Prediction::Committed
}

/// Structural well-formedness of an intent log after the run terminated.
fn check_log_shape(records: &[Intent]) -> Result<(), String> {
    if records.is_empty() {
        return Err("empty log".into());
    }
    if !matches!(records[0], Intent::PlanStart { .. }) {
        return Err(format!("first record is {:?}", records[0]));
    }
    let mut plan_starts = 0;
    let mut terminals = 0;
    let mut healthy_next = 0usize;
    let mut apply_intents: BTreeSet<usize> = BTreeSet::new();
    let mut revert_intents: BTreeSet<usize> = BTreeSet::new();
    for (i, rec) in records.iter().enumerate() {
        match rec {
            Intent::PlanStart { .. } => plan_starts += 1,
            Intent::WaveApplyIntent { wave } => {
                apply_intents.insert(*wave);
            }
            Intent::WaveApplied { wave } => {
                if !apply_intents.contains(wave) {
                    return Err(format!("WaveApplied {wave} without intent"));
                }
            }
            Intent::WaveHealthy { wave } => {
                if *wave != healthy_next {
                    return Err(format!(
                        "WaveHealthy {wave} out of order (expected {healthy_next})"
                    ));
                }
                healthy_next += 1;
            }
            Intent::WaveRevertIntent { wave } => {
                revert_intents.insert(*wave);
            }
            Intent::WaveReverted { wave } => {
                if !revert_intents.contains(wave) {
                    return Err(format!("WaveReverted {wave} without intent"));
                }
            }
            Intent::Committed | Intent::Aborted => {
                terminals += 1;
                if i != records.len() - 1 {
                    return Err(format!("terminal record {rec:?} not last"));
                }
            }
            Intent::CommitIntent | Intent::AbortIntent { .. } => {}
        }
    }
    if plan_starts != 1 {
        return Err(format!("{plan_starts} PlanStart records"));
    }
    if terminals != 1 {
        return Err(format!("{terminals} terminal records"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// The controller, under random wave splits, verdict scripts, apply
    /// failures and crash points, always matches the reference model.
    #[test]
    fn rollout_matches_reference_model(
        n_locks in 1usize..=16,
        pct_a in 0u32..=100,
        pct_b in 0u32..=100,
        red_sel in 0usize..=8,       // >= waves.len() means "never red"
        fail_sel in 0usize..=48,     // < n_locks selects a failing lock
        crash_sel in 0u64..=160,     // >= 120 means "no crash"
        recrash_sel in 0u64..=160,   // crash point for recovery itself
    ) {
        let names: Vec<String> = (0..n_locks).map(|i| format!("l{i}")).collect();
        let pcts = [pct_a.min(pct_b), pct_a.max(pct_b)];
        let plan = RolloutPlan::staged(1, "model", HookKind::CmpNode, &names, &pcts);
        prop_assert_eq!(plan.total_locks(), n_locks);

        let fail_lock = (fail_sel < n_locks).then(|| names[fail_sel].clone());
        let red_wave = (red_sel < plan.waves.len()).then_some(red_sel);
        let predicted = reference_model(&plan, fail_lock.as_ref(), red_wave);

        let fail_set: BTreeSet<String> = fail_lock.iter().cloned().collect();
        let target = ModelTarget::new(fail_set);
        let log = RolloutLog::new();
        let verdicts: Vec<HealthVerdict> = (0..plan.waves.len())
            .map(|w| if red_wave == Some(w) {
                HealthVerdict::Red(format!("scripted red on wave {w}"))
            } else {
                HealthVerdict::Green
            })
            .collect();
        let mut health = ScriptedHealth::new(verdicts);
        let chaos = if crash_sel < 120 {
            ChaosInjector::new(ChaosPlan::crash_at(0, crash_sel))
        } else {
            ChaosInjector::inert()
        };

        let run = Rollout::run(plan.clone(), &log, &target, &mut health, &chaos);
        let mut crashed = false;
        match run {
            Ok(RolloutOutcome::Committed) => {
                prop_assert_eq!(predicted, Prediction::Committed);
            }
            Ok(RolloutOutcome::Aborted(reason)) => {
                match predicted {
                    Prediction::AbortedByApply(w) => prop_assert!(
                        reason.contains(&format!("wave {w} apply failed")),
                        "reason {:?} vs {:?}", reason, predicted
                    ),
                    Prediction::AbortedByHealth(w) => prop_assert!(
                        reason.contains(&format!("scripted red on wave {w}")),
                        "reason {:?} vs {:?}", reason, predicted
                    ),
                    Prediction::Committed => {
                        return Err(TestCaseError::fail(format!(
                            "model predicted commit, controller aborted: {reason}"
                        )));
                    }
                }
            }
            Err(RolloutError::Crashed(_)) => {
                crashed = true;
                // A fresh controller recovers — possibly crashing once
                // itself, then recovering again.
                let first = Rollout::recover(
                    &log,
                    &target,
                    &ChaosInjector::new(ChaosPlan::crash_at(0, recrash_sel)),
                );
                match first {
                    Ok(_) => {}
                    Err(RolloutError::Crashed(_)) => {
                        let second =
                            Rollout::recover(&log, &target, &ChaosInjector::inert());
                        prop_assert!(second.is_ok(), "re-recovery failed: {:?}", second);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("recover: {e}"))),
                }
            }
            Err(e) => return Err(TestCaseError::fail(format!("rollout: {e}"))),
        }

        // Convergence: the world is all-applied or all-reverted, and
        // which one matches the log's terminal record.
        let records = log.records();
        if records.is_empty() {
            // Crashed on the very first barrier, before PlanStart hit
            // the log: nothing durable, nothing mutated, nothing to
            // recover.
            prop_assert!(crashed);
            prop_assert_eq!(target.applied_total(), 0);
            let again = Rollout::recover(&log, &target, &ChaosInjector::inert());
            prop_assert!(matches!(again, Ok(RecoverOutcome::NoRollout)));
            return Ok(());
        }
        check_log_shape(&records).map_err(TestCaseError::fail)?;
        let committed = records.iter().any(|r| matches!(r, Intent::Committed));
        let commit_intent = records.iter().any(|r| matches!(r, Intent::CommitIntent));
        let applied = target.applied_total();
        if committed {
            prop_assert_eq!(applied, n_locks, "committed but not fully applied");
            prop_assert!(commit_intent, "Committed without CommitIntent");
            prop_assert_eq!(predicted, Prediction::Committed,
                "commit is only reachable when the model predicts it");
        } else {
            prop_assert_eq!(applied, 0, "aborted but patches remain");
        }
        if crashed {
            prop_assert!(
                records.iter().any(|r| matches!(r, Intent::AbortIntent { .. }))
                    || commit_intent,
                "recovery must leave an abort or commit intent in the log"
            );
        }

        // Recovery on a terminal log is a no-op and changes nothing.
        let before = target.applied_total();
        let again = Rollout::recover(&log, &target, &ChaosInjector::inert());
        prop_assert!(
            matches!(again, Ok(RecoverOutcome::AlreadyTerminal(_))),
            "expected AlreadyTerminal, got {:?}", again
        );
        prop_assert_eq!(target.applied_total(), before);
        prop_assert_eq!(log.records().len(), records.len(), "no-op recovery appended");
    }

    /// The staged splitter always partitions: waves are non-empty, in
    /// order, disjoint, and cover every lock exactly once — with the
    /// first wave a single-lock canary.
    #[test]
    fn staged_split_is_a_partition(
        n_locks in 1usize..=64,
        pcts in proptest::collection::vec(0u32..=100, 0..=4),
    ) {
        let names: Vec<String> = (0..n_locks).map(|i| format!("l{i}")).collect();
        let plan = RolloutPlan::staged(1, "p", HookKind::CmpNode, &names, &pcts);
        prop_assert_eq!(plan.waves[0].len(), 1, "canary is one lock");
        let mut flat = Vec::new();
        for wave in &plan.waves {
            prop_assert!(!wave.is_empty(), "empty wave");
            flat.extend(wave.iter().cloned());
        }
        prop_assert_eq!(flat, names, "waves must partition the cohort in order");
    }
}
