//! The runner side: configuration, the deterministic RNG, and the error
//! type `prop_assert!` produces.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused by the shim, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 stream, seeded from the test name and case
/// index so every run (and every failure report) reproduces exactly.
pub struct TestRng(u64);

impl TestRng {
    /// The RNG for one generated case of one named test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// An RNG from an explicit seed (for harnesses outside `proptest!`).
    pub fn from_seed(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        let mut c = TestRng::for_case("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut r = TestRng::from_seed(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
    }
}
