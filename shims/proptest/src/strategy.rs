//! Strategies: deterministic value generators with a combinator surface
//! compatible with the proptest API subset this workspace uses.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erases the strategy into a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
    }

    /// Maps generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| f(self.gen_value(rng))))
    }

    /// Builds recursive values: `self` generates leaves, and `branch`
    /// wraps an inner strategy into one layer of structure. `depth`
    /// bounds the nesting; the size/branch hints are accepted for API
    /// compatibility but unused.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(cur).boxed();
            // Equal leaf/branch odds keep expected sizes small while the
            // structural `depth` bound caps the worst case.
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among alternatives (the engine behind `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<T> Union<T> {
    /// Builds a union of the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof of zero strategies");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].gen_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
