//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_recursive`,
//! range and tuple strategies, `any`, `Just`, `prop_oneof!`,
//! `sample::select`, `collection::vec`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//! generation is a fixed deterministic stream (seeded from the test name
//! and case index, so failures reproduce run-over-run), and there is no
//! shrinking — a failing case reports its inputs' seed instead.

pub mod strategy;
pub mod test_runner;

/// `proptest::sample` — choosing from explicit value lists.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly chosen elements of a vector.
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Chooses uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select of empty options");
        Select(options)
    }
}

/// `proptest::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n as u64,
                hi: n as u64 + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start as u64,
                hi: r.end as u64,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start() as u64,
                hi: *r.end() as u64 + 1,
            }
        }
    }

    /// Strategy yielding vectors whose length is drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", *l, *r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            *l,
            *r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", *l, *r);
    }};
}

/// Combines strategies into one that picks among them uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests. Each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($parm:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $parm = {
                        let strategy = $strategy;
                        $crate::strategy::Strategy::gen_value(&strategy, &mut rng)
                    };
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
