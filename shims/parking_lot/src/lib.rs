//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `parking_lot` API it uses:
//! [`Mutex`] and [`RwLock`] with non-poisoning guards. Everything is a
//! thin wrapper over `std::sync`; a poisoned std lock (panicking thread)
//! degrades to handing out the inner guard rather than propagating the
//! poison, which matches parking_lot's semantics of not tracking poison
//! at all.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        {
            let _r1 = l.read();
            let _r2 = l.read();
        }
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
