//! Offline stand-in for the `crossbeam-utils` crate: just [`CachePadded`].

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so neighbouring values never share
/// a cache line (128 covers the spatial-prefetcher pairing on x86 and the
/// 128-byte lines on some aarch64 parts).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in the padded container.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_access() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let mut c = CachePadded::new(5u64);
        *c += 1;
        assert_eq!(*c, 6);
        assert_eq!(c.into_inner(), 6);
    }
}
