//! Offline stand-in for the `crossbeam-epoch` crate.
//!
//! Implements the same *interface contract* — pinned guards keep deferred
//! destructions from running until every guard that could have observed
//! the unlinked pointer is dropped — with a much simpler engine: one
//! global mutex-protected epoch table instead of thread-local epoch
//! caches. Correctness argument:
//!
//! - Every `pin()` records the global epoch at pin time; the pin count for
//!   that epoch stays non-zero until the guard drops.
//! - `defer_destroy(p)` tags the garbage with the *current* epoch `E` and
//!   then bumps the global epoch, so any guard pinned at `<= E` might
//!   still hold a reference to `p`, while guards pinned later cannot
//!   (the caller guarantees `p` was already unlinked — the usual epoch
//!   contract).
//! - Garbage tagged `E` is destroyed only once the minimum pinned epoch
//!   exceeds `E` (or no guard is pinned at all).
//!
//! Destructors run *after* the state mutex is released so a destructor
//! may itself pin/defer without deadlocking. The mutex serializes every
//! pin/unpin, which is slow compared to real crossbeam but perfectly
//! adequate for this workspace's tests and single-digit thread counts.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Mutex;

/// A deferred destruction: raw pointer plus its monomorphized dropper.
struct Garbage {
    ptr: *mut u8,
    dtor: unsafe fn(*mut u8),
}

// SAFETY: the pointee is unlinked and owned solely by the garbage list;
// it is only touched once, by the destructor, under the collector's rules.
unsafe impl Send for Garbage {}

struct State {
    /// Monotonic epoch, bumped on every deferral.
    epoch: u64,
    /// Pin epoch → number of live guards pinned at it.
    pins: BTreeMap<u64, usize>,
    /// Deferred destructions tagged with their deferral epoch.
    garbage: Vec<(u64, Garbage)>,
}

static STATE: Mutex<State> = Mutex::new(State {
    epoch: 0,
    pins: BTreeMap::new(),
    garbage: Vec::new(),
});

/// Drains every garbage item whose tag epoch precedes all live pins.
/// Returns the drained items; the caller runs the destructors after
/// unlocking.
fn collect(state: &mut State) -> Vec<Garbage> {
    let min_pin = state.pins.keys().next().copied();
    let mut freed = Vec::new();
    state.garbage.retain_mut(|(tag, g)| {
        let free = match min_pin {
            Some(e) => e > *tag,
            None => true,
        };
        if free {
            freed.push(Garbage {
                ptr: g.ptr,
                dtor: g.dtor,
            });
        }
        !free
    });
    freed
}

fn run_dtors(freed: Vec<Garbage>) {
    for g in freed {
        // SAFETY: each Garbage is destroyed exactly once, and the epoch
        // rule above guarantees no pinned reader can still reach it.
        unsafe { (g.dtor)(g.ptr) };
    }
}

/// Pins the current epoch; deferred destructions stay queued while the
/// returned guard is alive.
pub fn pin() -> Guard {
    let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let epoch = s.epoch;
    *s.pins.entry(epoch).or_insert(0) += 1;
    Guard { epoch: Some(epoch) }
}

/// Returns a dummy guard that does not pin anything.
///
/// # Safety
///
/// The caller must guarantee no concurrent mutation of the data structures
/// accessed through this guard (e.g. it holds `&mut` or is in `Drop`).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { epoch: None };
    &UNPROTECTED
}

/// An epoch pin. Dropping it unpins and may run deferred destructors.
pub struct Guard {
    /// `None` for the unprotected guard.
    epoch: Option<u64>,
}

impl Guard {
    /// Schedules `shared`'s pointee for destruction once all current pins
    /// are gone.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null, unlinked from every shared location
    /// (no new reader can acquire it), and not deferred twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        unsafe fn dropper<T>(p: *mut u8) {
            drop(Box::from_raw(p as *mut T));
        }
        let g = Garbage {
            ptr: shared.ptr as *mut u8,
            dtor: dropper::<T>,
        };
        let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
        let tag = s.epoch;
        s.garbage.push((tag, g));
        // Bump so future pins are distinguishable from ones that may still
        // observe the unlinked pointer.
        s.epoch += 1;
    }

    /// Eagerly runs any deferred destructors whose epochs have expired.
    pub fn flush(&self) {
        let freed = {
            let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
            collect(&mut s)
        };
        run_dtors(freed);
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        let Some(epoch) = self.epoch else { return };
        let freed = {
            let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(n) = s.pins.get_mut(&epoch) {
                *n -= 1;
                if *n == 0 {
                    s.pins.remove(&epoch);
                }
            }
            collect(&mut s)
        };
        run_dtors(freed);
    }
}

/// Types that can be consumed into a raw pointer for atomic storage.
pub trait Pointer<T> {
    /// The raw pointer this handle designates.
    fn as_ptr(&self) -> *const T;
    /// Consumes the handle without dropping the pointee.
    fn into_ptr(self) -> *const T;
}

/// An owned, heap-allocated value destined for an [`Atomic`] slot.
pub struct Owned<T> {
    ptr: *mut T,
}

impl<T> Owned<T> {
    /// Heap-allocates `value`.
    pub fn new(value: T) -> Self {
        Owned {
            ptr: Box::into_raw(Box::new(value)),
        }
    }

    /// Converts into a [`Shared`] tied to `_guard`.
    pub fn into_shared(self, _guard: &Guard) -> Shared<'_, T> {
        Shared {
            ptr: self.into_ptr(),
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn as_ptr(&self) -> *const T {
        self.ptr
    }

    fn into_ptr(self) -> *const T {
        let p = self.ptr;
        std::mem::forget(self);
        p
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: an un-consumed Owned still uniquely owns its allocation.
        unsafe { drop(Box::from_raw(self.ptr)) };
    }
}

impl<T> std::ops::Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: `ptr` is a live unique allocation until consumed/dropped.
        unsafe { &*self.ptr }
    }
}

/// A shared pointer loaded from an [`Atomic`], valid while its guard pins
/// the epoch.
pub struct Shared<'g, T> {
    ptr: *const T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null shared pointer.
    pub fn null() -> Self {
        Shared {
            ptr: ptr::null(),
            _marker: PhantomData,
        }
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.ptr
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the pointee alive for `'g` (i.e.
    /// protected by the guard this was loaded under).
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }

    /// Reclaims unique ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must be the sole owner; no other thread may reach the
    /// pointer anymore.
    pub unsafe fn into_owned(self) -> Owned<T> {
        Owned {
            ptr: self.ptr as *mut T,
        }
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(ptr: *const T) -> Self {
        Shared {
            ptr,
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn as_ptr(&self) -> *const T {
        self.ptr
    }

    fn into_ptr(self) -> *const T {
        self.ptr
    }
}

/// Error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value actually stored in the atomic.
    pub current: Shared<'g, T>,
    /// The proposed new value, handed back to the caller.
    pub new: P,
}

/// An atomic pointer slot holding epoch-managed values.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: the slot hands out references across threads; same bounds as a
// `std::sync` container of T.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: see above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Allocates `value` and stores its pointer.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// An atomic slot holding the null pointer.
    pub fn null() -> Self {
        Atomic {
            ptr: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Loads the current pointer under `_guard`'s protection.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Atomically replaces the pointer, returning the previous one.
    pub fn swap<'g, P: Pointer<T>>(&self, new: P, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        let prev = self.ptr.swap(new.into_ptr() as *mut T, ord);
        Shared {
            ptr: prev,
            _marker: PhantomData,
        }
    }

    /// Compare-and-exchange; on success returns the *new* pointer, on
    /// failure hands `new` back in the error.
    ///
    /// # Errors
    ///
    /// Returns [`CompareExchangeError`] with the observed pointer when the
    /// slot did not contain `current`.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.as_ptr() as *mut T;
        match self.ptr.compare_exchange(
            current.as_raw() as *mut T,
            new_ptr,
            success,
            failure,
        ) {
            Ok(_) => {
                let _ = new.into_ptr();
                Ok(Shared {
                    ptr: new_ptr,
                    _marker: PhantomData,
                })
            }
            Err(observed) => Err(CompareExchangeError {
                current: Shared {
                    ptr: observed,
                    _marker: PhantomData,
                },
                new,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn deferred_destruction_waits_for_pins() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let slot = Atomic::new(Counted(Arc::clone(&drops)));
        let reader = pin();
        let old = slot.load(Ordering::Acquire, &reader);
        let writer = pin();
        let prev = slot.swap(Owned::new(Counted(Arc::clone(&drops))), Ordering::AcqRel, &writer);
        unsafe { writer.defer_destroy(prev) };
        drop(writer);
        // The reader's pin predates the deferral: nothing freed yet.
        pin().flush();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        let _ = unsafe { old.deref() };
        drop(reader);
        pin().flush();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // Cleanup of the current value.
        let g = pin();
        let cur = slot.swap(Shared::null(), Ordering::AcqRel, &g);
        unsafe { g.defer_destroy(cur) };
        drop(g);
        pin().flush();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn compare_exchange_success_returns_new() {
        let g = pin();
        let slot = Atomic::new(1u32);
        let cur = slot.load(Ordering::Acquire, &g);
        let got = slot
            .compare_exchange(cur, Owned::new(2), Ordering::AcqRel, Ordering::Acquire, &g)
            .unwrap_or_else(|_| panic!("cas must succeed"));
        assert_eq!(unsafe { *got.deref() }, 2);
        // Failed CAS hands the Owned back (and drops it, not leaking).
        let stale = cur;
        assert!(slot
            .compare_exchange(stale, Owned::new(3), Ordering::AcqRel, Ordering::Acquire, &g)
            .is_err());
        unsafe {
            g.defer_destroy(cur);
            let now = slot.swap(Shared::null(), Ordering::AcqRel, &g);
            g.defer_destroy(now);
        }
        drop(g);
        pin().flush();
    }
}
