//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface with a real (if simple) wall-clock harness: auto-calibrated
//! batch sizes, warmup, and a median-of-samples report printed as
//! `group/name  time: [min median max]` per benchmark, so microbenchmark
//! numbers (e.g. `BENCH_interp.json`) come from actual measurements.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    samples: Vec<f64>,
}

const SAMPLES: usize = 24;
const TARGET_BATCH: Duration = Duration::from_millis(8);
const WARMUP: Duration = Duration::from_millis(120);

impl Bencher {
    /// Measures `routine`, storing per-iteration timings.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup and batch-size calibration: grow the batch until it is
        // long enough to swamp timer overhead.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let took = t.elapsed();
            if warm_start.elapsed() >= WARMUP && took >= TARGET_BATCH / 4 {
                break;
            }
            if took < TARGET_BATCH {
                batch = batch.saturating_mul(2);
            }
        }
        self.samples.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ns", ns)
    }
}

fn run_one(label: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no measurement — b.iter never called)");
        return;
    }
    let min = b.samples[0];
    let med = b.samples[b.samples.len() / 2];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(med),
        fmt_ns(max)
    );
}

/// Bundles benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), SAMPLES);
        assert!(b.samples[0] > 0.0);
    }
}
