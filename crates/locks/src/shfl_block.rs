//! Blocking shuffle lock: spin-then-park with a policy-driven strategy.
//!
//! The blocking variant of [`crate::ShflLock`], standing in for kernel
//! `mutex`/`rwsem`-style primitives. Waiters spin briefly and then park;
//! *when* to park is exactly the "adaptable parking/wake-up strategy" use
//! case of the paper (§3.1.1): the `schedule_waiter` hook is consulted
//! before a waiter parks, so a policy aware of critical-section lengths can
//! keep waiters spinning (cheap handoff) or park them early (save CPU).

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use crate::backoff::Backoff;
use crate::hooks::{HookKind, LockEventCtx, NodeView, ScheduleWaiterCtx, ShflHooks};
use crate::now_ns;
use crate::raw::RawLock;
use crate::topo;

const WAITING: u32 = 0;
const GRANTED: u32 = 1;
const PARKED: u32 = 2;

/// Spin budget before a waiter considers parking (ns of wall time).
pub const DEFAULT_SPIN_NS: u64 = 20_000;

struct Node {
    next: AtomicPtr<Node>,
    status: AtomicU32,
    thread: Thread,
    view: NodeView,
}

static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1 << 32);

/// The blocking shuffle mutex.
pub struct ShflMutex {
    locked: AtomicBool,
    tail: AtomicPtr<Node>,
    hooks: Arc<ShflHooks>,
    id: u64,
    parks: AtomicU64,
    /// Tid of the current holder (0 = unlocked); written by the winner,
    /// cleared by the holder before releasing.
    owner: AtomicU64,
}

// SAFETY: nodes are shared only through atomics, in MCS discipline.
unsafe impl Send for ShflMutex {}
// SAFETY: see above.
unsafe impl Sync for ShflMutex {}

impl Default for ShflMutex {
    fn default() -> Self {
        ShflMutex::new()
    }
}

impl ShflMutex {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        ShflMutex {
            locked: AtomicBool::new(false),
            tail: AtomicPtr::new(ptr::null_mut()),
            hooks: Arc::new(ShflHooks::new()),
            id: NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed),
            parks: AtomicU64::new(0),
            owner: AtomicU64::new(0),
        }
    }

    /// Stable identity of this lock instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The hook table.
    pub fn hooks(&self) -> &Arc<ShflHooks> {
        &self.hooks
    }

    /// Number of times any waiter parked (statistics).
    pub fn park_count(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }

    fn event_ctx(&self) -> LockEventCtx {
        LockEventCtx {
            lock_id: self.id,
            tid: topo::current_tid(),
            cpu: topo::current_cpu(),
            socket: topo::current_socket(),
            now_ns: now_ns(),
            owner_tid: self.owner.load(Ordering::Relaxed),
        }
    }

    fn view() -> NodeView {
        NodeView {
            tid: topo::current_tid(),
            cpu: topo::current_cpu(),
            socket: topo::current_socket(),
            prio: topo::current_priority(),
            cs_hint: topo::cs_hint(),
            held_locks: topo::held_locks(),
            wait_start_ns: now_ns(),
        }
    }

    /// Waits until granted, spinning first and parking when the policy
    /// allows.
    ///
    /// # Safety
    ///
    /// `node` must be the caller's own live node.
    unsafe fn wait_granted(&self, node: *mut Node) {
        let mut backoff = Backoff::new();
        // SAFETY: our own node.
        let view = unsafe { (*node).view };
        let spin_deadline = now_ns() + DEFAULT_SPIN_NS;
        loop {
            // SAFETY: our own node.
            let status = unsafe { (*node).status.load(Ordering::Acquire) };
            if status == GRANTED {
                return;
            }
            if now_ns() >= spin_deadline {
                let may_park = self.hooks.eval_schedule_waiter(&ScheduleWaiterCtx {
                    lock_id: self.id,
                    curr: view,
                    waited_ns: now_ns().saturating_sub(view.wait_start_ns),
                });
                if may_park {
                    // SAFETY: our own node.
                    let swapped = unsafe {
                        (*node)
                            .status
                            .compare_exchange(WAITING, PARKED, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    };
                    if swapped {
                        self.parks.fetch_add(1, Ordering::Relaxed);
                        // SAFETY: our own node.
                        while unsafe { (*node).status.load(Ordering::Acquire) } == PARKED {
                            std::thread::park();
                        }
                        return;
                    }
                    // Status changed under us: re-check (it is GRANTED).
                    continue;
                }
            }
            backoff.snooze();
        }
    }

    /// Grants headship to `next`, waking it if parked.
    ///
    /// # Safety
    ///
    /// `next` must be a live queued node.
    unsafe fn grant(&self, next: *mut Node) {
        // SAFETY: per contract; `thread` is a cheap handle clone.
        unsafe {
            let thread = (*next).thread.clone();
            let old = (*next).status.swap(GRANTED, Ordering::AcqRel);
            if old == PARKED {
                thread.unpark();
            }
        }
    }
}

impl RawLock for ShflMutex {
    fn acquire(&self) {
        if self.hooks.observed(HookKind::LockAcquire) {
            self.hooks
                .dispatch_event(HookKind::LockAcquire, &self.event_ctx());
        }
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.owner.store(topo::current_tid(), Ordering::Relaxed);
            return;
        }
        if self.hooks.observed(HookKind::LockContended) {
            self.hooks
                .dispatch_event(HookKind::LockContended, &self.event_ctx());
        }

        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            status: AtomicU32::new(WAITING),
            thread: std::thread::current(),
            view: Self::view(),
        }));
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: MCS predecessor stays alive until it links us.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
            }
            // SAFETY: our own node.
            unsafe { self.wait_granted(node) };
        }

        // Queue head: wait for the word.
        let mut backoff = Backoff::new();
        while self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            backoff.snooze();
        }

        // Dequeue and promote.
        // SAFETY: MCS dequeue of our own node.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null()
                && self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
            {
                let mut backoff = Backoff::new();
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    backoff.snooze();
                }
            }
            if !next.is_null() {
                self.grant(next);
            }
            drop(Box::from_raw(node));
        }
        self.owner.store(topo::current_tid(), Ordering::Relaxed);
        if self.hooks.observed(HookKind::LockAcquired) {
            self.hooks
                .dispatch_event(HookKind::LockAcquired, &self.event_ctx());
        }
    }

    fn release(&self) {
        if self.hooks.observed(HookKind::LockRelease) {
            self.hooks
                .dispatch_event(HookKind::LockRelease, &self.event_ctx());
        }
        debug_assert!(
            self.locked.load(Ordering::Relaxed),
            "release of unheld ShflMutex"
        );
        // Clear the holder identity while still holding the word.
        self.owner.store(0, Ordering::Relaxed);
        self.locked.store(false, Ordering::Release);
    }

    fn try_acquire(&self) -> bool {
        let ok = self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            self.owner.store(topo::current_tid(), Ordering::Relaxed);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn uncontended_roundtrip() {
        let l = ShflMutex::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn stress_with_parking() {
        mutex_stress(ShflMutex::new(), 8, 2_000);
    }

    #[test]
    fn waiters_park_when_holder_is_slow() {
        use std::sync::Arc;
        let lock = Arc::new(ShflMutex::new());
        let held = Arc::new(AtomicBool::new(false));
        let holder = {
            let (l, h) = (Arc::clone(&lock), Arc::clone(&held));
            std::thread::spawn(move || {
                let _g = l.lock();
                h.store(true, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_millis(120));
            })
        };
        while !held.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let mut waiters = Vec::new();
        for _ in 0..3 {
            let l = Arc::clone(&lock);
            waiters.push(std::thread::spawn(move || {
                let _g = l.lock();
            }));
        }
        holder.join().unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert!(
            lock.park_count() > 0,
            "waiters should have parked during a 120ms hold"
        );
    }

    #[test]
    fn never_park_policy_keeps_waiters_spinning() {
        use std::sync::Arc;
        let lock = Arc::new(ShflMutex::new());
        lock.hooks().install_schedule_waiter(Arc::new(|_| false)); // Never park.
        let counter = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (l, c) = (Arc::clone(&lock), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    let _g = l.lock();
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4_000);
        assert_eq!(lock.park_count(), 0);
    }
}
