//! CLH queue lock.
//!
//! Implicit-queue cousin of MCS: each waiter spins on its *predecessor's*
//! node flag. Included as the second classic queue baseline ([41] in the
//! paper's history of scalable locks).
//!
//! Node reclamation uses epoch GC: `try_acquire` must dereference the tail
//! node, which a successor may free concurrently; an epoch pin makes that
//! dereference safe and rules out CAS ABA through address reuse.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};

use crate::backoff::Backoff;
use crate::raw::RawLock;

struct Node {
    locked: AtomicBool,
}

/// The CLH lock.
pub struct ClhLock {
    tail: Atomic<Node>,
    /// Predecessor node of the holder, freed on release.
    pred: AtomicPtr<Node>,
    /// The holder's own node, inherited by the successor.
    holder: AtomicPtr<Node>,
}

// SAFETY: nodes move between threads only via the atomics below, and
// reclamation is epoch-deferred.
unsafe impl Send for ClhLock {}
// SAFETY: see above.
unsafe impl Sync for ClhLock {}

impl ClhLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        // The queue starts with one released sentinel node.
        ClhLock {
            tail: Atomic::new(Node {
                locked: AtomicBool::new(false),
            }),
            pred: AtomicPtr::new(std::ptr::null_mut()),
            holder: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        ClhLock::new()
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // SAFETY: with `&mut self` no thread is queued; the tail is the
        // final sentinel owned solely by the lock.
        unsafe {
            let guard = epoch::unprotected();
            let tail = self.tail.load(Ordering::Relaxed, guard);
            if !tail.is_null() {
                drop(tail.into_owned());
            }
        }
    }
}

impl RawLock for ClhLock {
    fn acquire(&self) {
        let guard = epoch::pin();
        let node = Owned::new(Node {
            locked: AtomicBool::new(true),
        })
        .into_shared(&guard);
        let pred = self.tail.swap(node, Ordering::AcqRel, &guard);
        let pred_ptr = pred.as_raw() as *mut Node;
        let node_ptr = node.as_raw() as *mut Node;
        drop(guard);
        // SAFETY: only the successor of `pred` (us) schedules its
        // destruction, so it remains valid for the whole spin.
        let mut backoff = Backoff::new();
        while unsafe { (*pred_ptr).locked.load(Ordering::Acquire) } {
            backoff.snooze();
        }
        self.pred.store(pred_ptr, Ordering::Relaxed);
        self.holder.store(node_ptr, Ordering::Relaxed);
    }

    fn release(&self) {
        let node = self.holder.load(Ordering::Relaxed);
        let pred = self.pred.load(Ordering::Relaxed);
        assert!(!node.is_null(), "release of unheld CLH lock");
        self.holder.store(std::ptr::null_mut(), Ordering::Relaxed);
        self.pred.store(std::ptr::null_mut(), Ordering::Relaxed);
        let guard = epoch::pin();
        // SAFETY: `pred` was unlinked when we consumed its release; we are
        // the only thread holding it, and stragglers inside `try_acquire`
        // are fenced off by their epoch pins.
        unsafe {
            guard.defer_destroy(Shared::from(pred as *const Node));
            // Handing our node to the successor also transfers the duty to
            // free it.
            (*node).locked.store(false, Ordering::Release);
        }
    }

    fn try_acquire(&self) -> bool {
        let guard = epoch::pin();
        let tail = self.tail.load(Ordering::Acquire, &guard);
        // SAFETY: the pin keeps `tail` alive even if its successor frees it
        // concurrently, and prevents address reuse (ABA) before our CAS.
        if unsafe { tail.deref() }.locked.load(Ordering::Acquire) {
            return false;
        }
        let node = Owned::new(Node {
            locked: AtomicBool::new(true),
        });
        match self
            .tail
            .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Acquire, &guard)
        {
            Ok(new) => {
                self.pred
                    .store(tail.as_raw() as *mut Node, Ordering::Relaxed);
                self.holder
                    .store(new.as_raw() as *mut Node, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;

    #[test]
    fn uncontended_roundtrip() {
        let l = ClhLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn stress_mutual_exclusion() {
        mutex_stress(ClhLock::new(), 8, 2_000);
    }

    #[test]
    fn try_lock_contention_stress() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let lock = Arc::new(ClhLock::new());
        let acquired = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (l, a) = (Arc::clone(&lock), Arc::clone(&acquired));
            handles.push(std::thread::spawn(move || {
                for _ in 0..20_000 {
                    if let Some(_g) = l.try_lock() {
                        a.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(acquired.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn sequential_reacquisition() {
        let l = ClhLock::new();
        for _ in 0..10_000 {
            let _g = l.lock();
        }
    }
}
