//! MCS queue lock.
//!
//! Each waiter spins on its own queue node, so handoff costs one cache-line
//! transfer instead of an invalidation storm — the building block of Linux's
//! `qspinlock` and the baseline ("Stock") of the paper's Fig. 2(b).
//!
//! The per-acquisition node is heap-allocated and its pointer is stashed in
//! the lock while held, so the lock presents the plain
//! [`RawLock`] acquire/release interface.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawLock;

struct Node {
    next: AtomicPtr<Node>,
    locked: AtomicBool, // True while the owner must keep waiting.
}

/// The MCS lock.
#[derive(Default)]
pub struct McsLock {
    tail: AtomicPtr<Node>,
    /// Node of the current holder, stashed between acquire and release.
    holder: AtomicPtr<Node>,
}

// SAFETY: all shared state is atomics; nodes are transferred between
// threads only through those atomics with acquire/release ordering.
unsafe impl Send for McsLock {}
// SAFETY: see above.
unsafe impl Sync for McsLock {}

impl McsLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        McsLock::default()
    }
}

impl RawLock for McsLock {
    fn acquire(&self) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: AtomicBool::new(true),
        }));
        // SAFETY: `node` is a valid, uniquely owned allocation until the
        // release path reclaims it.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` points at the previous tail, which stays alive
            // until its owner releases and that owner cannot free it before
            // handing off to us through `locked`.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
            }
            let mut backoff = Backoff::new();
            // SAFETY: `node` is ours until release.
            while unsafe { (*node).locked.load(Ordering::Acquire) } {
                backoff.snooze();
            }
        }
        self.holder.store(node, Ordering::Relaxed);
    }

    fn release(&self) {
        let node = self.holder.load(Ordering::Relaxed);
        assert!(!node.is_null(), "release of unheld MCS lock");
        self.holder.store(ptr::null_mut(), Ordering::Relaxed);
        // SAFETY: `node` was stashed by our acquire and not yet freed.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                // No visible successor: try to swing the tail back.
                if self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    drop(Box::from_raw(node));
                    return;
                }
                // A successor is enqueueing; wait for its link.
                let mut backoff = Backoff::new();
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    backoff.snooze();
                }
            }
            (*next).locked.store(false, Ordering::Release);
            drop(Box::from_raw(node));
        }
    }

    fn try_acquire(&self) -> bool {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return false;
        }
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            locked: AtomicBool::new(false),
        }));
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.holder.store(node, Ordering::Relaxed);
            true
        } else {
            // SAFETY: the node never became visible to anyone else.
            unsafe {
                drop(Box::from_raw(node));
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;

    #[test]
    fn uncontended_roundtrip() {
        let l = McsLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn stress_mutual_exclusion() {
        mutex_stress(McsLock::new(), 8, 2_000);
    }

    #[test]
    fn handoff_is_fifo_under_two_threads() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        let lock = Arc::new(McsLock::new());
        let turns = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let (l, t) = (Arc::clone(&lock), Arc::clone(&turns));
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let _g = l.lock();
                    t.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(turns.load(Ordering::Relaxed), 10_000);
    }
}
