//! Common lock traits and RAII guards.

/// A mutual-exclusion lock.
///
/// Implementations stash any per-acquisition state (queue nodes) inside the
/// lock itself, so `acquire`/`release` pair like kernel `spin_lock` /
/// `spin_unlock`. The RAII entry points [`RawLock::lock`] and
/// [`RawLock::try_lock`] are what library users should reach for.
pub trait RawLock: Send + Sync {
    /// Acquires the lock, spinning or parking as the algorithm dictates.
    fn acquire(&self);

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Implementations may panic (at least in debug builds) when the caller
    /// does not hold the lock.
    fn release(&self);

    /// Attempts to acquire without waiting.
    fn try_acquire(&self) -> bool;

    /// Acquires and returns a drop-guard.
    fn lock(&self) -> LockGuard<'_, Self>
    where
        Self: Sized,
    {
        self.acquire();
        LockGuard { lock: self }
    }

    /// Tries to acquire; returns a drop-guard on success.
    fn try_lock(&self) -> Option<LockGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_acquire() {
            Some(LockGuard { lock: self })
        } else {
            None
        }
    }
}

/// RAII guard for [`RawLock`].
pub struct LockGuard<'a, L: RawLock> {
    lock: &'a L,
}

impl<L: RawLock> Drop for LockGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.release();
    }
}

/// A readers-writer lock.
pub trait RawRwLock: Send + Sync {
    /// Acquires shared (read) access.
    fn read_acquire(&self);
    /// Releases shared access.
    fn read_release(&self);
    /// Acquires exclusive (write) access.
    fn write_acquire(&self);
    /// Releases exclusive access.
    fn write_release(&self);
    /// Attempts shared access without waiting.
    fn try_read_acquire(&self) -> bool;
    /// Attempts exclusive access without waiting.
    fn try_write_acquire(&self) -> bool;

    /// Acquires shared access and returns a drop-guard.
    fn read(&self) -> ReadGuard<'_, Self>
    where
        Self: Sized,
    {
        self.read_acquire();
        ReadGuard { lock: self }
    }

    /// Acquires exclusive access and returns a drop-guard.
    fn write(&self) -> WriteGuard<'_, Self>
    where
        Self: Sized,
    {
        self.write_acquire();
        WriteGuard { lock: self }
    }
}

/// RAII guard for shared access.
pub struct ReadGuard<'a, L: RawRwLock> {
    lock: &'a L,
}

impl<L: RawRwLock> Drop for ReadGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.read_release();
    }
}

/// RAII guard for exclusive access.
pub struct WriteGuard<'a, L: RawRwLock> {
    lock: &'a L,
}

impl<L: RawRwLock> Drop for WriteGuard<'_, L> {
    fn drop(&mut self) {
        self.lock.write_release();
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::RawLock;
    use std::sync::Arc;

    /// Standard mutual-exclusion stress: `threads × iters` increments of an
    /// unsynchronized counter must not lose updates.
    pub(crate) fn mutex_stress<L: RawLock + 'static>(lock: L, threads: usize, iters: usize) {
        struct Shared<L> {
            lock: L,
            counter: std::cell::UnsafeCell<u64>,
            inside: std::sync::atomic::AtomicU32,
        }
        // SAFETY: `counter` is only touched under `lock`; the test asserts
        // exactly that.
        unsafe impl<L: RawLock> Sync for Shared<L> {}

        let shared = Arc::new(Shared {
            lock,
            counter: std::cell::UnsafeCell::new(0),
            inside: std::sync::atomic::AtomicU32::new(0),
        });
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                crate::topo::pin_thread(t as u32 % 80);
                for _ in 0..iters {
                    let _g = s.lock.lock();
                    let was = s.inside.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    assert_eq!(was, 0, "two threads inside the critical section");
                    // SAFETY: protected by `lock`.
                    unsafe {
                        *s.counter.get() += 1;
                    }
                    s.inside.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined.
        let total = unsafe { *shared.counter.get() };
        assert_eq!(total, (threads * iters) as u64);
    }
}
