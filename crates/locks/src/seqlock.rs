//! Sequence lock (seqlock) — the §6 "other synchronization mechanisms"
//! extension.
//!
//! The paper lists seqlocks among the kernel mechanisms Concord should
//! grow to cover. This is the classic Linux formulation: writers bump a
//! sequence counter to odd before writing and to even after; readers
//! snapshot the counter, read optimistically, and retry if the counter
//! moved or was odd. Readers never block writers.
//!
//! As groundwork for Concord coverage, the lock counts read retries and
//! write sections, which is exactly the context a future `seq_retry`
//! profiling hook would expose.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::tas::TasLock;

/// A sequence lock protecting a `Copy` value.
///
/// # Examples
///
/// ```
/// use locks::SeqLock;
///
/// let l = SeqLock::new((1u64, 2u64));
/// l.write(|v| v.0 += 1);
/// assert_eq!(l.read(), (2, 2));
/// ```
pub struct SeqLock<T: Copy> {
    seq: AtomicU64,
    writers: TasLock,
    data: UnsafeCell<T>,
    read_retries: AtomicU64,
    writes: AtomicU64,
}

// SAFETY: readers only return data validated by an unchanged even sequence
// (torn intermediate reads are discarded, and `T: Copy` means no drop or
// pointer follows happen on torn bytes); writers are serialized by
// `writers` and fence their stores with seq transitions.
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}
// SAFETY: see above.
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// Creates a seqlock holding `init`.
    pub fn new(init: T) -> Self {
        SeqLock {
            seq: AtomicU64::new(0),
            writers: TasLock::new(),
            data: UnsafeCell::new(init),
            read_retries: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Optimistically reads the value, retrying around concurrent writes.
    pub fn read(&self) -> T {
        let mut backoff = Backoff::new();
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 0 {
                // SAFETY: the value may be torn if a writer is concurrent,
                // but `T: Copy` makes the read itself harmless, and the
                // sequence re-check below discards any torn result before
                // it escapes. `read_volatile` keeps the compiler from
                // caching across the fence.
                let val = unsafe { std::ptr::read_volatile(self.data.get()) };
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return val;
                }
            }
            self.read_retries.fetch_add(1, Ordering::Relaxed);
            backoff.snooze();
        }
    }

    /// Attempts a single optimistic read; `None` if a writer interfered
    /// (the building block for read-side composition).
    pub fn try_read(&self) -> Option<T> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        // SAFETY: as in `read`.
        let val = unsafe { std::ptr::read_volatile(self.data.get()) };
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) == s1 {
            Some(val)
        } else {
            self.read_retries.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Runs `f` on the protected value inside a write section.
    pub fn write(&self, f: impl FnOnce(&mut T)) {
        self.writers.acquire();
        self.seq.fetch_add(1, Ordering::AcqRel); // → odd: readers back off.
        fence(Ordering::Release);
        // SAFETY: writers are serialized by `writers`, and the odd
        // sequence keeps validated readers away.
        unsafe {
            f(&mut *self.data.get());
        }
        self.seq.fetch_add(1, Ordering::AcqRel); // → even: readers resume.
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.writers.release();
    }

    /// `(read retries, write sections)` — the profiling context a Concord
    /// `seq_retry` hook would consume.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.read_retries.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let l = SeqLock::new(0u64);
        assert_eq!(l.read(), 0);
        l.write(|v| *v = 42);
        assert_eq!(l.read(), 42);
        assert_eq!(l.try_read(), Some(42));
        let (retries, writes) = l.stats();
        assert_eq!(retries, 0);
        assert_eq!(writes, 1);
    }

    #[test]
    fn readers_never_see_torn_pairs() {
        let l = Arc::new(SeqLock::new((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let (l, s) = (Arc::clone(&l), Arc::clone(&stop));
            readers.push(std::thread::spawn(move || {
                let mut n = 0u64;
                while !s.load(Ordering::Relaxed) || n < 10_000 {
                    let (a, b) = l.read();
                    assert_eq!(a, b, "torn read escaped the seqlock");
                    n += 1;
                }
                n
            }));
        }
        for i in 1..=20_000u64 {
            l.write(|v| *v = (i, i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() >= 10_000);
        }
        assert_eq!(l.read(), (20_000, 20_000));
    }

    #[test]
    fn concurrent_writers_serialize() {
        let l = Arc::new(SeqLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    l.write(|v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.read(), 20_000);
        assert_eq!(l.stats().1, 20_000);
    }
}
