//! The Concord hook surface of the shuffle lock — Table 1 of the paper.
//!
//! | API                | Description                                        | Hazard |
//! |--------------------|----------------------------------------------------|--------|
//! | `cmp_node`         | decide whether to move the current node forward    | fairness |
//! | `skip_shuffle`     | skip shuffling and hand the shuffler role over     | fairness |
//! | `schedule_waiter`  | waking/parking/priority for a lock                 | performance |
//! | `lock_acquire`     | invoked when trying to acquire                     | critical-section growth |
//! | `lock_contended`   | invoked when a trylock failed and the task waits   | critical-section growth |
//! | `lock_acquired`    | invoked when the lock is actually acquired         | critical-section growth |
//! | `lock_release`     | invoked on release                                 | critical-section growth |
//!
//! Each hook is a [`PatchPoint`] holding an optional function object, so
//! Concord can livepatch policies in and out while the lock is under load.
//! A per-table bitmask keeps the no-policy fast path at one relaxed load.
//!
//! The decision hooks return booleans only — they "do not modify the
//! locking behavior but only return the decision" (§4.2), which is how
//! mutual exclusion stays intact no matter what the policy says.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use livepatch::PatchPoint;

/// Immutable view of a queue node exposed to policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeView {
    /// Waiting task.
    pub tid: u64,
    /// Virtual CPU of the waiter.
    pub cpu: u32,
    /// Socket of the waiter.
    pub socket: u32,
    /// Declared scheduling priority.
    pub prio: i64,
    /// Declared critical-section length hint (ns; 0 = unknown).
    pub cs_hint: u64,
    /// Locks the waiter already holds (lock-inheritance context).
    pub held_locks: u32,
    /// When the waiter started waiting (ns).
    pub wait_start_ns: u64,
}

/// Context of a `cmp_node` invocation.
#[derive(Clone, Copy, Debug)]
pub struct CmpNodeCtx {
    /// Identity of the lock being shuffled.
    pub lock_id: u64,
    /// The shuffler's node.
    pub shuffler: NodeView,
    /// The candidate node; `true` moves it forward.
    pub curr: NodeView,
}

/// Context of a `skip_shuffle` invocation.
#[derive(Clone, Copy, Debug)]
pub struct SkipShuffleCtx {
    /// Identity of the lock.
    pub lock_id: u64,
    /// The would-be shuffler.
    pub shuffler: NodeView,
}

/// Context of a `schedule_waiter` invocation (blocking locks).
#[derive(Clone, Copy, Debug)]
pub struct ScheduleWaiterCtx {
    /// Identity of the lock.
    pub lock_id: u64,
    /// The waiter asking whether it may park.
    pub curr: NodeView,
    /// How long it has waited so far (ns).
    pub waited_ns: u64,
}

/// Context of the four profiling hooks.
#[derive(Clone, Copy, Debug)]
pub struct LockEventCtx {
    /// Identity of the lock.
    pub lock_id: u64,
    /// Task triggering the event.
    pub tid: u64,
    /// Its virtual CPU.
    pub cpu: u32,
    /// Its socket.
    pub socket: u32,
    /// Event timestamp (ns).
    pub now_ns: u64,
    /// Tid of the thread holding the lock when the event fired (0 =
    /// unlocked or unknown). On `lock_acquired`/`lock_release` this is the
    /// emitting thread itself; on `lock_contended` it names the blocker,
    /// which is what lets the contention analyzer draw holder→waiter
    /// edges even when the holder's own transition records were dropped.
    pub owner_tid: u64,
}

/// `cmp_node` policy: `true` ⇒ move `curr` forward.
pub type CmpNodeFn = Arc<dyn Fn(&CmpNodeCtx) -> bool + Send + Sync>;
/// `skip_shuffle` policy: `true` ⇒ do not shuffle this round.
pub type SkipShuffleFn = Arc<dyn Fn(&SkipShuffleCtx) -> bool + Send + Sync>;
/// `schedule_waiter` policy: `true` ⇒ the waiter may park now.
pub type ScheduleWaiterFn = Arc<dyn Fn(&ScheduleWaiterCtx) -> bool + Send + Sync>;
/// Profiling hook.
pub type LockEventFn = Arc<dyn Fn(&LockEventCtx) + Send + Sync>;

/// Identifies one of the seven hooks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HookKind {
    /// Queue-reorder decision.
    CmpNode,
    /// Shuffle-phase gate.
    SkipShuffle,
    /// Park/wake decision.
    ScheduleWaiter,
    /// Acquisition attempt event.
    LockAcquire,
    /// Contention event.
    LockContended,
    /// Acquisition-success event.
    LockAcquired,
    /// Release event.
    LockRelease,
}

/// Potential hazard of a hook, as classified by Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Hazard {
    /// A bad policy can skew fairness (never correctness).
    Fairness,
    /// A bad policy can cost performance.
    Performance,
    /// Code here runs on lock paths and grows the critical section.
    CriticalSection,
}

impl HookKind {
    /// All hooks, in Table 1 order.
    pub const ALL: [HookKind; 7] = [
        HookKind::CmpNode,
        HookKind::SkipShuffle,
        HookKind::ScheduleWaiter,
        HookKind::LockAcquire,
        HookKind::LockContended,
        HookKind::LockAcquired,
        HookKind::LockRelease,
    ];

    /// The hook's hazard class.
    pub fn hazard(self) -> Hazard {
        match self {
            HookKind::CmpNode | HookKind::SkipShuffle => Hazard::Fairness,
            HookKind::ScheduleWaiter => Hazard::Performance,
            _ => Hazard::CriticalSection,
        }
    }

    /// Stable name (used in object-store paths and reports).
    pub fn name(self) -> &'static str {
        match self {
            HookKind::CmpNode => "cmp_node",
            HookKind::SkipShuffle => "skip_shuffle",
            HookKind::ScheduleWaiter => "schedule_waiter",
            HookKind::LockAcquire => "lock_acquire",
            HookKind::LockContended => "lock_contended",
            HookKind::LockAcquired => "lock_acquired",
            HookKind::LockRelease => "lock_release",
        }
    }

    /// Bit of this hook in activity masks (also the `b` argument of
    /// telemetry hook-span records, so traces can name the hook).
    pub fn bit(self) -> u32 {
        match self {
            HookKind::CmpNode => 1,
            HookKind::SkipShuffle => 2,
            HookKind::ScheduleWaiter => 4,
            HookKind::LockAcquire => 8,
            HookKind::LockContended => 16,
            HookKind::LockAcquired => 32,
            HookKind::LockRelease => 64,
        }
    }

    /// Name of the schedule-exploration injection site co-located with
    /// this hook (`ksim::SchedSite::name` vocabulary): the explorer
    /// perturbs schedules at exactly the program points where policies
    /// run, so a finding at a site names the hook a steering policy
    /// would use there.
    pub fn sched_site_name(self) -> &'static str {
        match self {
            HookKind::CmpNode | HookKind::SkipShuffle => "shuffle",
            HookKind::ScheduleWaiter | HookKind::LockContended => "contended",
            HookKind::LockAcquire => "acquire",
            HookKind::LockAcquired => "acquired",
            HookKind::LockRelease => "release",
        }
    }

    /// Telemetry event kind for records emitted at this hook's site.
    pub fn event_kind(self) -> telemetry::EventKind {
        match self {
            HookKind::CmpNode => telemetry::EventKind::CmpNode,
            HookKind::SkipShuffle => telemetry::EventKind::SkipShuffle,
            HookKind::ScheduleWaiter => telemetry::EventKind::ScheduleWaiter,
            HookKind::LockAcquire => telemetry::EventKind::LockAcquire,
            HookKind::LockContended => telemetry::EventKind::LockContended,
            HookKind::LockAcquired => telemetry::EventKind::LockAcquired,
            HookKind::LockRelease => telemetry::EventKind::LockRelease,
        }
    }
}

/// The livepatchable hook table attached to every shuffle lock.
pub struct ShflHooks {
    active: AtomicU32,
    /// Queue-reorder decision slot.
    pub cmp_node: Arc<PatchPoint<Option<CmpNodeFn>>>,
    /// Shuffle gate slot.
    pub skip_shuffle: Arc<PatchPoint<Option<SkipShuffleFn>>>,
    /// Park/wake decision slot.
    pub schedule_waiter: Arc<PatchPoint<Option<ScheduleWaiterFn>>>,
    /// Acquisition-attempt event slot.
    pub lock_acquire: Arc<PatchPoint<Option<LockEventFn>>>,
    /// Contention event slot.
    pub lock_contended: Arc<PatchPoint<Option<LockEventFn>>>,
    /// Acquisition-success event slot.
    pub lock_acquired: Arc<PatchPoint<Option<LockEventFn>>>,
    /// Release event slot.
    pub lock_release: Arc<PatchPoint<Option<LockEventFn>>>,
}

impl Default for ShflHooks {
    fn default() -> Self {
        ShflHooks {
            active: AtomicU32::new(0),
            cmp_node: Arc::new(PatchPoint::new(None)),
            skip_shuffle: Arc::new(PatchPoint::new(None)),
            schedule_waiter: Arc::new(PatchPoint::new(None)),
            lock_acquire: Arc::new(PatchPoint::new(None)),
            lock_contended: Arc::new(PatchPoint::new(None)),
            lock_acquired: Arc::new(PatchPoint::new(None)),
            lock_release: Arc::new(PatchPoint::new(None)),
        }
    }
}

impl ShflHooks {
    /// Creates an empty table (every slot vacant).
    pub fn new() -> Self {
        ShflHooks::default()
    }

    /// True when `kind` has a policy installed (one relaxed load).
    #[inline]
    pub fn is_active(&self, kind: HookKind) -> bool {
        self.active.load(Ordering::Relaxed) & kind.bit() != 0
    }

    /// Marks a hook active/inactive; called by the installers below and by
    /// Concord's patch transactions.
    pub fn set_active(&self, kind: HookKind, on: bool) {
        if on {
            self.active.fetch_or(kind.bit(), Ordering::AcqRel);
        } else {
            self.active.fetch_and(!kind.bit(), Ordering::AcqRel);
        }
    }

    /// Installs a `cmp_node` policy.
    pub fn install_cmp_node(&self, f: CmpNodeFn) {
        self.cmp_node.replace(Some(f));
        self.set_active(HookKind::CmpNode, true);
    }

    /// Installs a `skip_shuffle` policy.
    pub fn install_skip_shuffle(&self, f: SkipShuffleFn) {
        self.skip_shuffle.replace(Some(f));
        self.set_active(HookKind::SkipShuffle, true);
    }

    /// Installs a `schedule_waiter` policy.
    pub fn install_schedule_waiter(&self, f: ScheduleWaiterFn) {
        self.schedule_waiter.replace(Some(f));
        self.set_active(HookKind::ScheduleWaiter, true);
    }

    /// Installs a profiling hook.
    pub fn install_event(&self, kind: HookKind, f: LockEventFn) {
        match kind {
            HookKind::LockAcquire => self.lock_acquire.replace(Some(f)),
            HookKind::LockContended => self.lock_contended.replace(Some(f)),
            HookKind::LockAcquired => self.lock_acquired.replace(Some(f)),
            HookKind::LockRelease => self.lock_release.replace(Some(f)),
            _ => panic!("{} is not an event hook", kind.name()),
        }
        self.set_active(kind, true);
    }

    /// Clears a hook back to vacant.
    pub fn clear(&self, kind: HookKind) {
        match kind {
            HookKind::CmpNode => self.cmp_node.replace(None),
            HookKind::SkipShuffle => self.skip_shuffle.replace(None),
            HookKind::ScheduleWaiter => self.schedule_waiter.replace(None),
            HookKind::LockAcquire => self.lock_acquire.replace(None),
            HookKind::LockContended => self.lock_contended.replace(None),
            HookKind::LockAcquired => self.lock_acquired.replace(None),
            HookKind::LockRelease => self.lock_release.replace(None),
        }
        self.set_active(kind, false);
    }

    /// True when an event site must build its context: a policy is
    /// attached *or* the telemetry plane is armed. Two relaxed loads on
    /// the bare fast path; the context (tid/cpu/timestamp lookups) is only
    /// materialized behind this check.
    #[inline]
    pub fn observed(&self, kind: HookKind) -> bool {
        self.is_active(kind) || telemetry::armed()
    }

    /// Emits a lock-transition trace record (when armed) and fires the
    /// matching event hook (when installed). Lock slow paths call this
    /// instead of [`ShflHooks::fire_event`] so armed runs capture the
    /// transition even with no policy attached.
    pub fn dispatch_event(&self, kind: HookKind, ctx: &LockEventCtx) {
        if telemetry::armed() {
            telemetry::emit(
                kind.event_kind(),
                ctx.now_ns,
                ctx.cpu as u16,
                ctx.lock_id,
                ctx.tid,
                u64::from(ctx.socket),
                ctx.owner_tid,
            );
        }
        self.fire_event(kind, ctx);
    }

    /// Fires an event hook if installed.
    #[inline]
    pub fn fire_event(&self, kind: HookKind, ctx: &LockEventCtx) {
        if !self.is_active(kind) {
            return;
        }
        let point = match kind {
            HookKind::LockAcquire => &self.lock_acquire,
            HookKind::LockContended => &self.lock_contended,
            HookKind::LockAcquired => &self.lock_acquired,
            HookKind::LockRelease => &self.lock_release,
            _ => return,
        };
        if let Some(f) = point.get().as_ref() {
            f(ctx);
        }
    }

    /// Evaluates `cmp_node`; vacant slot ⇒ `false` (no reorder).
    #[inline]
    pub fn eval_cmp_node(&self, ctx: &CmpNodeCtx) -> bool {
        let verdict = if !self.is_active(HookKind::CmpNode) {
            false
        } else {
            match self.cmp_node.get().as_ref() {
                Some(f) => f(ctx),
                None => false,
            }
        };
        if telemetry::armed() {
            telemetry::emit(
                telemetry::EventKind::CmpNode,
                crate::now_ns(),
                crate::topo::current_cpu() as u16,
                ctx.lock_id,
                ctx.shuffler.tid,
                ctx.curr.tid,
                u64::from(verdict),
            );
        }
        verdict
    }

    /// Evaluates `skip_shuffle`; vacant slot ⇒ `true` (no shuffling, i.e.
    /// plain FIFO — shuffling only happens when a policy asks for it).
    #[inline]
    pub fn eval_skip_shuffle(&self, ctx: &SkipShuffleCtx) -> bool {
        let verdict = if !self.is_active(HookKind::SkipShuffle) {
            // With a cmp_node policy installed but no skip policy, shuffle.
            !self.is_active(HookKind::CmpNode)
        } else {
            match self.skip_shuffle.get().as_ref() {
                Some(f) => f(ctx),
                None => true,
            }
        };
        if telemetry::armed() {
            telemetry::emit(
                telemetry::EventKind::SkipShuffle,
                crate::now_ns(),
                crate::topo::current_cpu() as u16,
                ctx.lock_id,
                ctx.shuffler.tid,
                0,
                u64::from(verdict),
            );
        }
        verdict
    }

    /// Evaluates `schedule_waiter`; vacant slot ⇒ `true` (parking allowed).
    #[inline]
    pub fn eval_schedule_waiter(&self, ctx: &ScheduleWaiterCtx) -> bool {
        let verdict = if !self.is_active(HookKind::ScheduleWaiter) {
            true
        } else {
            match self.schedule_waiter.get().as_ref() {
                Some(f) => f(ctx),
                None => true,
            }
        };
        if telemetry::armed() {
            telemetry::emit(
                telemetry::EventKind::ScheduleWaiter,
                crate::now_ns(),
                crate::topo::current_cpu() as u16,
                ctx.lock_id,
                ctx.curr.tid,
                ctx.waited_ns,
                u64::from(verdict),
            );
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn view() -> NodeView {
        NodeView {
            tid: 1,
            cpu: 2,
            socket: 0,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        }
    }

    #[test]
    fn table1_hazards() {
        assert_eq!(HookKind::CmpNode.hazard(), Hazard::Fairness);
        assert_eq!(HookKind::SkipShuffle.hazard(), Hazard::Fairness);
        assert_eq!(HookKind::ScheduleWaiter.hazard(), Hazard::Performance);
        for k in [
            HookKind::LockAcquire,
            HookKind::LockContended,
            HookKind::LockAcquired,
            HookKind::LockRelease,
        ] {
            assert_eq!(k.hazard(), Hazard::CriticalSection);
        }
        assert_eq!(HookKind::ALL.len(), 7);
    }

    #[test]
    fn defaults_are_fifo_no_shuffle() {
        let h = ShflHooks::new();
        let ctx = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(),
            curr: view(),
        };
        assert!(!h.eval_cmp_node(&ctx));
        assert!(h.eval_skip_shuffle(&SkipShuffleCtx {
            lock_id: 1,
            shuffler: view()
        }));
        assert!(h.eval_schedule_waiter(&ScheduleWaiterCtx {
            lock_id: 1,
            curr: view(),
            waited_ns: 0
        }));
    }

    #[test]
    fn installing_cmp_node_enables_shuffling() {
        let h = ShflHooks::new();
        h.install_cmp_node(Arc::new(|c| c.curr.socket == c.shuffler.socket));
        assert!(h.is_active(HookKind::CmpNode));
        // No explicit skip policy: shuffling proceeds.
        assert!(!h.eval_skip_shuffle(&SkipShuffleCtx {
            lock_id: 1,
            shuffler: view()
        }));
        let same = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(),
            curr: view(),
        };
        assert!(h.eval_cmp_node(&same));
        let mut remote = same;
        remote.curr.socket = 5;
        assert!(!h.eval_cmp_node(&remote));
        h.clear(HookKind::CmpNode);
        assert!(!h.eval_cmp_node(&same));
    }

    #[test]
    fn event_hooks_fire_only_when_installed() {
        let h = ShflHooks::new();
        let hits = Arc::new(AtomicU64::new(0));
        let ctx = LockEventCtx {
            lock_id: 9,
            tid: 1,
            cpu: 0,
            socket: 0,
            now_ns: 0,
            owner_tid: 0,
        };
        h.fire_event(HookKind::LockAcquired, &ctx);
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        let hits2 = Arc::clone(&hits);
        h.install_event(
            HookKind::LockAcquired,
            Arc::new(move |c| {
                assert_eq!(c.lock_id, 9);
                hits2.fetch_add(1, Ordering::Relaxed);
            }),
        );
        h.fire_event(HookKind::LockAcquired, &ctx);
        h.fire_event(HookKind::LockRelease, &ctx); // Not installed.
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "not an event hook")]
    fn install_event_rejects_decision_hooks() {
        ShflHooks::new().install_event(HookKind::CmpNode, Arc::new(|_| {}));
    }
}
