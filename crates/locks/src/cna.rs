//! Compact NUMA-aware lock (CNA).
//!
//! Dice & Kogan, *Compact NUMA-aware Locks* (EuroSys '19) — referenced by
//! the paper as the fix for hierarchical locks' memory overhead. The lock
//! is an MCS queue whose *holder*, on release, prefers a waiter from its
//! own socket: remote waiters scanned over are parked on a secondary queue
//! and spliced back periodically for long-term fairness.
//!
//! The secondary queue head/tail live in the lock and are touched only by
//! the current holder, which keeps the queue surgery single-writer.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicUsize, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawLock;
use crate::topo;

/// Local handoffs before fairness forces a splice of the secondary queue.
const MAX_LOCAL_HANDOFFS: u32 = 64;

struct Node {
    next: AtomicPtr<Node>,
    /// 0 while waiting; 1 when granted the lock.
    spin: AtomicUsize,
    socket: u32,
}

/// The CNA lock.
#[derive(Default)]
pub struct CnaLock {
    tail: AtomicPtr<Node>,
    holder: AtomicPtr<Node>,
    sec_head: AtomicPtr<Node>,
    sec_tail: AtomicPtr<Node>,
    local_streak: AtomicU32,
}

// SAFETY: queue nodes are shared only through the atomics above; interior
// `next` rewiring is done exclusively by the lock holder.
unsafe impl Send for CnaLock {}
// SAFETY: see above.
unsafe impl Sync for CnaLock {}

impl CnaLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        CnaLock::default()
    }

    /// Appends a fully linked segment `[head, tail]` to the secondary
    /// queue. Caller must be the lock holder.
    ///
    /// # Safety
    ///
    /// `head`/`tail` must form a linked segment of live nodes that has been
    /// unlinked from the main queue.
    unsafe fn sec_append(&self, head: *mut Node, tail: *mut Node) {
        // SAFETY: holder-only access per the caller contract.
        unsafe {
            (*tail).next.store(ptr::null_mut(), Ordering::Relaxed);
            let old_tail = self.sec_tail.load(Ordering::Relaxed);
            if old_tail.is_null() {
                self.sec_head.store(head, Ordering::Relaxed);
            } else {
                (*old_tail).next.store(head, Ordering::Relaxed);
            }
            self.sec_tail.store(tail, Ordering::Relaxed);
        }
    }

    /// Detaches the whole secondary queue; returns `(head, tail)` or null.
    fn sec_take(&self) -> (*mut Node, *mut Node) {
        let h = self.sec_head.load(Ordering::Relaxed);
        let t = self.sec_tail.load(Ordering::Relaxed);
        self.sec_head.store(ptr::null_mut(), Ordering::Relaxed);
        self.sec_tail.store(ptr::null_mut(), Ordering::Relaxed);
        (h, t)
    }

    /// Spins until our successor link becomes visible (an enqueuer swapped
    /// the tail but has not linked yet).
    ///
    /// # Safety
    ///
    /// `node` must be the holder's node and the tail must have moved past it.
    unsafe fn spin_for_successor(&self, node: *mut Node) -> *mut Node {
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: `node` is ours until freed by the caller.
            let next = unsafe { (*node).next.load(Ordering::Acquire) };
            if !next.is_null() {
                return next;
            }
            backoff.snooze();
        }
    }
}

impl RawLock for CnaLock {
    fn acquire(&self) {
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            spin: AtomicUsize::new(0),
            socket: topo::current_socket(),
        }));
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is alive until its owner hands off, which
            // requires our link below.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
            }
            let mut backoff = Backoff::new();
            // SAFETY: our node; freed only after release.
            while unsafe { (*node).spin.load(Ordering::Acquire) } == 0 {
                backoff.snooze();
            }
        }
        self.holder.store(node, Ordering::Relaxed);
    }

    fn release(&self) {
        let node = self.holder.load(Ordering::Relaxed);
        assert!(!node.is_null(), "release of unheld CNA lock");
        self.holder.store(ptr::null_mut(), Ordering::Relaxed);

        // SAFETY: `node` is the holder's node; successors are live waiters.
        unsafe {
            let mut succ = (*node).next.load(Ordering::Acquire);
            if succ.is_null() {
                let sh = self.sec_head.load(Ordering::Relaxed);
                let st = self.sec_tail.load(Ordering::Relaxed);
                if sh.is_null() {
                    // Empty everywhere: try to free the lock outright.
                    if self
                        .tail
                        .compare_exchange(
                            node,
                            ptr::null_mut(),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        drop(Box::from_raw(node));
                        return;
                    }
                    // An enqueuer beat us; fall through with its node.
                    succ = self.spin_for_successor(node);
                } else {
                    // Drain the secondary queue. If the main queue is empty
                    // the drained chain *becomes* the main queue, so its
                    // tail must be installed as the lock tail.
                    self.local_streak.store(0, Ordering::Relaxed);
                    if self
                        .tail
                        .compare_exchange(node, st, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.sec_take();
                        (*sh).spin.store(1, Ordering::Release);
                        drop(Box::from_raw(node));
                        return;
                    }
                    // An enqueuer appended behind us: link the drained
                    // chain ahead of it.
                    let succ = self.spin_for_successor(node);
                    self.sec_take();
                    (*st).next.store(succ, Ordering::Relaxed);
                    (*sh).spin.store(1, Ordering::Release);
                    drop(Box::from_raw(node));
                    return;
                }
            }

            let my_socket = (*node).socket;
            let streak = self.local_streak.load(Ordering::Relaxed);
            let force_fair = streak >= MAX_LOCAL_HANDOFFS;

            if !force_fair {
                // Scan for the first same-socket waiter; the scan stops at
                // any node whose `next` is not yet linked (possible tail).
                let mut local = ptr::null_mut();
                let mut local_pred = ptr::null_mut();
                let mut pred = node;
                let mut curr = succ;
                loop {
                    if (*curr).socket == my_socket {
                        local = curr;
                        local_pred = pred;
                        break;
                    }
                    let next = (*curr).next.load(Ordering::Acquire);
                    if next.is_null() {
                        break;
                    }
                    pred = curr;
                    curr = next;
                }
                if !local.is_null() {
                    if local != succ {
                        // Move the remote prefix [succ, local_pred] aside.
                        self.sec_append(succ, local_pred);
                    }
                    self.local_streak.store(streak + 1, Ordering::Relaxed);
                    (*local).spin.store(1, Ordering::Release);
                    drop(Box::from_raw(node));
                    return;
                }
            }

            // Fairness path (or no local waiter): put the secondary queue
            // ahead of the remaining main queue.
            let (sh, st) = self.sec_take();
            self.local_streak.store(0, Ordering::Relaxed);
            if sh.is_null() {
                (*succ).spin.store(1, Ordering::Release);
            } else {
                (*st).next.store(succ, Ordering::Relaxed);
                (*sh).spin.store(1, Ordering::Release);
            }
            drop(Box::from_raw(node));
        }
    }

    fn try_acquire(&self) -> bool {
        if !self.tail.load(Ordering::Relaxed).is_null() {
            return false;
        }
        let node = Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            spin: AtomicUsize::new(0),
            socket: topo::current_socket(),
        }));
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.holder.store(node, Ordering::Relaxed);
            true
        } else {
            // SAFETY: never published.
            unsafe {
                drop(Box::from_raw(node));
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;

    #[test]
    fn uncontended_roundtrip() {
        let l = CnaLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn stress_mutual_exclusion_same_socket() {
        mutex_stress(CnaLock::new(), 8, 2_000);
    }

    #[test]
    fn stress_mutual_exclusion_across_sockets() {
        // `mutex_stress` pins thread t to virtual cpu t; spread them instead
        // so sockets differ (10 cores per socket by default).
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let lock = Arc::new(CnaLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let (l, c) = (Arc::clone(&lock), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                topo::pin_thread(t * 10); // Sockets 0..8.
                for _ in 0..2_000 {
                    let _g = l.lock();
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 16_000);
    }

    #[test]
    fn secondary_queue_waiters_are_not_starved() {
        // Two sockets; socket-0 threads hammer the lock while one socket-1
        // thread must still make progress within the fairness bound.
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        let lock = Arc::new(CnaLock::new());
        let remote_done = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicU64::new(0));
        let mut locals = Vec::new();
        for t in 0..3u32 {
            let (l, s) = (Arc::clone(&lock), Arc::clone(&stop));
            locals.push(std::thread::spawn(move || {
                topo::pin_thread(t);
                while s.load(Ordering::Relaxed) == 0 {
                    let _g = l.lock();
                }
            }));
        }
        let remote = {
            let (l, d) = (Arc::clone(&lock), Arc::clone(&remote_done));
            std::thread::spawn(move || {
                topo::pin_thread(15); // Socket 1.
                for _ in 0..200 {
                    let _g = l.lock();
                    d.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        remote.join().unwrap();
        stop.store(1, Ordering::Relaxed);
        for h in locals {
            h.join().unwrap();
        }
        assert_eq!(remote_done.load(Ordering::Relaxed), 200);
    }
}
