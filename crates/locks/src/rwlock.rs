//! Neutral readers-writer lock (the "Stock" baseline).
//!
//! A fair-leaning, writer-preference spinning rwlock in the style of Linux's
//! `qrwlock`/`rwsem` fast path: a single word holds the reader count, a
//! writer bit and a writer-waiting bit. A waiting writer blocks new readers,
//! preventing writer starvation — the "neutral readers-writer lock design"
//! the paper's lock-switching use case starts from (§3.1.1).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawRwLock;

const WRITER: u64 = 1;
const WRITER_WAITING: u64 = 2;
const READER_UNIT: u64 = 4;

/// The neutral rwlock.
#[derive(Default)]
pub struct NeutralRwLock {
    word: AtomicU64,
}

impl NeutralRwLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        NeutralRwLock::default()
    }

    /// Current reader count (profiling only).
    pub fn readers(&self) -> u64 {
        self.word.load(Ordering::Relaxed) / READER_UNIT
    }

    /// True while a writer holds the lock (profiling only).
    pub fn write_locked(&self) -> bool {
        self.word.load(Ordering::Relaxed) & WRITER != 0
    }
}

impl RawRwLock for NeutralRwLock {
    fn read_acquire(&self) {
        let mut backoff = Backoff::new();
        loop {
            let w = self.word.load(Ordering::Relaxed);
            // Writer preference: stall behind both held and waiting writers.
            if w & (WRITER | WRITER_WAITING) == 0
                && self
                    .word
                    .compare_exchange_weak(w, w + READER_UNIT, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff.snooze();
        }
    }

    fn read_release(&self) {
        let old = self.word.fetch_sub(READER_UNIT, Ordering::Release);
        debug_assert!(old >= READER_UNIT, "read_release without readers");
    }

    fn write_acquire(&self) {
        let mut backoff = Backoff::new();
        loop {
            let w = self.word.load(Ordering::Relaxed);
            if w & !WRITER_WAITING == 0 {
                // Free (readers gone, no writer): claim, clearing the
                // waiting bit we may have set.
                if self
                    .word
                    .compare_exchange_weak(w, WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
            } else if w & WRITER_WAITING == 0 {
                // Announce intent so new readers stall.
                let _ = self.word.compare_exchange_weak(
                    w,
                    w | WRITER_WAITING,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            backoff.snooze();
        }
    }

    fn write_release(&self) {
        debug_assert!(self.write_locked(), "write_release without writer");
        self.word.fetch_and(!WRITER, Ordering::Release);
    }

    fn try_read_acquire(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        w & (WRITER | WRITER_WAITING) == 0
            && self
                .word
                .compare_exchange(w, w + READER_UNIT, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    fn try_write_acquire(&self) -> bool {
        let w = self.word.load(Ordering::Relaxed);
        w & !WRITER_WAITING == 0
            && self
                .word
                .compare_exchange(w, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let l = NeutralRwLock::new();
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(l.readers(), 2);
        assert!(!l.try_write_acquire());
        drop(r1);
        drop(r2);
        let w = l.write();
        assert!(!l.try_read_acquire());
        assert!(!l.try_write_acquire());
        drop(w);
        assert!(l.try_read_acquire());
        l.read_release();
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        let l = NeutralRwLock::new();
        let r = l.read();
        // Simulate a writer announcing intent.
        l.word.fetch_or(WRITER_WAITING, Ordering::Relaxed);
        assert!(!l.try_read_acquire());
        l.word.fetch_and(!WRITER_WAITING, Ordering::Relaxed);
        drop(r);
    }

    #[test]
    fn stress_counter_consistency() {
        struct Shared {
            lock: NeutralRwLock,
            value: std::cell::UnsafeCell<(u64, u64)>,
        }
        // SAFETY: the pair is written only under the write lock and read
        // only under the read lock; the test verifies exactly that.
        unsafe impl Sync for Shared {}

        let s = Arc::new(Shared {
            lock: NeutralRwLock::new(),
            value: std::cell::UnsafeCell::new((0, 0)),
        });
        let reads = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for t in 0..6 {
            let s = Arc::clone(&s);
            let reads = Arc::clone(&reads);
            handles.push(std::thread::spawn(move || {
                for i in 0..3_000u64 {
                    if t < 2 {
                        let _g = s.lock.write();
                        // SAFETY: exclusive under the write lock.
                        unsafe {
                            let v = &mut *s.value.get();
                            v.0 += 1;
                            v.1 += 1;
                        }
                    } else {
                        let _g = s.lock.read();
                        // SAFETY: shared under the read lock; writers are
                        // excluded, so the two halves must agree.
                        let v = unsafe { *s.value.get() };
                        assert_eq!(v.0, v.1, "torn read at iter {i}");
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined.
        let v = unsafe { *s.value.get() };
        assert_eq!(v.0, 6_000);
        assert_eq!(reads.load(Ordering::Relaxed), 12_000);
    }
}
