//! Kernel-style lock algorithms with Concord hook points — real-thread
//! implementations.
//!
//! This crate is the "lock zoo" of the *Contextual Concurrency Control*
//! reproduction: every algorithm the paper studies or compares against,
//! implemented from scratch over std atomics:
//!
//! * [`TasLock`] — test-and-test-and-set with exponential backoff;
//! * [`TicketLock`] — FIFO ticket lock (pre-queue-lock Linux spinlock);
//! * [`McsLock`] — queue lock, the qspinlock building block;
//! * [`ClhLock`] — implicit-queue CLH lock;
//! * [`CnaLock`] — compact NUMA-aware lock (CNA, EuroSys '19);
//! * [`ShflLock`] — the shuffle lock (SOSP '19) whose shuffler consults
//!   pluggable, livepatchable policies ([`hooks::ShflHooks`]) — the lock
//!   Concord targets;
//! * [`ShflMutex`] — blocking shuffle lock with a policy-driven
//!   spin-then-park strategy;
//! * [`NeutralRwLock`] — fair writer-preference readers-writer lock (the
//!   `rwsem`/`qrwlock` "Stock" baseline);
//! * [`PhaseFairRwLock`] — phase-fair rwlock (PF-T) for the realtime use
//!   case (§3.1.2): bounded reader/writer blocking by alternating phases;
//! * [`Bravo`] — the BRAVO biased readers-writer wrapper (ATC '19) over any
//!   [`RawRwLock`].
//!
//! Threads announce a *virtual* CPU/NUMA placement via [`topo::pin_thread`]
//! so topology-aware algorithms work identically on any host; the
//! discrete-event simulator (`simlocks`) owns scalability experiments,
//! while this crate is the adoptable library validated by stress tests.
//!
//! # Examples
//!
//! ```
//! use locks::{RawLock, ShflLock};
//! use std::sync::Arc;
//!
//! let lock = Arc::new(ShflLock::new());
//! let mut handles = Vec::new();
//! for _ in 0..4 {
//!     let lock = Arc::clone(&lock);
//!     handles.push(std::thread::spawn(move || {
//!         for _ in 0..1000 {
//!             let _g = lock.lock();
//!         }
//!     }));
//! }
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

mod backoff;
mod bravo;
mod clh;
mod cna;
pub mod hooks;
mod mcs;
mod phasefair;
mod raw;
mod rwlock;
mod seqlock;
mod shfl;
mod shfl_block;
mod tas;
mod ticket;
pub mod topo;

pub use backoff::Backoff;
pub use bravo::Bravo;
pub use clh::ClhLock;
pub use cna::CnaLock;
pub use mcs::McsLock;
pub use phasefair::PhaseFairRwLock;
pub use raw::{LockGuard, RawLock, RawRwLock, ReadGuard, WriteGuard};
pub use rwlock::NeutralRwLock;
pub use seqlock::SeqLock;
pub use shfl::ShflLock;
pub use shfl_block::ShflMutex;
pub use tas::TasLock;
pub use ticket::TicketLock;

/// Monotonic nanosecond clock shared by lock implementations, profiling,
/// and the telemetry plane (one epoch, so trace timestamps from different
/// layers interleave correctly).
pub fn now_ns() -> u64 {
    telemetry::clock::real_now_ns()
}
