//! BRAVO: biased locking for readers-writer locks.
//!
//! Dice & Kogan, *BRAVO — Biased Locking for Reader-Writer Locks*
//! (USENIX ATC '19) — one of the two locks the paper's preliminary
//! evaluation modifies (Fig. 2(a)). BRAVO wraps any rwlock: while the lock
//! is *reader-biased*, readers publish themselves in a global visible-
//! readers table and skip the underlying lock entirely, eliminating the
//! shared reader counter that kills read scalability. A writer first takes
//! the underlying lock, then *revokes* the bias by scanning the table and
//! waiting out published readers; the measured revocation cost sets an
//! inhibit window during which the bias stays off.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

use crate::now_ns;
use crate::raw::RawRwLock;
use crate::topo;

/// Slots in the global visible-readers table (power of two).
pub const VR_TABLE_SIZE: usize = 1024;

/// Multiplier `N` for the revocation-cost inhibit window.
const INHIBIT_MULTIPLIER: u64 = 9;

struct VisibleReaders {
    slots: Vec<CachePadded<AtomicUsize>>,
}

impl VisibleReaders {
    fn new() -> Self {
        VisibleReaders {
            slots: (0..VR_TABLE_SIZE)
                .map(|_| CachePadded::new(AtomicUsize::new(0)))
                .collect(),
        }
    }
}

fn vr_table() -> &'static VisibleReaders {
    use std::sync::OnceLock;
    static TABLE: OnceLock<VisibleReaders> = OnceLock::new();
    TABLE.get_or_init(VisibleReaders::new)
}

fn slot_index(lock_addr: usize, tid: u64) -> usize {
    // Mix of lock identity and thread identity, as in the paper.
    let mut x = lock_addr as u64 ^ tid.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x as usize) & (VR_TABLE_SIZE - 1)
}

/// The BRAVO wrapper.
///
/// # Examples
///
/// ```
/// use locks::{Bravo, NeutralRwLock, RawRwLock};
///
/// let lock = Bravo::new(NeutralRwLock::new());
/// {
///     let _r = lock.read();
/// }
/// {
///     let _w = lock.write();
/// }
/// ```
pub struct Bravo<R> {
    rbias: AtomicBool,
    inhibit_until: AtomicU64,
    underlying: R,
    /// Counters for tests and the profiler.
    fast_reads: AtomicU64,
    slow_reads: AtomicU64,
    revocations: AtomicU64,
}

thread_local! {
    /// `(lock address, slot index)` of this thread's in-flight fast read,
    /// if any. One publication per thread at a time: a nested read on a
    /// second BRAVO lock takes the slow path.
    static MY_SLOT: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

impl<R: RawRwLock> Bravo<R> {
    /// Wraps an underlying rwlock, starting reader-biased.
    pub fn new(underlying: R) -> Self {
        Bravo {
            rbias: AtomicBool::new(true),
            inhibit_until: AtomicU64::new(0),
            underlying,
            fast_reads: AtomicU64::new(0),
            slow_reads: AtomicU64::new(0),
            revocations: AtomicU64::new(0),
        }
    }

    /// Whether the lock is currently reader-biased.
    pub fn is_biased(&self) -> bool {
        self.rbias.load(Ordering::Relaxed)
    }

    /// Enables or disables biasing as a policy decision (Concord's
    /// lock-switching hook flips this).
    ///
    /// Enabling only clears the inhibit window; the bias itself is restored
    /// by the next slow-path reader, which holds a read lock at that moment
    /// and therefore cannot race a writer. Setting the flag directly from
    /// here could admit a fast reader while a writer owns the lock.
    pub fn set_bias_enabled(&self, enabled: bool) {
        if enabled {
            self.inhibit_until.store(0, Ordering::Relaxed);
        } else {
            // A plain flag flip would let a writer skip revocation while
            // fast readers are still published; do a full revoke, then pin
            // the inhibit window open.
            self.revoke();
            self.inhibit_until.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// `(fast path reads, slow path reads, revocations)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.fast_reads.load(Ordering::Relaxed),
            self.slow_reads.load(Ordering::Relaxed),
            self.revocations.load(Ordering::Relaxed),
        )
    }

    /// Access to the wrapped lock (for tests).
    pub fn underlying(&self) -> &R {
        &self.underlying
    }

    fn revoke(&self) {
        let start = now_ns();
        self.rbias.store(false, Ordering::SeqCst);
        let me = self as *const _ as usize;
        // Wait out every published fast-path reader of this lock.
        for slot in &vr_table().slots {
            let mut spins = 0u32;
            while slot.load(Ordering::Acquire) == me {
                std::hint::spin_loop();
                spins += 1;
                if spins.is_multiple_of(1024) {
                    std::thread::yield_now();
                }
            }
        }
        let cost = now_ns().saturating_sub(start);
        self.inhibit_until
            .store(now_ns() + INHIBIT_MULTIPLIER * cost, Ordering::Relaxed);
        self.revocations.fetch_add(1, Ordering::Relaxed);
    }
}

impl<R: RawRwLock> RawRwLock for Bravo<R> {
    fn read_acquire(&self) {
        if self.rbias.load(Ordering::Acquire) && MY_SLOT.with(|s| s.get().is_none()) {
            let me = self as *const _ as usize;
            let idx = slot_index(me, topo::current_tid());
            let slot = &vr_table().slots[idx];
            if slot
                .compare_exchange(0, me, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                // Recheck after publishing (the BRAVO protocol's key step:
                // a concurrent revoker must observe either our slot or our
                // recheck failing).
                if self.rbias.load(Ordering::SeqCst) {
                    MY_SLOT.with(|s| s.set(Some((me, idx))));
                    self.fast_reads.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                slot.store(0, Ordering::Release);
            }
        }
        // Slow path: the underlying lock.
        self.underlying.read_acquire();
        self.slow_reads.fetch_add(1, Ordering::Relaxed);
        if !self.rbias.load(Ordering::Relaxed)
            && now_ns() >= self.inhibit_until.load(Ordering::Relaxed)
        {
            self.rbias.store(true, Ordering::Release);
        }
    }

    fn read_release(&self) {
        let me = self as *const _ as usize;
        let mine = MY_SLOT.with(|s| match s.get() {
            Some((addr, idx)) if addr == me => {
                s.set(None);
                Some(idx)
            }
            _ => None,
        });
        match mine {
            Some(idx) => vr_table().slots[idx].store(0, Ordering::Release),
            None => self.underlying.read_release(),
        }
    }

    fn write_acquire(&self) {
        self.underlying.write_acquire();
        if self.rbias.load(Ordering::Acquire) {
            self.revoke();
        }
    }

    fn write_release(&self) {
        self.underlying.write_release();
    }

    fn try_read_acquire(&self) -> bool {
        // Conservative: skip the fast path so failure needs no cleanup.
        if self.underlying.try_read_acquire() {
            self.slow_reads.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn try_write_acquire(&self) -> bool {
        if self.underlying.try_write_acquire() {
            if self.rbias.load(Ordering::Acquire) {
                self.revoke();
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwlock::NeutralRwLock;
    use std::sync::Arc;

    #[test]
    fn fast_path_reads_bypass_underlying() {
        let l = Bravo::new(NeutralRwLock::new());
        {
            let _r = l.read();
            assert_eq!(l.underlying().readers(), 0, "fast read must not touch it");
        }
        let (fast, slow, _) = l.stats();
        assert_eq!(fast, 1);
        assert_eq!(slow, 0);
    }

    #[test]
    fn writer_revokes_bias_and_inhibits() {
        let l = Bravo::new(NeutralRwLock::new());
        assert!(l.is_biased());
        {
            let _w = l.write();
        }
        assert!(!l.is_biased());
        let (_, _, revocations) = l.stats();
        assert_eq!(revocations, 1);
        // Next read takes the slow path during the inhibit window.
        {
            let _r = l.read();
        }
        let (fast, slow, _) = l.stats();
        assert_eq!(fast, 0, "inhibit window must force the slow path");
        assert!(slow >= 1);
    }

    #[test]
    fn bias_toggle_api() {
        let l = Bravo::new(NeutralRwLock::new());
        l.set_bias_enabled(false);
        {
            let _r = l.read();
        }
        let (fast, slow, _) = l.stats();
        assert_eq!(fast, 0);
        assert_eq!(slow, 1);
        l.set_bias_enabled(true);
        // The first slow read after re-enabling restores the bias; the next
        // read takes the fast path again.
        {
            let _r = l.read();
        }
        assert!(l.is_biased());
        {
            let _r = l.read();
        }
        let (fast, _, _) = l.stats();
        assert_eq!(fast, 1);
    }

    #[test]
    fn writer_excludes_fast_readers_stress() {
        struct Shared {
            lock: Bravo<NeutralRwLock>,
            value: std::cell::UnsafeCell<(u64, u64)>,
        }
        // SAFETY: pair accessed only under the lock; that is the assertion.
        unsafe impl Sync for Shared {}

        let s = Arc::new(Shared {
            lock: Bravo::new(NeutralRwLock::new()),
            value: std::cell::UnsafeCell::new((0, 0)),
        });
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    if t == 0 {
                        let _g = s.lock.write();
                        // SAFETY: exclusive under write lock.
                        unsafe {
                            let v = &mut *s.value.get();
                            v.0 += 1;
                            v.1 += 1;
                        }
                    } else {
                        let _g = s.lock.read();
                        // SAFETY: shared under read lock.
                        let v = unsafe { *s.value.get() };
                        assert_eq!(v.0, v.1, "writer ran concurrently with reader");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined.
        assert_eq!(unsafe { *s.value.get() }.0, 2_000);
    }

    #[test]
    fn nested_distinct_locks_fast_path() {
        // Two BRAVO locks read by the same thread: distinct slots must be
        // used and released correctly.
        let a = Bravo::new(NeutralRwLock::new());
        let b = Bravo::new(NeutralRwLock::new());
        // The thread-local publication cell holds one entry, so the inner
        // read must take the slow path; releases must not cross wires.
        let ra = a.read();
        let rb = b.read();
        drop(rb);
        drop(ra);
        let (fast_a, slow_a, _) = a.stats();
        let (fast_b, slow_b, _) = b.stats();
        assert_eq!((fast_a, slow_a), (1, 0));
        assert_eq!((fast_b, slow_b), (0, 1));
        // Release order B-then-A exercised above; now A-then-B.
        let ra = a.read();
        let rb = b.read();
        drop(ra);
        drop(rb);
    }
}
