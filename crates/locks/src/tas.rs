//! Test-and-test-and-set lock with exponential backoff.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawLock;

/// The simplest spinlock: one shared flag, every waiter hammers it.
///
/// Included as the classic non-scalable baseline ("non-scalable locks are
/// dangerous"); backoff keeps it usable at low thread counts.
#[derive(Default)]
pub struct TasLock {
    locked: AtomicBool,
}

impl TasLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        TasLock::default()
    }
}

impl RawLock for TasLock {
    fn acquire(&self) {
        let mut backoff = Backoff::new();
        loop {
            // Test first to spin on a shared (read-only) line.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff.snooze();
        }
    }

    fn release(&self) {
        debug_assert!(
            self.locked.load(Ordering::Relaxed),
            "release of unheld TAS lock"
        );
        self.locked.store(false, Ordering::Release);
    }

    fn try_acquire(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;

    #[test]
    fn uncontended_roundtrip() {
        let l = TasLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn stress_mutual_exclusion() {
        mutex_stress(TasLock::new(), 8, 2_000);
    }
}
