//! The shuffle lock (ShflLock), with Concord policy hooks.
//!
//! Kashyap et al., *Scalable and Practical Locking with Shuffling*
//! (SOSP '19) — the lock the paper builds Concord around. Structure:
//! a test-and-set word for the fast path plus an MCS-style waiter queue;
//! the waiter at the head of the queue (the *shuffler* here) may reorder
//! the queue according to a policy — e.g. grouping waiters of its own
//! socket — **off the critical path**, while it spins for the lock word.
//!
//! Concord's Table 1 hooks are consulted at the decision points:
//! [`ShflHooks::eval_skip_shuffle`] gates the phase,
//! [`ShflHooks::eval_cmp_node`] decides each move, and the four event hooks
//! support dynamic profiling. With no policy installed the lock degenerates
//! to a plain FIFO queue lock with a TAS fast path.
//!
//! Safety rules from the paper (§4.2) are enforced here, not by policies:
//! shuffling rounds are statically bounded ([`MAX_SHUFFLE_ROUNDS`]) to
//! avoid starvation, and a debug-mode queue-length check verifies the
//! linked list is preserved across a shuffle.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::backoff::Backoff;
use crate::hooks::{CmpNodeCtx, HookKind, LockEventCtx, NodeView, ShflHooks, SkipShuffleCtx};
use crate::now_ns;
use crate::raw::RawLock;
use crate::topo;

/// Upper bound on shuffle phases one shuffler may run (starvation guard).
pub const MAX_SHUFFLE_ROUNDS: u32 = 8;

/// Upper bound on nodes examined per shuffle phase.
pub const MAX_SHUFFLE_SCAN: usize = 64;

/// Consecutive same-socket handoffs before shuffling pauses (starvation
/// guard; §4.2's bounded-shuffling fairness invariant).
pub const MAX_BATCH: u32 = 32;

const WAITING: u32 = 0;
const GRANTED: u32 = 1;

pub(crate) struct Node {
    next: AtomicPtr<Node>,
    status: AtomicU32,
    view: NodeView,
}

static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

/// The shuffle spinlock.
pub struct ShflLock {
    locked: AtomicBool,
    tail: AtomicPtr<Node>,
    holder: AtomicPtr<Node>,
    hooks: Arc<ShflHooks>,
    id: u64,
    shuffle_count: AtomicU64,
    /// Socket of the last holder and its consecutive-handoff streak
    /// (fairness guard; approximate under races, which only makes the
    /// guard trigger earlier or later, never unsoundly).
    last_socket: AtomicU32,
    streak: AtomicU32,
    /// Tid of the current holder (0 = unlocked). Written only by the
    /// winner of the lock word (while holding) and cleared by the holder
    /// before it releases, so event contexts can name the blocker.
    owner: AtomicU64,
}

// SAFETY: nodes are shared only through atomics; interior queue surgery is
// performed exclusively by the unique queue head (shuffler).
unsafe impl Send for ShflLock {}
// SAFETY: see above.
unsafe impl Sync for ShflLock {}

impl Default for ShflLock {
    fn default() -> Self {
        ShflLock::new()
    }
}

impl ShflLock {
    /// Creates an unlocked instance with vacant hooks (plain FIFO).
    pub fn new() -> Self {
        ShflLock {
            locked: AtomicBool::new(false),
            tail: AtomicPtr::new(ptr::null_mut()),
            holder: AtomicPtr::new(ptr::null_mut()),
            hooks: Arc::new(ShflHooks::new()),
            id: NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed),
            shuffle_count: AtomicU64::new(0),
            last_socket: AtomicU32::new(u32::MAX),
            streak: AtomicU32::new(0),
            owner: AtomicU64::new(0),
        }
    }

    /// Creates a lock with the NUMA-aware grouping policy compiled in —
    /// the "ShflLock" series of the paper's Fig. 2(b).
    pub fn with_numa_policy() -> Self {
        let lock = ShflLock::new();
        lock.hooks.install_cmp_node(Arc::new(|c: &CmpNodeCtx| {
            c.curr.socket == c.shuffler.socket
        }));
        lock
    }

    /// Stable identity of this lock instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The hook table (Concord patches through this).
    pub fn hooks(&self) -> &Arc<ShflHooks> {
        &self.hooks
    }

    /// Number of completed shuffle phases (statistics).
    pub fn shuffle_count(&self) -> u64 {
        self.shuffle_count.load(Ordering::Relaxed)
    }

    /// Tracks consecutive same-socket handoffs for the fairness bound and
    /// records the new holder's identity.
    fn note_acquired(&self) {
        self.owner.store(topo::current_tid(), Ordering::Relaxed);
        let s = topo::current_socket();
        if self.last_socket.swap(s, Ordering::Relaxed) == s {
            self.streak.fetch_add(1, Ordering::Relaxed);
        } else {
            self.streak.store(0, Ordering::Relaxed);
        }
    }

    fn event_ctx(&self) -> LockEventCtx {
        LockEventCtx {
            lock_id: self.id,
            tid: topo::current_tid(),
            cpu: topo::current_cpu(),
            socket: topo::current_socket(),
            now_ns: now_ns(),
            owner_tid: self.owner.load(Ordering::Relaxed),
        }
    }

    fn new_node() -> *mut Node {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            status: AtomicU32::new(WAITING),
            view: NodeView {
                tid: topo::current_tid(),
                cpu: topo::current_cpu(),
                socket: topo::current_socket(),
                prio: topo::current_priority(),
                cs_hint: topo::cs_hint(),
                held_locks: topo::held_locks(),
                wait_start_ns: now_ns(),
            },
        }))
    }

    /// One shuffle phase, run by the queue head while it waits for the
    /// lock word. Matching nodes are moved to the front of the queue
    /// (right behind the shuffler), preserving their relative order.
    ///
    /// # Safety
    ///
    /// `head` must be the unique queue head owned by the caller.
    unsafe fn shuffle(&self, head: *mut Node) {
        // SAFETY: the queue head is unique, so only one thread rewrites
        // interior `next` pointers; every examined node has a linked
        // successor (guaranteed by the `next.is_null()` breaks), so it is
        // not the tail and its enqueue-link write has completed.
        unsafe {
            #[cfg(debug_assertions)]
            let nodes_before = self.queue_nodes(head);

            let shuffler_view = (*head).view;
            let mut anchor = head; // Matching nodes are placed after this.
            let mut pred = head;
            let mut curr = (*head).next.load(Ordering::Acquire);
            let mut scanned = 0;
            while !curr.is_null() && scanned < MAX_SHUFFLE_SCAN {
                scanned += 1;
                // Abort the phase as soon as the lock frees: acquiring
                // beats reordering (ShflLock re-checks mid-phase).
                if !self.locked.load(Ordering::Relaxed) {
                    break;
                }
                let next = (*curr).next.load(Ordering::Acquire);
                if next.is_null() {
                    // Possible tail (or successor not yet linked): stop —
                    // the tail must never be unlinked.
                    break;
                }
                let decision = self.hooks.eval_cmp_node(&CmpNodeCtx {
                    lock_id: self.id,
                    shuffler: shuffler_view,
                    curr: (*curr).view,
                });
                if decision {
                    if pred == anchor {
                        // Already in position; extend the in-order prefix.
                        anchor = curr;
                        pred = curr;
                    } else {
                        // Unlink and splice right after the anchor.
                        (*pred).next.store(next, Ordering::Relaxed);
                        let after = (*anchor).next.load(Ordering::Relaxed);
                        (*curr).next.store(after, Ordering::Relaxed);
                        (*anchor).next.store(curr, Ordering::Release);
                        anchor = curr;
                        // `pred` is unchanged: its successor is now `next`.
                    }
                } else {
                    pred = curr;
                }
                curr = next;
            }

            #[cfg(debug_assertions)]
            {
                // Concurrent enqueuers may append during the phase, so the
                // queue may grow; it must never lose or duplicate a node
                // that was present at the start.
                let after = self.queue_nodes(head);
                let mut sorted = after.clone();
                sorted.sort_unstable();
                sorted.dedup();
                debug_assert_eq!(sorted.len(), after.len(), "shuffle duplicated a node");
                for n in &nodes_before {
                    debug_assert!(after.contains(n), "shuffle lost a queue node");
                }
            }
        }
        self.shuffle_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Collects queue-node addresses reachable from `head` (debug
    /// invariant).
    ///
    /// # Safety
    ///
    /// Caller must be the queue head.
    #[cfg(debug_assertions)]
    unsafe fn queue_nodes(&self, head: *mut Node) -> Vec<usize> {
        let mut out = Vec::new();
        let mut curr = head;
        // SAFETY: nodes reachable from the head are live waiters.
        unsafe {
            while !curr.is_null() && out.len() < 1 << 20 {
                out.push(curr as usize);
                curr = (*curr).next.load(Ordering::Acquire);
            }
        }
        out
    }
}

impl RawLock for ShflLock {
    fn acquire(&self) {
        if self.hooks.observed(HookKind::LockAcquire) {
            self.hooks
                .dispatch_event(HookKind::LockAcquire, &self.event_ctx());
        }
        // Fast path, only when the queue is empty (qspinlock discipline:
        // unbounded stealing can starve the queue head).
        if self.tail.load(Ordering::Relaxed).is_null()
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            self.note_acquired();
            if self.hooks.observed(HookKind::LockAcquired) {
                self.hooks
                    .dispatch_event(HookKind::LockAcquired, &self.event_ctx());
            }
            return;
        }
        if self.hooks.observed(HookKind::LockContended) {
            self.hooks
                .dispatch_event(HookKind::LockContended, &self.event_ctx());
        }

        let node = Self::new_node();
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` stays alive until it links us (MCS protocol).
            unsafe {
                (*prev).next.store(node, Ordering::Release);
            }
            let mut backoff = Backoff::new();
            // SAFETY: our node, freed only after we dequeue below.
            while unsafe { (*node).status.load(Ordering::Acquire) } == WAITING {
                backoff.snooze();
            }
        }

        // We are the queue head: spin for the word, shuffling while we wait.
        let mut rounds = 0u32;
        let mut backoff = Backoff::new();
        loop {
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                break;
            }
            let socket = topo::current_socket();
            let batch_exhausted = self.last_socket.load(Ordering::Relaxed) == socket
                && self.streak.load(Ordering::Relaxed) >= MAX_BATCH;
            if rounds < MAX_SHUFFLE_ROUNDS && !batch_exhausted {
                // SAFETY: we are the unique queue head.
                let skip = self.hooks.eval_skip_shuffle(&SkipShuffleCtx {
                    lock_id: self.id,
                    shuffler: unsafe { (*node).view },
                });
                if !skip {
                    // SAFETY: unique queue head.
                    unsafe { self.shuffle(node) };
                }
                rounds += 1;
            }
            backoff.snooze();
        }

        // Acquired: dequeue ourselves and promote the successor.
        // SAFETY: standard MCS dequeue of our own node.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null()
                && self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
            {
                let mut backoff = Backoff::new();
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    backoff.snooze();
                }
            }
            if !next.is_null() {
                (*next).status.store(GRANTED, Ordering::Release);
            }
            drop(Box::from_raw(node));
        }
        self.holder.store(ptr::null_mut(), Ordering::Relaxed);
        self.note_acquired();
        if self.hooks.observed(HookKind::LockAcquired) {
            self.hooks
                .dispatch_event(HookKind::LockAcquired, &self.event_ctx());
        }
    }

    fn release(&self) {
        if self.hooks.observed(HookKind::LockRelease) {
            self.hooks
                .dispatch_event(HookKind::LockRelease, &self.event_ctx());
        }
        debug_assert!(
            self.locked.load(Ordering::Relaxed),
            "release of unheld ShflLock"
        );
        // Clear the holder identity while still holding the word, so no
        // later owner's store can be overwritten.
        self.owner.store(0, Ordering::Relaxed);
        self.locked.store(false, Ordering::Release);
    }

    fn try_acquire(&self) -> bool {
        let ok = self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if ok {
            self.owner.store(topo::current_tid(), Ordering::Relaxed);
        }
        if ok && self.hooks.observed(HookKind::LockAcquired) {
            self.hooks
                .dispatch_event(HookKind::LockAcquired, &self.event_ctx());
        }
        ok
    }
}

impl Drop for ShflLock {
    fn drop(&mut self) {
        debug_assert!(
            self.tail.load(Ordering::Relaxed).is_null(),
            "ShflLock dropped with queued waiters"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;
    use std::sync::atomic::AtomicU64 as Counter;

    #[test]
    fn uncontended_roundtrip() {
        let l = ShflLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
        }
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn stress_fifo_mode() {
        mutex_stress(ShflLock::new(), 8, 2_000);
    }

    #[test]
    fn stress_numa_mode() {
        mutex_stress(ShflLock::with_numa_policy(), 8, 2_000);
    }

    #[test]
    fn stress_numa_mode_across_sockets() {
        use std::sync::Arc;
        let lock = Arc::new(ShflLock::with_numa_policy());
        let counter = Arc::new(Counter::new(0));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let (l, c) = (Arc::clone(&lock), Arc::clone(&counter));
            handles.push(std::thread::spawn(move || {
                topo::pin_thread((t % 4) * 10 + t); // Four sockets.
                for _ in 0..2_000 {
                    let _g = l.lock();
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 16_000);
    }

    #[test]
    fn pathological_policy_cannot_break_mutual_exclusion() {
        // An adversarial cmp_node that answers pseudo-randomly: fairness is
        // hazarded (Table 1), mutual exclusion must not be.
        let lock = ShflLock::new();
        lock.hooks().install_cmp_node(Arc::new(|c: &CmpNodeCtx| {
            (c.curr.tid ^ c.shuffler.tid) & 1 == 0
        }));
        mutex_stress(lock, 8, 2_000);
    }

    #[test]
    fn shuffling_happens_under_contention_with_policy() {
        use std::sync::Arc;
        let lock = Arc::new(ShflLock::with_numa_policy());
        let held = Arc::new(std::sync::atomic::AtomicBool::new(false));
        // One holder keeps the lock long enough for a queue to form; the
        // queue head must then run at least one shuffle phase while it
        // waits for the lock word.
        let holder = {
            let (l, h) = (Arc::clone(&lock), Arc::clone(&held));
            std::thread::spawn(move || {
                topo::pin_thread(0);
                let _g = l.lock();
                h.store(true, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_millis(200));
            })
        };
        while !held.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
        let mut handles = Vec::new();
        for t in 1..5u32 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                topo::pin_thread(t * 10);
                let _g = l.lock();
            }));
        }
        holder.join().unwrap();
        for h in handles {
            h.join().unwrap();
        }
        assert!(lock.shuffle_count() > 0, "no shuffle phase ever ran");
    }

    #[test]
    fn event_hooks_observe_contention() {
        use std::sync::Arc;
        let lock = Arc::new(ShflLock::new());
        let acquires = Arc::new(Counter::new(0));
        let contended = Arc::new(Counter::new(0));
        let (a, c) = (Arc::clone(&acquires), Arc::clone(&contended));
        lock.hooks().install_event(
            HookKind::LockAcquired,
            Arc::new(move |_| {
                a.fetch_add(1, Ordering::Relaxed);
            }),
        );
        lock.hooks().install_event(
            HookKind::LockContended,
            Arc::new(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            }),
        );
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    let _g = l.lock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(acquires.load(Ordering::Relaxed), 4_000);
        // Contention is schedule-dependent but the counter must be sane.
        assert!(contended.load(Ordering::Relaxed) <= 4_000);
    }
}
