//! Phase-fair readers-writer lock (PF-T).
//!
//! Brandenburg & Anderson, *Spin-based reader-writer synchronization for
//! multiprocessor real-time systems* — the algorithm the paper's
//! "Realtime scheduling" use case (§3.1.2) builds lock policies on: reader
//! and writer *phases* alternate, so a reader waits for at most one writer
//! phase and a writer for at most one reader phase, giving the bounded
//! (O(1)-phase) worst-case blocking that tail-latency SLOs need.
//!
//! Ticket formulation: `win`/`wout` serialize writers; `rin`/`rout` count
//! reader entries in the high bits while the low bits of `rin` publish the
//! presence and phase-id of a waiting/active writer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawRwLock;

/// Reader tickets live above the writer bits.
const RINC: u64 = 0x100;
/// Writer-present flag.
const PRES: u64 = 0x2;
/// Writer phase id (alternates per writer).
const PHID: u64 = 0x1;
/// Both writer bits.
const WBITS: u64 = PRES | PHID;

/// The phase-fair rwlock.
#[derive(Default)]
pub struct PhaseFairRwLock {
    rin: AtomicU64,
    rout: AtomicU64,
    win: AtomicU64,
    wout: AtomicU64,
}

impl PhaseFairRwLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        PhaseFairRwLock::default()
    }

    /// Number of completed writer phases (statistics).
    pub fn writer_phases(&self) -> u64 {
        self.wout.load(Ordering::Relaxed)
    }
}

impl RawRwLock for PhaseFairRwLock {
    fn read_acquire(&self) {
        let w = self.rin.fetch_add(RINC, Ordering::AcqRel) & WBITS;
        if w != 0 {
            // A writer is present: wait for *its* phase to end. We do not
            // wait for the writer bits to clear entirely — the next writer
            // has a different phase id, so a reader blocked behind writer
            // k is admitted before writer k+1 finishes. That is the
            // phase-fair guarantee.
            let mut backoff = Backoff::new();
            while self.rin.load(Ordering::Acquire) & WBITS == w {
                backoff.snooze();
            }
        }
    }

    fn read_release(&self) {
        self.rout.fetch_add(RINC, Ordering::AcqRel);
    }

    fn write_acquire(&self) {
        // Serialize writers by ticket.
        let ticket = self.win.fetch_add(1, Ordering::AcqRel);
        let mut backoff = Backoff::new();
        while self.wout.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        // Publish presence + phase; snapshot the reader entry count.
        let w = PRES | (ticket & PHID);
        let entered = self.rin.fetch_add(w, Ordering::AcqRel) & !WBITS;
        // Wait for the readers that entered before us to leave.
        backoff.reset();
        while self.rout.load(Ordering::Acquire) != entered {
            backoff.snooze();
        }
    }

    fn write_release(&self) {
        // Clear the writer bits (readers blocked on our phase proceed),
        // then admit the next writer.
        self.rin.fetch_and(!WBITS, Ordering::AcqRel);
        self.wout.fetch_add(1, Ordering::AcqRel);
    }

    fn try_read_acquire(&self) -> bool {
        let cur = self.rin.load(Ordering::Acquire);
        if cur & WBITS != 0 {
            return false;
        }
        self.rin
            .compare_exchange(cur, cur + RINC, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    fn try_write_acquire(&self) -> bool {
        let ticket = self.win.load(Ordering::Acquire);
        if self.wout.load(Ordering::Acquire) != ticket {
            return false;
        }
        // Readers must all have left, and we must win the writer ticket.
        if self.rin.load(Ordering::Acquire) & !WBITS != self.rout.load(Ordering::Acquire) {
            return false;
        }
        if self
            .win
            .compare_exchange(ticket, ticket + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        // We hold the writer ticket; re-run the entry protocol parts that
        // cannot fail (readers may have raced in — wait them out, which
        // keeps try_write a bounded spin rather than lock-free; acceptable
        // for a trylock used on mostly-idle locks).
        let w = PRES | (ticket & PHID);
        let entered = self.rin.fetch_add(w, Ordering::AcqRel) & !WBITS;
        let mut backoff = Backoff::new();
        while self.rout.load(Ordering::Acquire) != entered {
            backoff.snooze();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::UnsafeCell;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let l = PhaseFairRwLock::new();
        let r1 = l.read();
        let r2 = l.read();
        assert!(!l.try_write_acquire());
        drop(r1);
        drop(r2);
        let w = l.write();
        assert!(!l.try_read_acquire());
        drop(w);
        assert!(l.try_read_acquire());
        l.read_release();
        assert!(l.try_write_acquire());
        l.write_release();
        assert_eq!(l.writer_phases(), 2);
    }

    #[test]
    fn stress_consistency() {
        struct Shared {
            lock: PhaseFairRwLock,
            pair: UnsafeCell<(u64, u64)>,
        }
        // SAFETY: the pair is written under the write lock and read under
        // the read lock; this test is the assertion of that.
        unsafe impl Sync for Shared {}

        let s = Arc::new(Shared {
            lock: PhaseFairRwLock::new(),
            pair: UnsafeCell::new((0, 0)),
        });
        let mut handles = Vec::new();
        for t in 0..6 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2_000 {
                    if t < 2 {
                        let _g = s.lock.write();
                        // SAFETY: exclusive under write lock.
                        unsafe {
                            let p = &mut *s.pair.get();
                            p.0 += 1;
                            p.1 += 1;
                        }
                    } else {
                        let _g = s.lock.read();
                        // SAFETY: shared under read lock.
                        let p = unsafe { *s.pair.get() };
                        assert_eq!(p.0, p.1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: joined.
        assert_eq!(unsafe { *s.pair.get() }.0, 4_000);
    }

    #[test]
    fn reader_not_starved_by_writer_stream() {
        // Phase fairness: with writers continuously queued, a reader still
        // gets in after at most one writer phase.
        let l = Arc::new(PhaseFairRwLock::new());
        let stop = Arc::new(AtomicU32::new(0));
        let mut writers = Vec::new();
        for _ in 0..2 {
            let (l, s) = (Arc::clone(&l), Arc::clone(&stop));
            writers.push(std::thread::spawn(move || {
                while s.load(Ordering::Relaxed) == 0 {
                    let _g = l.write();
                    std::hint::spin_loop();
                }
            }));
        }
        // The reader must make progress while writers hammer the lock.
        let mut reads = 0;
        for _ in 0..2_000 {
            let _g = l.read();
            reads += 1;
        }
        stop.store(1, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(reads, 2_000);
    }

    #[test]
    fn writer_not_starved_by_reader_stream() {
        let l = Arc::new(PhaseFairRwLock::new());
        let stop = Arc::new(AtomicU32::new(0));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let (l, s) = (Arc::clone(&l), Arc::clone(&stop));
            readers.push(std::thread::spawn(move || {
                while s.load(Ordering::Relaxed) == 0 {
                    let _g = l.read();
                    std::hint::spin_loop();
                }
            }));
        }
        let mut writes = 0;
        for _ in 0..500 {
            let _g = l.write();
            writes += 1;
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(writes, 500);
    }
}
