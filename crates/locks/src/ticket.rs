//! FIFO ticket lock.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::backoff::Backoff;
use crate::raw::RawLock;

/// Classic ticket lock: strictly FIFO, one cache line, all waiters spin on
/// the same `now_serving` word (Linux's pre-qspinlock spinlock).
#[derive(Default)]
pub struct TicketLock {
    next: AtomicU64,
    serving: AtomicU64,
}

impl TicketLock {
    /// Creates an unlocked instance.
    pub fn new() -> Self {
        TicketLock::default()
    }

    /// Number of waiters currently queued (approximate; for profiling).
    pub fn queue_depth(&self) -> u64 {
        self.next
            .load(Ordering::Relaxed)
            .saturating_sub(self.serving.load(Ordering::Relaxed))
    }
}

impl RawLock for TicketLock {
    fn acquire(&self) {
        let my = self.next.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.serving.load(Ordering::Acquire) != my {
            backoff.snooze();
        }
    }

    fn release(&self) {
        let cur = self.serving.load(Ordering::Relaxed);
        debug_assert!(
            self.next.load(Ordering::Relaxed) > cur,
            "release of unheld ticket lock"
        );
        self.serving.store(cur + 1, Ordering::Release);
    }

    fn try_acquire(&self) -> bool {
        // If `next == serving` the lock is free; claiming that ticket wins
        // it outright (only the holder ever advances `serving`).
        let serving = self.serving.load(Ordering::Relaxed);
        self.next
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raw::testutil::mutex_stress;

    #[test]
    fn uncontended_roundtrip() {
        let l = TicketLock::new();
        {
            let _g = l.lock();
            assert!(l.try_lock().is_none());
            assert_eq!(l.queue_depth(), 1);
        }
        let g = l.try_lock();
        assert!(g.is_some());
    }

    #[test]
    fn stress_mutual_exclusion() {
        mutex_stress(TicketLock::new(), 8, 2_000);
    }
}
