//! Bounded exponential backoff for spin loops.

use std::hint;

/// Exponential backoff with a yield fallback once spinning is pointless —
/// essential on hosts with fewer cores than contending threads.
///
/// # Examples
///
/// ```
/// use locks::Backoff;
///
/// let mut b = Backoff::new();
/// for _ in 0..12 {
///     b.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Fresh backoff state.
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Resets to the initial (tightest) spin.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spins 2^step pause instructions, escalating to `yield_now` after
    /// `SPIN_LIMIT` (6) steps.
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated past pure spinning — the usual
    /// trigger for a blocking lock to park.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_and_completes() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
