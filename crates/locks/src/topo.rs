//! Virtual thread placement: CPU, socket and task identity.
//!
//! Topology-aware locks (CNA, ShflLock's NUMA policy) need to know which
//! socket the calling thread runs on. Real pinning is unavailable and
//! irrelevant on this substrate (see DESIGN.md §2), so threads *declare* a
//! placement with [`pin_thread`]; the declared topology drives the
//! algorithms exactly as `smp_processor_id()`/`numa_node_id()` would.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Cores per socket used to derive a socket from a virtual CPU; matches the
/// paper machine (8 × 10).
static CORES_PER_SOCKET: AtomicU32 = AtomicU32::new(10);

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CPU: Cell<u32> = const { Cell::new(0) };
    static PINNED: Cell<bool> = const { Cell::new(false) };
    static TID: Cell<u64> = const { Cell::new(0) };
    static PRIO: Cell<i64> = const { Cell::new(0) };
    static CS_HINT: Cell<u64> = const { Cell::new(0) };
    static HELD_LOCKS: Cell<u32> = const { Cell::new(0) };
}

/// Sets the cores-per-socket divisor for every thread (default 10).
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_cores_per_socket(n: u32) {
    assert!(n > 0, "cores per socket must be non-zero");
    CORES_PER_SOCKET.store(n, Ordering::Relaxed);
}

/// Declares this thread's virtual CPU.
pub fn pin_thread(cpu: u32) {
    CPU.with(|c| c.set(cpu));
    PINNED.with(|p| p.set(true));
}

/// The calling thread's virtual CPU (threads that never pinned get CPU 0).
pub fn current_cpu() -> u32 {
    CPU.with(Cell::get)
}

/// The calling thread's socket, derived from its virtual CPU.
pub fn current_socket() -> u32 {
    current_cpu() / CORES_PER_SOCKET.load(Ordering::Relaxed)
}

/// A stable per-thread task id (assigned lazily, never 0).
pub fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Declares this thread's scheduling priority (higher = more important);
/// policies such as priority boosting read it.
pub fn set_priority(prio: i64) {
    PRIO.with(|p| p.set(prio));
}

/// The declared priority (default 0).
pub fn current_priority() -> i64 {
    PRIO.with(Cell::get)
}

/// Declares the expected critical-section length in nanoseconds — the
/// context the scheduler-cooperative policy consumes (§3.1.2).
pub fn set_cs_hint(ns: u64) {
    CS_HINT.with(|c| c.set(ns));
}

/// The declared critical-section hint (default 0 = unknown).
pub fn cs_hint() -> u64 {
    CS_HINT.with(Cell::get)
}

/// Records that this thread acquired a tracked lock (lock-inheritance
/// context, §3.1.1 "Lock inheritance").
pub fn note_lock_acquired() {
    HELD_LOCKS.with(|h| h.set(h.get() + 1));
}

/// Records that this thread released a tracked lock.
pub fn note_lock_released() {
    HELD_LOCKS.with(|h| h.set(h.get().saturating_sub(1)));
}

/// Number of tracked locks this thread currently holds.
pub fn held_locks() -> u32 {
    HELD_LOCKS.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_derive_socket() {
        pin_thread(37);
        assert_eq!(current_cpu(), 37);
        assert_eq!(current_socket(), 3);
    }

    #[test]
    fn tids_are_stable_and_unique() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        assert_ne!(a, 0);
        let other = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn context_cells_roundtrip() {
        set_priority(-5);
        set_cs_hint(1234);
        assert_eq!(current_priority(), -5);
        assert_eq!(cs_hint(), 1234);
        let before = held_locks();
        note_lock_acquired();
        note_lock_acquired();
        assert_eq!(held_locks(), before + 2);
        note_lock_released();
        assert_eq!(held_locks(), before + 1);
        note_lock_released();
    }
}
