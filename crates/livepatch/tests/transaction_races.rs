//! Patch transactions racing concurrent hook dispatch.
//!
//! A rollout wave applies (and on abort, reverts) many slots in one
//! transaction while reader threads — standing in for lock hot paths
//! dispatching through the patch points — hammer the same slots. The
//! contract under test:
//!
//! * **No torn reads.** Every value a reader observes is one that some
//!   patch (or the baseline) installed whole, never a mix of two.
//! * **Strictly monotonic generations.** A patch point's generation
//!   counter only moves forward, across applies, unwinds and reverts.
//! * **Transaction atomicity under load.** A failed transaction leaves
//!   every slot on its pre-transaction value even while readers race the
//!   unwind.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use livepatch::{Patch, PatchManager, PatchPoint};

const POINTS: usize = 4;
const READERS: usize = 3;
const ROUNDS: u64 = 400;

/// Values are sealed pairs: a torn read (halves from two installs)
/// breaks the relation.
fn seal(x: u64) -> (u64, u64) {
    (x, x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF)
}

fn sealed_ok(v: (u64, u64)) -> bool {
    v == seal(v.0)
}

#[test]
fn transactions_race_dispatch_untorn_and_monotonic() {
    let points: Vec<Arc<PatchPoint<(u64, u64)>>> = (0..POINTS)
        .map(|_| Arc::new(PatchPoint::new(seal(0))))
        .collect();
    let mgr = Arc::new(PatchManager::new());
    let stop = Arc::new(AtomicBool::new(false));
    // Readers that have completed at least one sweep: the main thread
    // waits for all of them before stopping, so a reader thread that is
    // scheduled late (the rounds loop is fast) still dispatches.
    let started = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let points = points.clone();
            let stop = Arc::clone(&stop);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut last_gen = vec![0u64; points.len()];
                let mut observations = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for (i, p) in points.iter().enumerate() {
                        let g0 = p.generation();
                        let v = *p.get();
                        assert!(sealed_ok(v), "torn slot read: {v:?}");
                        let g1 = p.generation();
                        assert!(g1 >= g0, "generation went backwards: {g0} -> {g1}");
                        assert!(
                            g0 >= last_gen[i],
                            "generation went backwards across reads: {} -> {g0}",
                            last_gen[i]
                        );
                        last_gen[i] = g1;
                        observations += 1;
                    }
                    if observations == points.len() as u64 {
                        started.fetch_add(1, Ordering::Release);
                    }
                }
                observations
            })
        })
        .collect();

    for round in 1..=ROUNDS {
        // Apply one transaction over every point. Every third round the
        // transaction fails after staging half the slots, exercising the
        // unwind while readers are mid-dispatch.
        let fail_this_round = round % 3 == 0;
        let txn = mgr.apply_transaction((0..POINTS).map(|i| {
            if fail_this_round && i == POINTS / 2 {
                Err(format!("scripted failure in round {round}"))
            } else {
                let mut p = Patch::new(format!("txn-r{round}:p{i}"));
                p.swap(&points[i], seal(round), seal(0));
                Ok(p)
            }
        }));
        match txn {
            Ok(handles) => {
                assert!(!fail_this_round);
                assert_eq!(handles.len(), POINTS);
                for (i, p) in points.iter().enumerate() {
                    assert_eq!(*p.get(), seal(round), "slot {i} after commit");
                }
                // Pull the round back out top-down, racing the readers
                // again. (Top-down keeps each pull's re-apply set empty,
                // so the generation schedule below stays exact.)
                for h in handles.iter().rev() {
                    let reapplied = mgr.revert_transaction(*h).unwrap();
                    assert!(reapplied.is_empty(), "top-down pull re-applied {reapplied:?}");
                }
            }
            Err(msg) => {
                assert!(fail_this_round, "unexpected txn failure: {msg}");
                for (i, p) in points.iter().enumerate() {
                    assert_eq!(*p.get(), seal(0), "slot {i} after unwind");
                }
            }
        }
        assert!(mgr.live().is_empty(), "round {round} leaked patches");
    }

    // Keep the patch points quiescent (baseline values) until every
    // reader has raced at least one sweep.
    while started.load(Ordering::Acquire) < READERS as u64 {
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        let seen = r.join().expect("reader panicked");
        assert!(seen > 0, "reader never observed a dispatch");
    }

    // Every applied round bumps each point twice (apply + revert); the
    // failed rounds bump the staged half twice as well (stage + unwind).
    // Exact counts are timing-free: derive them and check the final
    // generation is exactly what the schedule implies — any double
    // application or missed unwind would show up here.
    let applied_rounds = ROUNDS - ROUNDS / 3;
    let failed_rounds = ROUNDS / 3;
    for (i, p) in points.iter().enumerate() {
        let staged_in_failures = if i < POINTS / 2 { failed_rounds } else { 0 };
        let expect = 2 * applied_rounds + 2 * staged_in_failures;
        assert_eq!(
            p.generation(),
            expect,
            "point {i}: generation drifted from the apply/revert schedule"
        );
    }
}

#[test]
fn revert_transaction_mid_stack_pull_races_readers() {
    // Three patches stacked on one point, a reader racing. Pulling the
    // middle one must revert only it and re-apply the survivor above —
    // with the reader never observing a torn value mid-pull.
    let point = Arc::new(PatchPoint::new(seal(0)));
    let mgr = Arc::new(PatchManager::new());
    let mut handles = Vec::new();
    for round in 1..=3u64 {
        let mut p = Patch::new(format!("stack-{round}"));
        p.swap(&point, seal(round), seal(round - 1));
        handles.push(mgr.apply(p));
    }
    assert_eq!(*point.get(), seal(3));

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let point = Arc::clone(&point);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_gen = 0u64;
            while !stop.load(Ordering::Acquire) {
                let g = point.generation();
                assert!(sealed_ok(*point.get()));
                assert!(g >= last_gen);
                last_gen = g;
            }
        })
    };

    // Pull the middle patch: stack-3 comes off and goes back on.
    let names = mgr.revert_transaction(handles[1]).unwrap();
    assert_eq!(names, vec!["stack-3"]);
    assert_eq!(*point.get(), seal(3), "survivor re-applied on top");
    assert_eq!(mgr.live(), vec!["stack-1", "stack-3"]);

    // Pulling the (now-)top patch restores the value it captured at
    // construction — the documented restore-chain behavior.
    let names = mgr.revert_transaction(handles[2]).unwrap();
    assert!(names.is_empty());
    assert_eq!(*point.get(), seal(2));

    mgr.revert(handles[0]).unwrap();
    assert_eq!(*point.get(), seal(0));
    assert!(mgr.live().is_empty());

    stop.store(true, Ordering::Release);
    reader.join().unwrap();
}
