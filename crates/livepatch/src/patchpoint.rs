//! Atomically swappable slots with epoch-based reclamation.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Owned};

/// A hot-swappable value slot — the patchable function pointer of a lock.
///
/// Readers take a [`PatchGuard`] (an epoch pin plus a borrowed reference);
/// writers [`PatchPoint::replace`] the value, and the old one is reclaimed
/// only after all readers that might still see it have finished. The read
/// path costs one epoch pin and one atomic load — cheap enough to sit on a
/// lock's slow path, which is exactly where Concord puts it.
pub struct PatchPoint<T> {
    current: Atomic<T>,
    generation: AtomicU64,
}

impl<T> PatchPoint<T> {
    /// Creates a slot holding `initial` (generation 0).
    pub fn new(initial: T) -> Self {
        PatchPoint {
            current: Atomic::new(initial),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of times the slot has been replaced.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Pins the current value for reading.
    pub fn get(&self) -> PatchGuard<'_, T> {
        let guard = epoch::pin();
        // SAFETY: `current` is never null (constructed with a value, and
        // `replace` swaps in owned non-null values), and the returned
        // reference lives no longer than `guard`, which keeps the epoch
        // pinned so a concurrent `replace` cannot free the object.
        let value = unsafe {
            let shared = self.current.load(Ordering::Acquire, &guard);
            &*shared.as_raw()
        };
        PatchGuard {
            _guard: guard,
            value,
        }
    }

    /// Runs `f` against the current value (convenience wrapper).
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.get())
    }

    /// Atomically installs `new`; readers in flight finish on the old value.
    pub fn replace(&self, new: T) {
        let guard = epoch::pin();
        let old = self.current.swap(Owned::new(new), Ordering::AcqRel, &guard);
        self.generation.fetch_add(1, Ordering::AcqRel);
        // SAFETY: `old` was the unique owner stored in `current` and has
        // just been unlinked; no new reader can load it, and existing
        // readers are protected by the epoch, so deferred destruction is
        // sound.
        unsafe {
            guard.defer_destroy(old);
        }
    }
}

impl<T> Drop for PatchPoint<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let cur = self
            .current
            .swap(epoch::Shared::null(), Ordering::AcqRel, &guard);
        if !cur.is_null() {
            // SAFETY: the slot is being dropped, so no reader can obtain a
            // new reference; epoch deferral covers stragglers.
            unsafe {
                guard.defer_destroy(cur);
            }
        }
    }
}

impl<T: Default> Default for PatchPoint<T> {
    fn default() -> Self {
        PatchPoint::new(T::default())
    }
}

/// A pinned, dereferenceable view of a patch point's current value.
pub struct PatchGuard<'a, T> {
    _guard: epoch::Guard,
    value: &'a T,
}

impl<T> std::ops::Deref for PatchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn read_and_replace() {
        let p = PatchPoint::new(1u32);
        assert_eq!(*p.get(), 1);
        assert_eq!(p.generation(), 0);
        p.replace(2);
        assert_eq!(*p.get(), 2);
        assert_eq!(p.generation(), 1);
        assert_eq!(p.with(|v| v * 10), 20);
    }

    #[test]
    fn closure_slots_swap() {
        type F = Arc<dyn Fn(u64) -> u64 + Send + Sync>;
        let p: PatchPoint<F> = PatchPoint::new(Arc::new(|x| x + 1));
        assert_eq!(p.get()(10), 11);
        p.replace(Arc::new(|x| x * 2));
        assert_eq!(p.get()(10), 20);
    }

    #[test]
    fn guard_keeps_old_value_alive_across_replace() {
        let p = Arc::new(PatchPoint::new(String::from("old")));
        let g = p.get();
        p.replace(String::from("new"));
        // The pinned guard still sees (and can safely read) the old value.
        assert_eq!(&*g, "old");
        drop(g);
        assert_eq!(&*p.get(), "new");
    }

    #[test]
    fn concurrent_readers_never_observe_torn_state() {
        // Values are (x, 1000 - x); any torn read would break the sum.
        let p = Arc::new(PatchPoint::new((0u64, 1000u64)));
        let stop = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                // A floor of iterations guarantees overlap with the writer
                // even on a single-CPU host where scheduling is coarse.
                while stop.load(Ordering::Relaxed) == 0 || reads < 5_000 {
                    let v = p.get();
                    assert_eq!(v.0 + v.1, 1000);
                    reads += 1;
                }
                reads
            }));
        }
        for x in 0..2000 {
            p.replace((x % 1001, 1000 - x % 1001));
            if x % 64 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            assert!(h.join().unwrap() >= 5_000);
        }
        assert_eq!(p.generation(), 2000);
    }

    #[test]
    fn drop_releases_value() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let p = PatchPoint::new(Counted(Arc::clone(&drops)));
            p.replace(Counted(Arc::clone(&drops)));
            p.replace(Counted(Arc::clone(&drops)));
            drop(p);
        }
        // Epoch reclamation is deferred; force it by pinning repeatedly.
        for _ in 0..1024 {
            epoch::pin().flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3);
    }
}
