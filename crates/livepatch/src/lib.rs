//! Runtime function patching: the kernel-livepatch analog.
//!
//! Concord "uses the livepatch module to replace the annotated functions for
//! the specified locks" (*Contextual Concurrency Control*, HotOS '21, §4.1,
//! Fig. 1 step 6). This crate supplies that mechanism for the lock
//! implementations in this workspace:
//!
//! * [`PatchPoint`] — an atomically swappable function/value slot with
//!   RCU-style (epoch-based) reclamation: calls in flight keep executing the
//!   old implementation, new calls see the new one, and the old object is
//!   freed only after every reader has left its critical section. This is
//!   the per-call consistency model; kernel kpatch's per-task transition
//!   coincides with it for self-contained lock functions (DESIGN.md §7).
//! * [`Patch`] / [`PatchManager`] — multi-site patch transactions with
//!   LIFO stacking and revert, like the kernel's patch stack.
//! * [`ShadowStore`] — out-of-band per-object data, the analog of livepatch
//!   shadow variables, which the paper uses to "extend the node data
//!   structure of the queue based lock with extra information" (§4.2).
//!
//! # Examples
//!
//! ```
//! use livepatch::PatchPoint;
//! use std::sync::Arc;
//!
//! type Decision = Arc<dyn Fn(u32) -> bool + Send + Sync>;
//! let point: PatchPoint<Decision> = PatchPoint::new(Arc::new(|_| true));
//! assert!(point.get()(7));
//! point.replace(Arc::new(|x| x % 2 == 0));
//! assert!(!point.get()(7));
//! ```

mod patch;
mod patchpoint;
mod shadow;

pub use patch::{Patch, PatchError, PatchHandle, PatchManager};
pub use patchpoint::{PatchGuard, PatchPoint};
pub use shadow::ShadowStore;
