//! Shadow variables: out-of-band per-object data.
//!
//! The kernel livepatch "shadow variable" API (`klp_shadow_get_or_alloc`
//! and friends) lets a patch attach new fields to existing objects without
//! changing their layout. The paper relies on this to extend queue-lock
//! node structures with policy-specific state (§4.2). Keys are
//! `(object address, shadow id)` pairs; values are type-erased and checked
//! on access.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A store of `(object, id) → value` shadow attachments.
///
/// # Examples
///
/// ```
/// use livepatch::ShadowStore;
///
/// let store = ShadowStore::new();
/// let obj = 0x1000usize; // Any stable object identifier.
/// let v = store.get_or_alloc(obj, 1, || 42u64);
/// assert_eq!(*v, 42);
/// assert_eq!(store.get::<u64>(obj, 1).as_deref(), Some(&42));
/// store.detach(obj, 1);
/// assert!(store.get::<u64>(obj, 1).is_none());
/// ```
#[derive(Default)]
pub struct ShadowStore {
    map: RwLock<HashMap<(usize, u64), Arc<dyn Any + Send + Sync>>>,
}

impl ShadowStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ShadowStore::default()
    }

    /// Returns the shadow value for `(obj, id)`, allocating it with `init`
    /// if absent (the `klp_shadow_get_or_alloc` analog).
    ///
    /// # Panics
    ///
    /// Panics if the existing value has a different type than `T` — a
    /// patch-authoring bug, matching the kernel's WARN-and-fail.
    pub fn get_or_alloc<T: Send + Sync + 'static>(
        &self,
        obj: usize,
        id: u64,
        init: impl FnOnce() -> T,
    ) -> Arc<T> {
        if let Some(v) = self.get::<T>(obj, id) {
            return v;
        }
        let mut map = self.map.write();
        let entry = map
            .entry((obj, id))
            .or_insert_with(|| Arc::new(init()) as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("shadow ({obj:#x}, {id}) exists with another type"))
    }

    /// Returns the shadow value if present and of type `T`.
    pub fn get<T: Send + Sync + 'static>(&self, obj: usize, id: u64) -> Option<Arc<T>> {
        self.map
            .read()
            .get(&(obj, id))
            .cloned()
            .and_then(|v| v.downcast::<T>().ok())
    }

    /// Detaches the shadow value for `(obj, id)`; returns true if it
    /// existed (the `klp_shadow_free` analog).
    pub fn detach(&self, obj: usize, id: u64) -> bool {
        self.map.write().remove(&(obj, id)).is_some()
    }

    /// Detaches every object's shadow value with the given id
    /// (the `klp_shadow_free_all` analog); returns how many were removed.
    pub fn detach_all(&self, id: u64) -> usize {
        let mut map = self.map.write();
        let before = map.len();
        map.retain(|(_, i), _| *i != id);
        before - map.len()
    }

    /// Number of live attachments.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when no attachments exist.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alloc_once_then_reuse() {
        let s = ShadowStore::new();
        let mut calls = 0;
        let a = s.get_or_alloc(1, 7, || {
            calls += 1;
            String::from("x")
        });
        let b = s.get_or_alloc(1, 7, || {
            calls += 1;
            String::from("y")
        });
        assert_eq!(calls, 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn keys_are_object_and_id() {
        let s = ShadowStore::new();
        s.get_or_alloc(1, 1, || 10u32);
        s.get_or_alloc(1, 2, || 20u32);
        s.get_or_alloc(2, 1, || 30u32);
        assert_eq!(s.get::<u32>(1, 1).as_deref(), Some(&10));
        assert_eq!(s.get::<u32>(1, 2).as_deref(), Some(&20));
        assert_eq!(s.get::<u32>(2, 1).as_deref(), Some(&30));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn wrong_type_get_returns_none() {
        let s = ShadowStore::new();
        s.get_or_alloc(1, 1, || 10u32);
        assert!(s.get::<u64>(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "another type")]
    fn wrong_type_alloc_panics() {
        let s = ShadowStore::new();
        s.get_or_alloc(1, 1, || 10u32);
        s.get_or_alloc(1, 1, || 10u64);
    }

    #[test]
    fn detach_and_detach_all() {
        let s = ShadowStore::new();
        for obj in 0..4usize {
            s.get_or_alloc(obj, 1, || 0u8);
            s.get_or_alloc(obj, 2, || 0u8);
        }
        assert!(s.detach(0, 1));
        assert!(!s.detach(0, 1));
        assert_eq!(s.detach_all(2), 4);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shared_counters_are_usable_concurrently() {
        let s = Arc::new(ShadowStore::new());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let c = s.get_or_alloc(i % 8, 42, || AtomicU64::new(0));
                    c.fetch_add(1, Ordering::Relaxed);
                    let _ = t;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: u64 = (0..8)
            .map(|i| s.get::<AtomicU64>(i, 42).unwrap().load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 400);
    }
}
