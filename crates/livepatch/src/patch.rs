//! Patch transactions: grouped replacements with LIFO stacking and revert.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::patchpoint::PatchPoint;

/// Errors from the patch manager.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatchError {
    /// Attempted to revert a patch that is not on top of the stack
    /// (the kernel's livepatch stack has the same restriction).
    NotOnTop,
    /// The handle does not name a live patch.
    UnknownPatch,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::NotOnTop => write!(f, "patch is not on top of the stack"),
            PatchError::UnknownPatch => write!(f, "no such applied patch"),
        }
    }
}

impl std::error::Error for PatchError {}

struct PatchOp {
    apply: Box<dyn Fn() + Send + Sync>,
    revert: Box<dyn Fn() + Send + Sync>,
}

/// Emits a patch-transition trace record (when the plane is armed):
/// `a` = FNV-1a hash of the patch name, `b` = number of patched sites,
/// `c` = patch id, payload = name prefix. Uses [`telemetry::clock`] so a
/// DES driver can pin control-plane transitions to virtual time. The
/// metrics counters run unconditionally — patch transitions are
/// control-plane rate, never on a lock path.
fn trace_patch(kind: telemetry::EventKind, name: &str, sites: u64, id: u64) {
    let metric = if kind == telemetry::EventKind::PatchApply {
        "c3_patch_apply_total"
    } else {
        "c3_patch_revert_total"
    };
    telemetry::metrics().counter(metric).inc();
    if telemetry::armed() {
        telemetry::emit_payload(
            kind,
            telemetry::clock::now_ns(),
            0,
            telemetry::event::fnv64(name),
            sites,
            id,
            0,
            name.as_bytes(),
        );
    }
}

/// A to-be-applied patch: a named set of slot replacements.
///
/// # Examples
///
/// ```
/// use livepatch::{Patch, PatchManager, PatchPoint};
/// use std::sync::Arc;
///
/// let point = Arc::new(PatchPoint::new(10u32));
/// let mgr = PatchManager::new();
/// let mut patch = Patch::new("raise");
/// patch.swap(&point, 20, 10);
/// let h = mgr.apply(patch);
/// assert_eq!(*point.get(), 20);
/// mgr.revert(h).unwrap();
/// assert_eq!(*point.get(), 10);
/// ```
pub struct Patch {
    name: String,
    ops: Vec<PatchOp>,
}

impl Patch {
    /// Starts an empty patch.
    pub fn new(name: impl Into<String>) -> Self {
        Patch {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// The patch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of sites this patch touches.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the patch touches no sites.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Adds a replacement of `point`'s value with `new`; `restore` is
    /// installed on revert.
    pub fn swap<T: Clone + Send + Sync + 'static>(
        &mut self,
        point: &Arc<PatchPoint<T>>,
        new: T,
        restore: T,
    ) -> &mut Self {
        let p1 = Arc::clone(point);
        let p2 = Arc::clone(point);
        self.ops.push(PatchOp {
            apply: Box::new(move || p1.replace(new.clone())),
            revert: Box::new(move || p2.replace(restore.clone())),
        });
        self
    }

    /// Adds arbitrary apply/revert actions (e.g. shadow-variable setup).
    pub fn action(
        &mut self,
        apply: impl Fn() + Send + Sync + 'static,
        revert: impl Fn() + Send + Sync + 'static,
    ) -> &mut Self {
        self.ops.push(PatchOp {
            apply: Box::new(apply),
            revert: Box::new(revert),
        });
        self
    }
}

/// Handle to an applied patch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PatchHandle(u64);

struct Applied {
    id: u64,
    name: String,
    ops: Vec<PatchOp>,
}

/// Applies patches and enforces stack-ordered (LIFO) revert.
#[derive(Default)]
pub struct PatchManager {
    stack: Mutex<Vec<Applied>>,
    next_id: Mutex<u64>,
}

impl PatchManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        PatchManager::default()
    }

    /// Applies all of `patch`'s replacements, in order, and pushes it on
    /// the stack.
    pub fn apply(&self, patch: Patch) -> PatchHandle {
        for op in &patch.ops {
            (op.apply)();
        }
        let id = {
            let mut next = self.next_id.lock();
            *next += 1;
            *next
        };
        trace_patch(
            telemetry::EventKind::PatchApply,
            &patch.name,
            patch.ops.len() as u64,
            id,
        );
        self.stack.lock().push(Applied {
            id,
            name: patch.name,
            ops: patch.ops,
        });
        PatchHandle(id)
    }

    /// Applies a whole sequence of patches as one all-or-nothing
    /// transaction.
    ///
    /// Each item in `patches` is a fallible patch construction; the
    /// transaction applies each `Ok` patch in order while holding the
    /// stack lock, so no other apply/revert can interleave. On the first
    /// `Err` item every patch already applied by this transaction is
    /// unwound in reverse order (each patch's sites in reverse apply
    /// order) and the error is returned — the manager is left exactly as
    /// it was before the call. On success all patches are pushed on the
    /// stack (bottom = first item) and their handles returned.
    ///
    /// # Errors
    ///
    /// Returns the first `Err` produced by the iterator, after unwinding.
    pub fn apply_transaction<E>(
        &self,
        patches: impl IntoIterator<Item = Result<Patch, E>>,
    ) -> Result<Vec<PatchHandle>, E> {
        let mut stack = self.stack.lock();
        let mut applied: Vec<Patch> = Vec::new();
        for item in patches {
            match item {
                Ok(patch) => {
                    for op in &patch.ops {
                        (op.apply)();
                    }
                    applied.push(patch);
                }
                Err(e) => {
                    // Unwind everything this transaction applied, newest
                    // first, each patch's sites in reverse apply order.
                    for patch in applied.iter().rev() {
                        for op in patch.ops.iter().rev() {
                            (op.revert)();
                        }
                    }
                    telemetry::metrics()
                        .counter("c3_patch_txn_unwound_total")
                        .inc();
                    return Err(e);
                }
            }
        }
        let mut handles = Vec::with_capacity(applied.len());
        for patch in applied {
            let id = {
                let mut next = self.next_id.lock();
                *next += 1;
                *next
            };
            trace_patch(
                telemetry::EventKind::PatchApply,
                &patch.name,
                patch.ops.len() as u64,
                id,
            );
            stack.push(Applied {
                id,
                name: patch.name,
                ops: patch.ops,
            });
            handles.push(PatchHandle(id));
        }
        Ok(handles)
    }

    /// Handle of the topmost live patch with this exact name, if any.
    /// Patch names are not forced unique; the topmost match is the one a
    /// LIFO revert would reach first.
    pub fn find(&self, name: &str) -> Option<PatchHandle> {
        self.stack
            .lock()
            .iter()
            .rev()
            .find(|p| p.name == name)
            .map(|p| PatchHandle(p.id))
    }

    /// Names of live patches whose name starts with `prefix`, bottom to
    /// top. Used by rollout recovery to probe which generation-tagged
    /// wave patches survived a crash.
    pub fn live_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.stack
            .lock()
            .iter()
            .filter(|p| p.name.starts_with(prefix))
            .map(|p| p.name.clone())
            .collect()
    }

    /// Reverts the patch named by `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::NotOnTop`] when other patches were applied on
    /// top of it, and [`PatchError::UnknownPatch`] when it is not live.
    pub fn revert(&self, handle: PatchHandle) -> Result<(), PatchError> {
        let mut stack = self.stack.lock();
        match stack.last() {
            Some(top) if top.id == handle.0 => {
                let applied = stack.pop().expect("checked non-empty");
                drop(stack);
                // Revert sites in reverse apply order.
                for op in applied.ops.iter().rev() {
                    (op.revert)();
                }
                trace_patch(
                    telemetry::EventKind::PatchRevert,
                    &applied.name,
                    applied.ops.len() as u64,
                    applied.id,
                );
                Ok(())
            }
            _ => {
                if stack.iter().any(|p| p.id == handle.0) {
                    Err(PatchError::NotOnTop)
                } else {
                    Err(PatchError::UnknownPatch)
                }
            }
        }
    }

    /// Reverts `handle` even when it is buried mid-stack, as a
    /// transaction: every patch stacked above it is reverted (top-down),
    /// the target is reverted, and the others are re-applied in their
    /// original order. Returns the names of the re-applied patches.
    ///
    /// This is the quarantine primitive: a faulting policy can be pulled
    /// without forcing unrelated patches (profilers, other tenants) off
    /// the lock. Note that a patch re-applied above the target keeps the
    /// restore values it captured at construction — if its restore chain
    /// referenced the quarantined patch's state, a later revert of *that*
    /// patch restores the pre-quarantine value (see DESIGN.md).
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::UnknownPatch`] when `handle` is not live.
    pub fn revert_transaction(&self, handle: PatchHandle) -> Result<Vec<String>, PatchError> {
        let mut stack = self.stack.lock();
        let pos = stack
            .iter()
            .position(|p| p.id == handle.0)
            .ok_or(PatchError::UnknownPatch)?;
        // Detach the target and everything above it while holding the
        // lock, so no patch can interleave mid-transaction.
        let mut tail: Vec<Applied> = stack.drain(pos..).collect();
        let target = tail.remove(0);
        // Unwind top-down: the patches above the target first, each
        // reverting its sites in reverse apply order.
        for patch in tail.iter().rev() {
            for op in patch.ops.iter().rev() {
                (op.revert)();
            }
        }
        for op in target.ops.iter().rev() {
            (op.revert)();
        }
        trace_patch(
            telemetry::EventKind::PatchRevert,
            &target.name,
            target.ops.len() as u64,
            target.id,
        );
        // Re-apply the survivors in their original order, keeping their
        // ids so existing handles stay valid.
        let mut names = Vec::with_capacity(tail.len());
        for patch in tail {
            for op in &patch.ops {
                (op.apply)();
            }
            names.push(patch.name.clone());
            stack.push(patch);
        }
        Ok(names)
    }

    /// Reverts the top patch, if any; returns its name.
    pub fn revert_top(&self) -> Option<String> {
        let handle = {
            let stack = self.stack.lock();
            stack.last().map(|p| (PatchHandle(p.id), p.name.clone()))
        };
        let (h, name) = handle?;
        self.revert(h).expect("top patch revert cannot fail");
        Some(name)
    }

    /// Names of live patches, bottom to top.
    pub fn live(&self) -> Vec<String> {
        self.stack.lock().iter().map(|p| p.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_revert_roundtrip() {
        let a = Arc::new(PatchPoint::new(1u32));
        let b = Arc::new(PatchPoint::new(10u32));
        let mgr = PatchManager::new();
        let mut p = Patch::new("both");
        p.swap(&a, 2, 1).swap(&b, 20, 10);
        assert_eq!(p.len(), 2);
        let h = mgr.apply(p);
        assert_eq!(*a.get(), 2);
        assert_eq!(*b.get(), 20);
        assert_eq!(mgr.live(), vec!["both"]);
        mgr.revert(h).unwrap();
        assert_eq!(*a.get(), 1);
        assert_eq!(*b.get(), 10);
        assert!(mgr.live().is_empty());
    }

    #[test]
    fn lifo_discipline_enforced() {
        let x = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        let mut p1 = Patch::new("p1");
        p1.swap(&x, 1, 0);
        let mut p2 = Patch::new("p2");
        p2.swap(&x, 2, 1);
        let h1 = mgr.apply(p1);
        let h2 = mgr.apply(p2);
        assert_eq!(*x.get(), 2);
        assert_eq!(mgr.revert(h1), Err(PatchError::NotOnTop));
        mgr.revert(h2).unwrap();
        mgr.revert(h1).unwrap();
        assert_eq!(*x.get(), 0);
        assert_eq!(mgr.revert(h1), Err(PatchError::UnknownPatch));
    }

    #[test]
    fn revert_top_pops_in_order() {
        let x = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        for i in 1..=3u32 {
            let mut p = Patch::new(format!("p{i}"));
            p.swap(&x, i, i - 1);
            mgr.apply(p);
        }
        assert_eq!(*x.get(), 3);
        assert_eq!(mgr.revert_top().as_deref(), Some("p3"));
        assert_eq!(mgr.revert_top().as_deref(), Some("p2"));
        assert_eq!(*x.get(), 1);
        assert_eq!(mgr.revert_top().as_deref(), Some("p1"));
        assert_eq!(mgr.revert_top(), None);
    }

    #[test]
    fn revert_transaction_pulls_mid_stack_patch() {
        // Three patches on distinct points: the transaction must revert
        // only the middle one while the others keep their values.
        let a = Arc::new(PatchPoint::new(0u32));
        let b = Arc::new(PatchPoint::new(0u32));
        let c = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        let mut p1 = Patch::new("p1");
        p1.swap(&a, 1, 0);
        let mut p2 = Patch::new("p2");
        p2.swap(&b, 2, 0);
        let mut p3 = Patch::new("p3");
        p3.swap(&c, 3, 0);
        let _h1 = mgr.apply(p1);
        let h2 = mgr.apply(p2);
        let h3 = mgr.apply(p3);
        let reapplied = mgr.revert_transaction(h2).unwrap();
        assert_eq!(reapplied, vec!["p3"]);
        assert_eq!(*a.get(), 1);
        assert_eq!(*b.get(), 0, "target patch reverted");
        assert_eq!(*c.get(), 3, "patch above re-applied");
        assert_eq!(mgr.live(), vec!["p1", "p3"]);
        // Handles above the target survive the transaction.
        mgr.revert(h3).unwrap();
        assert_eq!(*c.get(), 0);
        assert_eq!(
            mgr.revert_transaction(h2),
            Err(PatchError::UnknownPatch),
            "already gone"
        );
    }

    #[test]
    fn revert_transaction_on_top_is_plain_revert() {
        let x = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        let mut p = Patch::new("only");
        p.swap(&x, 5, 0);
        let h = mgr.apply(p);
        assert_eq!(mgr.revert_transaction(h).unwrap(), Vec::<String>::new());
        assert_eq!(*x.get(), 0);
        assert!(mgr.live().is_empty());
    }

    #[test]
    fn custom_actions_run_in_both_directions() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counter = Arc::new(AtomicU32::new(0));
        let (c1, c2) = (Arc::clone(&counter), Arc::clone(&counter));
        let mgr = PatchManager::new();
        let mut p = Patch::new("acts");
        p.action(
            move || {
                c1.fetch_add(1, Ordering::SeqCst);
            },
            move || {
                c2.fetch_add(100, Ordering::SeqCst);
            },
        );
        let h = mgr.apply(p);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        mgr.revert(h).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 101);
    }

    #[test]
    fn apply_transaction_all_ok_stacks_in_order() {
        let a = Arc::new(PatchPoint::new(0u32));
        let b = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        let mut p1 = Patch::new("t1");
        p1.swap(&a, 1, 0);
        let mut p2 = Patch::new("t2");
        p2.swap(&b, 2, 0);
        let handles = mgr
            .apply_transaction::<()>(vec![Ok(p1), Ok(p2)])
            .unwrap();
        assert_eq!(handles.len(), 2);
        assert_eq!(*a.get(), 1);
        assert_eq!(*b.get(), 2);
        assert_eq!(mgr.live(), vec!["t1", "t2"]);
        // LIFO discipline holds across the transaction boundary.
        assert_eq!(mgr.revert(handles[0]), Err(PatchError::NotOnTop));
        mgr.revert(handles[1]).unwrap();
        mgr.revert(handles[0]).unwrap();
        assert_eq!(*a.get(), 0);
        assert_eq!(*b.get(), 0);
    }

    #[test]
    fn apply_transaction_unwinds_on_error() {
        let a = Arc::new(PatchPoint::new(0u32));
        let b = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        // A pre-existing patch must be untouched by the failed txn.
        let mut pre = Patch::new("pre");
        pre.swap(&a, 7, 0);
        let pre_h = mgr.apply(pre);

        let mut p1 = Patch::new("t1");
        p1.swap(&a, 1, 7);
        let mut p2 = Patch::new("t2");
        p2.swap(&b, 2, 0);
        let err = mgr
            .apply_transaction(vec![Ok(p1), Ok(p2), Err("boom")])
            .unwrap_err();
        assert_eq!(err, "boom");
        assert_eq!(*a.get(), 7, "t1 unwound back to pre-txn value");
        assert_eq!(*b.get(), 0, "t2 unwound");
        assert_eq!(mgr.live(), vec!["pre"], "stack unchanged by failed txn");
        mgr.revert(pre_h).unwrap();
        assert_eq!(*a.get(), 0);
    }

    #[test]
    fn apply_transaction_error_first_is_noop() {
        let mgr = PatchManager::new();
        let err = mgr
            .apply_transaction::<&str>(vec![Err("early")])
            .unwrap_err();
        assert_eq!(err, "early");
        assert!(mgr.live().is_empty());
    }

    #[test]
    fn apply_transaction_empty_is_fine() {
        let mgr = PatchManager::new();
        let handles = mgr.apply_transaction::<()>(Vec::new()).unwrap();
        assert!(handles.is_empty());
    }

    #[test]
    fn find_and_prefix_scan() {
        let x = Arc::new(PatchPoint::new(0u32));
        let mgr = PatchManager::new();
        assert_eq!(mgr.find("rollout-g1:a"), None);
        let mut p1 = Patch::new("rollout-g1:a");
        p1.swap(&x, 1, 0);
        let mut p2 = Patch::new("rollout-g1:b");
        p2.swap(&x, 2, 1);
        let mut p3 = Patch::new("other");
        p3.swap(&x, 3, 2);
        let h1 = mgr.apply(p1);
        let _h2 = mgr.apply(p2);
        let _h3 = mgr.apply(p3);
        assert_eq!(mgr.find("rollout-g1:a"), Some(h1));
        assert_eq!(
            mgr.live_with_prefix("rollout-g1:"),
            vec!["rollout-g1:a", "rollout-g1:b"]
        );
        assert!(mgr.live_with_prefix("rollout-g2:").is_empty());
    }

    #[test]
    fn empty_patch_is_fine() {
        let mgr = PatchManager::new();
        let p = Patch::new("empty");
        assert!(p.is_empty());
        let h = mgr.apply(p);
        mgr.revert(h).unwrap();
    }
}
