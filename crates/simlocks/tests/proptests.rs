//! Property tests for the simulated lock algorithms: mutual exclusion,
//! progress, node hygiene and fairness bounds under arbitrary workload
//! shapes and adversarial policies.

use std::cell::Cell;
use std::rc::Rc;

use ksim::{CpuId, SimBuilder};
use locks::hooks::{CmpNodeCtx, SkipShuffleCtx};
use proptest::prelude::*;
use simlocks::policy::{Decision, SimPolicy};
use simlocks::{SimBravo, SimMcsLock, SimShflLock};

/// A policy whose decisions are a pure function of a random seed — covers
/// the whole decision space including pathological ones.
struct SeededPolicy(u64);

impl SimPolicy for SeededPolicy {
    fn cmp_node(&self, c: &CmpNodeCtx) -> Decision {
        let h = self
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(c.curr.tid ^ c.shuffler.tid.rotate_left(17));
        (h & 3 == 0, h % 20)
    }

    fn skip_shuffle(&self, c: &SkipShuffleCtx) -> Decision {
        let h = self.0 ^ c.shuffler.tid;
        (h & 7 == 0, h % 11)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ShflLock under an arbitrary policy: no lost counts, no overlap, no
    /// leaked nodes, no stuck tasks — for any task count, placement and
    /// critical-section shape.
    #[test]
    fn shfl_safety_under_arbitrary_policies(
        tasks in 2usize..28,
        iters in 1u64..40,
        cs in 20u64..2_000,
        policy_seed in any::<u64>(),
        sim_seed in any::<u64>(),
        cpus in proptest::collection::vec(0u32..80, 28),
    ) {
        let sim = SimBuilder::new().seed(sim_seed).build();
        let lock = Rc::new(SimShflLock::new(&sim));
        lock.set_policy(Rc::new(SeededPolicy(policy_seed)));
        let counter = Rc::new(Cell::new(0u64));
        let inside = Rc::new(Cell::new(false));
        for &cpu in cpus.iter().take(tasks) {
            let (l, c, ins) = (Rc::clone(&lock), Rc::clone(&counter), Rc::clone(&inside));
            sim.spawn_on(CpuId(cpu), move |t| async move {
                for _ in 0..iters {
                    l.acquire_with(&t, (t.rng_u64() % 7) as i64 - 3, t.rng_u64() % 1000)
                        .await;
                    assert!(!ins.replace(true), "mutual exclusion violated");
                    t.advance(cs).await;
                    c.set(c.get() + 1);
                    ins.set(false);
                    l.release(&t).await;
                    t.advance(t.rng_u64() % 500).await;
                }
            });
        }
        let stats = sim.run();
        prop_assert_eq!(counter.get(), tasks as u64 * iters);
        prop_assert!(stats.stuck_tasks.is_empty(), "stuck: {:?}", stats.stuck_tasks);
        prop_assert_eq!(lock.live_nodes(), 0, "leaked queue nodes");
    }

    /// Fairness bound: with the NUMA policy and the MAX_BATCH guard, no
    /// task starves — per-task op counts stay within a factor of the mean.
    #[test]
    fn shfl_no_starvation_with_numa_policy(
        sim_seed in any::<u64>(),
    ) {
        let sim = SimBuilder::new().seed(sim_seed).build();
        let lock = Rc::new(SimShflLock::new(&sim));
        lock.set_policy(Rc::new(simlocks::NativePolicy::numa_aware()));
        let n = 24usize;
        let per_task = Rc::new(std::cell::RefCell::new(vec![0u64; n]));
        for (i, cpu) in sim.topology().compact_placement(n).into_iter().enumerate() {
            let (l, pt) = (Rc::clone(&lock), Rc::clone(&per_task));
            sim.spawn_on(cpu, move |t| async move {
                while t.now() < 1_500_000 {
                    l.acquire(&t).await;
                    t.advance(300).await;
                    l.release(&t).await;
                    pt.borrow_mut()[i] += 1;
                    t.advance(100 + t.rng_u64() % 400).await;
                }
            });
        }
        let stats = sim.run();
        prop_assert!(stats.stuck_tasks.is_empty());
        let pt = per_task.borrow();
        let min = *pt.iter().min().unwrap();
        let max = *pt.iter().max().unwrap();
        prop_assert!(min > 0, "a task starved completely");
        prop_assert!(
            max <= min.saturating_mul(4) + 8,
            "starvation beyond the fairness bound: {min}..{max}"
        );
    }

    /// MCS under arbitrary shapes: counts, nodes, progress.
    #[test]
    fn mcs_safety(
        tasks in 2usize..24,
        iters in 1u64..50,
        sim_seed in any::<u64>(),
        cpus in proptest::collection::vec(0u32..80, 24),
    ) {
        let sim = SimBuilder::new().seed(sim_seed).build();
        let lock = Rc::new(SimMcsLock::new(&sim));
        let counter = Rc::new(Cell::new(0u64));
        for &cpu in cpus.iter().take(tasks) {
            let (l, c) = (Rc::clone(&lock), Rc::clone(&counter));
            sim.spawn_on(CpuId(cpu), move |t| async move {
                for _ in 0..iters {
                    l.acquire(&t).await;
                    c.set(c.get() + 1);
                    t.advance(t.rng_u64() % 300).await;
                    l.release(&t).await;
                }
            });
        }
        let stats = sim.run();
        prop_assert_eq!(counter.get(), tasks as u64 * iters);
        prop_assert!(stats.stuck_tasks.is_empty());
    }

    /// BRAVO: readers never observe a torn write under arbitrary
    /// read/write mixes; all tasks finish.
    #[test]
    fn bravo_consistency(
        readers in 1usize..20,
        writers in 1usize..4,
        iters in 1u64..40,
        sim_seed in any::<u64>(),
    ) {
        let sim = SimBuilder::new().seed(sim_seed).build();
        let lock = Rc::new(SimBravo::new(&sim));
        let pair = Rc::new(Cell::new((0u64, 0u64)));
        for i in 0..writers {
            let (l, p) = (Rc::clone(&lock), Rc::clone(&pair));
            sim.spawn_on(CpuId((i as u32 * 13) % 80), move |t| async move {
                for _ in 0..iters {
                    l.write_acquire(&t).await;
                    let (a, b) = p.get();
                    p.set((a + 1, b));
                    t.advance(200).await;
                    let (a, b) = p.get();
                    p.set((a, b + 1));
                    l.write_release(&t).await;
                    t.advance(t.rng_u64() % 700).await;
                }
            });
        }
        for i in 0..readers {
            let (l, p) = (Rc::clone(&lock), Rc::clone(&pair));
            sim.spawn_on(CpuId((i as u32 * 7 + 1) % 80), move |t| async move {
                for _ in 0..iters {
                    l.read_acquire(&t).await;
                    let (a, b) = p.get();
                    assert_eq!(a, b, "torn read");
                    t.advance(100).await;
                    let (a2, b2) = p.get();
                    assert_eq!(a2, b2, "writer entered during read");
                    l.read_release(&t).await;
                    t.advance(t.rng_u64() % 400).await;
                }
            });
        }
        let stats = sim.run();
        prop_assert!(stats.stuck_tasks.is_empty(), "stuck: {:?}", stats.stuck_tasks);
        prop_assert_eq!(pair.get().0, writers as u64 * iters);
    }
}
