//! Queue-node arena for simulated queue locks.
//!
//! Nodes are indexed (index 0 is the null sentinel) and recycled through a
//! free list. Each node's `next` and `status` words live on their own
//! simulated cache lines, so spinning on one's own node is local while
//! linking a successor transfers exactly one line — the property that makes
//! queue locks scale.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ksim::{Sim, SimWord, TaskCtx};
use locks::hooks::NodeView;

/// Node status: still waiting.
pub const WAITING: u64 = 0;
/// Node status: granted queue headship.
pub const GRANTED: u64 = 1;
/// Node status: parked (blocking variants).
#[allow(dead_code)]
pub const PARKED: u64 = 2;

/// One queue node.
pub struct QNode {
    /// Index of the successor node (0 = none).
    pub next: SimWord,
    /// Wait/grant word the owner spins on.
    pub status: SimWord,
    /// Waiter metadata exposed to policies.
    pub view: Cell<NodeView>,
    /// Owning task (for park/unpark), as a raw id.
    pub task: Cell<Option<ksim::TaskId>>,
}

/// Arena of recyclable queue nodes for one lock.
pub struct NodeArena {
    sim: Sim,
    nodes: RefCell<Vec<Rc<QNode>>>,
    free: RefCell<Vec<u32>>,
}

fn empty_view() -> NodeView {
    NodeView {
        tid: 0,
        cpu: 0,
        socket: 0,
        prio: 0,
        cs_hint: 0,
        held_locks: 0,
        wait_start_ns: 0,
    }
}

impl NodeArena {
    /// Creates an arena bound to `sim`; slot 0 is reserved as null.
    pub fn new(sim: &Sim) -> Self {
        let sentinel = Rc::new(QNode {
            next: SimWord::new(sim, 0),
            status: SimWord::new(sim, 0),
            view: Cell::new(empty_view()),
            task: Cell::new(None),
        });
        NodeArena {
            sim: sim.clone(),
            nodes: RefCell::new(vec![sentinel]),
            free: RefCell::new(Vec::new()),
        }
    }

    /// Allocates (or recycles) a node initialized for `t`; returns its
    /// index.
    pub fn alloc(&self, t: &TaskCtx) -> u32 {
        let idx = match self.free.borrow_mut().pop() {
            Some(i) => i,
            None => {
                let mut nodes = self.nodes.borrow_mut();
                nodes.push(Rc::new(QNode {
                    next: SimWord::new(&self.sim, 0),
                    status: SimWord::new(&self.sim, 0),
                    view: Cell::new(empty_view()),
                    task: Cell::new(None),
                }));
                (nodes.len() - 1) as u32
            }
        };
        let node = self.get(idx);
        // Initialization is uncharged (node setup is off the coherence
        // critical path and cheap relative to the transfers we model).
        node.next.poke(0);
        node.status.poke(WAITING);
        node.task.set(Some(t.id()));
        node.view.set(NodeView {
            tid: u64::from(t.id().0) + 1,
            cpu: t.cpu().0,
            socket: t.socket().0,
            prio: 0,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: t.now(),
        });
        idx
    }

    /// Returns a node by index.
    ///
    /// # Panics
    ///
    /// Panics on index 0 (null) or an out-of-range index.
    pub fn get(&self, idx: u32) -> Rc<QNode> {
        assert_ne!(idx, 0, "dereference of null node index");
        Rc::clone(&self.nodes.borrow()[idx as usize])
    }

    /// Recycles a node.
    pub fn release(&self, idx: u32) {
        debug_assert_ne!(idx, 0);
        self.free.borrow_mut().push(idx);
    }

    /// Live (allocated, not free) node count — for leak assertions.
    pub fn live(&self) -> usize {
        self.nodes.borrow().len() - 1 - self.free.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};

    #[test]
    fn alloc_recycle_roundtrip() {
        let sim = SimBuilder::new().build();
        let arena = Rc::new(NodeArena::new(&sim));
        let a2 = Rc::clone(&arena);
        sim.spawn_on(CpuId(3), move |t| async move {
            let i = a2.alloc(&t);
            assert_ne!(i, 0);
            assert_eq!(a2.live(), 1);
            let n = a2.get(i);
            assert_eq!(n.view.get().cpu, 3);
            assert_eq!(n.status.peek(), WAITING);
            a2.release(i);
            assert_eq!(a2.live(), 0);
            let j = a2.alloc(&t);
            assert_eq!(i, j, "free list should recycle");
            a2.release(j);
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "null node")]
    fn null_deref_panics() {
        let sim = SimBuilder::new().build();
        let arena = NodeArena::new(&sim);
        arena.get(0);
    }
}
