//! Simulated shuffle lock (ShflLock) with pluggable policies.
//!
//! The simulation counterpart of `locks::ShflLock`: TAS word + MCS-style
//! queue, with the queue head running policy-driven shuffle phases while it
//! waits for the lock word. Policy decisions charge their evaluation cost
//! to virtual time, so "Concord-ShflLock" (bytecode policy) is
//! distinguishable from "ShflLock" (compiled-in policy) in the figures for
//! exactly the reason it is in the paper.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use ksim::{SchedSite, Sim, SimWord, TaskCtx};
use locks::hooks::{CmpNodeCtx, HookKind, LockEventCtx, SkipShuffleCtx};

use crate::arena::{NodeArena, GRANTED, WAITING};

/// Node status: delegated shuffler role (the SOSP '19 design hands the
/// shuffler role to the last batched waiter, which keeps grouping the
/// queue *while it waits* — truly off the critical path).
const SHUFFLER: u64 = 3;

/// How long a delegated shuffler rests between phases (virtual ns).
const SHUFFLE_REST_NS: u64 = 1_500;
use crate::policy::{FifoPolicy, SimPolicy};

/// Bound on shuffle phases per acquisition (starvation guard, §4.2).
pub const MAX_SHUFFLE_ROUNDS: u32 = 8;

/// Bound on nodes examined per shuffle phase.
pub const MAX_SHUFFLE_SCAN: usize = 64;

/// Consecutive same-socket handoffs before shuffling is suspended — the
/// runtime fairness invariant of §4.2 ("statically bounding the number of
/// shuffling rounds minimizes starvation").
pub const MAX_BATCH: u32 = 32;

/// The simulated shuffle lock.
pub struct SimShflLock {
    locked: SimWord,
    tail: SimWord,
    arena: NodeArena,
    policy: RefCell<Rc<dyn SimPolicy>>,
    policy_gen: Cell<u64>,
    id: u64,
    shuffles: Cell<u64>,
    moves: Cell<u64>,
    scanned: Cell<u64>,
    last_socket: Cell<u32>,
    streak: Cell<u32>,
    /// Tid of the current holder (0 = unlocked); set by the winner of the
    /// lock word, cleared on release, so event contexts name the blocker.
    owner: Cell<u64>,
    max_batch: Cell<u32>,
    /// Node currently holding the delegated shuffler role (0 = none); the
    /// queue head must not shuffle concurrently (unique-shuffler rule).
    delegate: Cell<u32>,
}

impl SimShflLock {
    /// Creates an unlocked FIFO instance (no policy attached).
    pub fn new(sim: &Sim) -> Self {
        // `locked` and `tail` live on separate lines: waiters spin on (and
        // the holder writes) `locked`, while enqueuers RMW `tail`; packing
        // them would let every enqueue invalidate the spin target.
        SimShflLock {
            locked: SimWord::new(sim, 0),
            tail: SimWord::new(sim, 0),
            arena: NodeArena::new(sim),
            policy: RefCell::new(Rc::new(FifoPolicy::new())),
            policy_gen: Cell::new(0),
            id: sim.alloc_id(),
            shuffles: Cell::new(0),
            moves: Cell::new(0),
            scanned: Cell::new(0),
            last_socket: Cell::new(u32::MAX),
            streak: Cell::new(0),
            owner: Cell::new(0),
            max_batch: Cell::new(MAX_BATCH),
            delegate: Cell::new(0),
        }
    }

    /// Stable identity of this lock instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Installs a policy (Concord's simulated livepatch step).
    pub fn set_policy(&self, p: Rc<dyn SimPolicy>) {
        *self.policy.borrow_mut() = p;
        self.policy_gen.set(self.policy_gen.get() + 1);
    }

    /// The current policy.
    pub fn policy(&self) -> Rc<dyn SimPolicy> {
        Rc::clone(&self.policy.borrow())
    }

    /// Monotonic count of policy swaps — the sim analog of a patchpoint
    /// generation. Rollout tests use it to prove an aborted rollout put
    /// the lock through apply+revert (gen +2) rather than leaving the
    /// wave's policy live.
    pub fn policy_generation(&self) -> u64 {
        self.policy_gen.get()
    }

    /// Completed shuffle phases (statistics).
    pub fn shuffle_count(&self) -> u64 {
        self.shuffles.get()
    }

    /// Nodes moved by shuffling (statistics).
    pub fn move_count(&self) -> u64 {
        self.moves.get()
    }

    /// Nodes examined by shuffling (statistics).
    pub fn scan_count(&self) -> u64 {
        self.scanned.get()
    }

    /// Overrides the fairness bound on consecutive same-socket handoffs
    /// (default `MAX_BATCH` = 32); ablation knob for the throughput-vs-
    /// fairness trade-off the §4.2 safety rule embodies.
    pub fn set_max_batch(&self, n: u32) {
        self.max_batch.set(n.max(1));
    }

    fn event_ctx(&self, t: &TaskCtx) -> LockEventCtx {
        LockEventCtx {
            lock_id: self.id,
            tid: u64::from(t.id().0) + 1,
            cpu: t.cpu().0,
            socket: t.socket().0,
            now_ns: t.now(),
            owner_tid: self.owner.get(),
        }
    }

    async fn fire(&self, t: &TaskCtx, kind: HookKind) {
        t.sched_point(SchedSite::HookDispatch, self.id).await;
        if telemetry::armed() {
            // Virtual-time clock domain: the record carries `t.now()`, so a
            // DES replay is bit-identical. Tracing charges no virtual time —
            // figure CSVs stay byte-identical whether armed or not.
            let ctx = self.event_ctx(t);
            telemetry::emit(
                kind.event_kind(),
                ctx.now_ns,
                ctx.cpu as u16,
                ctx.lock_id,
                ctx.tid,
                u64::from(ctx.socket),
                ctx.owner_tid,
            );
        }
        let policy = self.policy();
        if policy.wants_event(kind) {
            let cost = policy.on_event(kind, &self.event_ctx(t));
            if cost > 0 {
                t.advance(cost).await;
            }
        }
    }

    /// Acquires the lock (task priority / CS hint default to zero).
    pub async fn acquire(&self, t: &TaskCtx) {
        self.acquire_with(t, 0, 0).await;
    }

    /// Acquires the lock, exposing scheduling context to policies —
    /// the C3 act of "providing more context to the kernel" (§3).
    pub async fn acquire_with(&self, t: &TaskCtx, prio: i64, cs_hint: u64) {
        self.acquire_ctx(t, prio, cs_hint, 0).await;
    }

    /// Like [`SimShflLock::acquire_with`], additionally declaring how many
    /// locks the task already holds (the lock-inheritance context of
    /// §3.1.1).
    pub async fn acquire_ctx(&self, t: &TaskCtx, prio: i64, cs_hint: u64, held_locks: u32) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        self.fire(t, HookKind::LockAcquire).await;
        // Fast path, only when the queue is empty (qspinlock discipline:
        // unbounded stealing would starve the queue head).
        if self.tail.load(t).await == 0 && self.locked.compare_exchange(t, 0, 1).await.is_ok() {
            self.note_acquired(t);
            self.fire(t, HookKind::LockAcquired).await;
            return;
        }
        t.sched_point(SchedSite::Contended, self.id).await;
        self.fire(t, HookKind::LockContended).await;

        let idx = self.arena.alloc(t);
        let node = self.arena.get(idx);
        let mut view = node.view.get();
        view.prio = prio;
        view.cs_hint = cs_hint;
        view.held_locks = held_locks;
        node.view.set(view);

        let prev = self.tail.swap(t, u64::from(idx)).await;
        if prev != 0 {
            let pnode = self.arena.get(prev as u32);
            pnode.next.store(t, u64::from(idx)).await;
            // If no shuffler is active, claim the role: an arriving waiter
            // sits at the tail with the whole queue drain ahead of it —
            // maximal off-critical-path time to group its socket's future
            // arrivals behind itself (the SOSP '19 shuffler discipline).
            let mut claimed = false;
            if self.delegate.get() == 0 && !self.batch_exhausted(t.socket().0) {
                // Claim before the (suspending) policy consult: the role
                // must be single-owner, and an await between check and set
                // would let two arrivals both claim it.
                self.delegate.set(idx);
                claimed = true;
                let policy = self.policy();
                let (skip, cost) = policy.skip_shuffle(&SkipShuffleCtx {
                    lock_id: self.id,
                    shuffler: node.view.get(),
                });
                if telemetry::armed() {
                    telemetry::emit(
                        telemetry::EventKind::SkipShuffle,
                        t.now(),
                        t.cpu().0 as u16,
                        self.id,
                        node.view.get().tid,
                        0,
                        u64::from(skip),
                    );
                }
                if cost > 0 {
                    t.advance(cost).await;
                }
                if skip {
                    claimed = false;
                    if self.delegate.get() == idx {
                        self.delegate.set(0);
                    }
                }
            }
            if claimed {
                self.run_delegate(t, idx).await;
            } else {
                let st = node.status.wait_while(t, |s| s == WAITING).await;
                if st != GRANTED {
                    debug_assert_eq!(st, SHUFFLER);
                    self.run_delegate(t, idx).await;
                }
            }
        }

        // Queue head: spin for the word. The head never walks the queue —
        // that would put the walk on the critical path; shuffling is done
        // by a waiter deeper in the queue (see the claim above).
        loop {
            if self.locked.compare_exchange(t, 0, 1).await.is_ok() {
                // Own the word from this instant: events fired by other
                // tasks during our dequeue below must already name us.
                self.owner.set(u64::from(t.id().0) + 1);
                break;
            }
            self.locked.wait_while(t, |v| v == 1).await;
        }

        // Dequeue ourselves, promote the successor.
        let mut next = node.next.load(t).await;
        if next == 0
            && self
                .tail
                .compare_exchange(t, u64::from(idx), 0)
                .await
                .is_err()
        {
            next = node.next.wait_while(t, |n| n == 0).await;
        }
        if next != 0 {
            // Granting headship to the delegate returns the shuffler role
            // to the head position.
            if self.delegate.get() == next as u32 {
                self.delegate.set(0);
            }
            self.arena.get(next as u32).status.store(t, GRANTED).await;
        }
        self.arena.release(idx);
        self.note_acquired(t);
        t.sched_point(SchedSite::Acquired, self.id).await;
        self.fire(t, HookKind::LockAcquired).await;
    }

    /// Tracks consecutive same-socket handoffs for the fairness bound and
    /// records the new holder's identity.
    fn note_acquired(&self, t: &TaskCtx) {
        self.owner.set(u64::from(t.id().0) + 1);
        let s = t.socket().0;
        if self.last_socket.replace(s) == s {
            self.streak.set(self.streak.get() + 1);
        } else {
            self.streak.set(0);
        }
    }

    /// True while the current socket has monopolized the lock long enough
    /// that further shuffling in its favor must pause (starvation guard).
    fn batch_exhausted(&self, socket: u32) -> bool {
        self.last_socket.get() == socket && self.streak.get() >= self.max_batch.get()
    }

    /// Runs the delegated-shuffler role: group the queue behind us (for
    /// our own socket) while we wait for headship. Returns once granted.
    async fn run_delegate(&self, t: &TaskCtx, idx: u32) {
        let node = self.arena.get(idx);
        let mut rounds = 0u32;
        loop {
            if node.status.peek() == GRANTED {
                break;
            }
            if rounds < MAX_SHUFFLE_ROUNDS && !self.batch_exhausted(node.view.get().socket) {
                rounds += 1;
                let anchor = self.shuffle(t, idx).await;
                if anchor != idx && node.status.peek() != GRANTED {
                    // Pass the role to the last batched waiter (deeper in
                    // the queue, with more waiting time to keep grouping)
                    // and fall back to plain waiting.
                    self.delegate.set(anchor);
                    self.arena.get(anchor).status.store(t, SHUFFLER).await;
                    node.status.wait_while(t, |s| s != GRANTED).await;
                    break;
                }
            } else if rounds >= MAX_SHUFFLE_ROUNDS {
                // Shuffle budget exhausted (starvation guard): drop the
                // role; a future queue head will re-seed it.
                if self.delegate.get() == idx {
                    self.delegate.set(0);
                }
                node.status.wait_while(t, |s| s != GRANTED).await;
                break;
            }
            // Rest, re-shuffling as new waiters enqueue.
            let r = node
                .status
                .wait_while_deadline(t, |s| s != GRANTED, t.now() + SHUFFLE_REST_NS)
                .await;
            if r.is_ok() {
                break;
            }
        }
        // Leaving the delegate role as the new queue head (the promoter
        // normally clears this; repeat for the self-observed paths).
        if self.delegate.get() == idx {
            self.delegate.set(0);
        }
    }

    /// Releases the lock.
    pub async fn release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        self.fire(t, HookKind::LockRelease).await;
        debug_assert_eq!(self.locked.peek(), 1, "release of unheld SimShflLock");
        // The release event above still carried our identity; clear it only
        // if no successor has already re-set it by the time the store lands.
        let me = u64::from(t.id().0) + 1;
        self.locked.store(t, 0).await;
        if self.owner.get() == me {
            self.owner.set(0);
        }
    }

    /// Attempts the fast path only.
    pub async fn try_acquire(&self, t: &TaskCtx) -> bool {
        let ok = self.locked.compare_exchange(t, 0, 1).await.is_ok();
        if ok {
            self.owner.set(u64::from(t.id().0) + 1);
        }
        ok
    }

    /// One shuffle phase starting at `head_idx` (the shuffler's own node);
    /// returns the final anchor (last node of the batched prefix). The
    /// phase aborts as soon as the shuffler is granted headship.
    async fn shuffle(&self, t: &TaskCtx, head_idx: u32) -> u32 {
        t.sched_point(SchedSite::Shuffle, self.id).await;
        #[cfg(debug_assertions)]
        let nodes_before = self.queue_nodes(head_idx);

        let head = self.arena.get(head_idx);
        let shuffler_view = head.view.get();
        let policy = self.policy();

        let mut anchor = head_idx;
        let mut pred = head_idx;
        let mut curr = head.next.load(t).await as u32;
        let mut scanned = 0;
        while curr != 0 && scanned < MAX_SHUFFLE_SCAN {
            scanned += 1;
            self.scanned.set(self.scanned.get() + 1);
            // The shuffler abandons the phase the moment it is granted
            // headship (a word-spin on its own status line, already local).
            if head.status.peek() == GRANTED {
                break;
            }
            let cnode = self.arena.get(curr);
            let next = cnode.next.load(t).await as u32;
            if next == 0 {
                // Possible tail: never unlink it.
                break;
            }
            if head.status.peek() == GRANTED {
                break;
            }
            let (decision, cost) = policy.cmp_node(&CmpNodeCtx {
                lock_id: self.id,
                shuffler: shuffler_view,
                curr: cnode.view.get(),
            });
            if telemetry::armed() {
                telemetry::emit(
                    telemetry::EventKind::CmpNode,
                    t.now(),
                    t.cpu().0 as u16,
                    self.id,
                    shuffler_view.tid,
                    cnode.view.get().tid,
                    u64::from(decision),
                );
            }
            if cost > 0 {
                t.advance(cost).await;
            }
            if decision {
                if pred == anchor {
                    anchor = curr;
                    pred = curr;
                } else {
                    // Unlink `curr` and splice it right after `anchor`.
                    let pnode = self.arena.get(pred);
                    pnode.next.store(t, u64::from(next)).await;
                    let anode = self.arena.get(anchor);
                    let after = anode.next.load(t).await;
                    cnode.next.store(t, after).await;
                    anode.next.store(t, u64::from(curr)).await;
                    anchor = curr;
                    self.moves.set(self.moves.get() + 1);
                }
            } else {
                pred = curr;
            }
            curr = next;
        }
        self.shuffles.set(self.shuffles.get() + 1);
        let final_anchor = anchor;

        #[cfg(debug_assertions)]
        {
            // Enqueuers may have appended while the shuffle phase was
            // suspended in charged operations, so the queue may legally
            // grow; what a shuffle must never do is *lose* (or duplicate)
            // a node that was present when it started.
            let after = self.queue_nodes(head_idx);
            let mut sorted = after.clone();
            sorted.sort_unstable();
            sorted.dedup();
            debug_assert_eq!(sorted.len(), after.len(), "shuffle duplicated a node");
            for n in &nodes_before {
                debug_assert!(
                    after.contains(n),
                    "shuffle lost queue node {n}: before={nodes_before:?} after={after:?}"
                );
            }
        }
        final_anchor
    }

    /// Queue node indices via uncharged peeks (debug invariant only).
    #[cfg(debug_assertions)]
    fn queue_nodes(&self, head_idx: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut curr = head_idx;
        while curr != 0 && out.len() < 1 << 20 {
            out.push(curr);
            curr = self.arena.get(curr).next.peek() as u32;
        }
        out
    }

    /// Live queue-node count (leak assertions in tests).
    pub fn live_nodes(&self) -> usize {
        self.arena.live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NativePolicy;
    use ksim::{CpuId, SimBuilder};

    fn run_counter(lock_policy: Option<Rc<dyn SimPolicy>>, tasks: u32, iters: u32) -> u64 {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimShflLock::new(&sim));
        if let Some(p) = lock_policy {
            lock.set_policy(p);
        }
        let counter = Rc::new(Cell::new(0u64));
        let inside = Rc::new(Cell::new(false));
        for i in 0..tasks {
            let (l, c, ins) = (Rc::clone(&lock), Rc::clone(&counter), Rc::clone(&inside));
            sim.spawn_on(CpuId((i * 7) % 80), move |t| async move {
                for _ in 0..iters {
                    l.acquire(&t).await;
                    assert!(!ins.replace(true), "mutual exclusion violated");
                    t.advance(150).await;
                    c.set(c.get() + 1);
                    ins.set(false);
                    l.release(&t).await;
                }
            });
        }
        let stats = sim.run();
        assert!(
            stats.stuck_tasks.is_empty(),
            "stuck: {:?}",
            stats.stuck_tasks
        );
        assert_eq!(lock.live_nodes(), 0, "leaked queue nodes");
        counter.get()
    }

    #[test]
    fn fifo_mode_mutual_exclusion() {
        assert_eq!(run_counter(None, 24, 40), 960);
    }

    #[test]
    fn numa_policy_mutual_exclusion() {
        assert_eq!(
            run_counter(Some(Rc::new(NativePolicy::numa_aware())), 24, 40),
            960
        );
    }

    #[test]
    fn adversarial_policy_cannot_break_exclusion() {
        struct Chaotic;
        impl SimPolicy for Chaotic {
            fn cmp_node(&self, ctx: &CmpNodeCtx) -> (bool, u64) {
                ((ctx.curr.tid ^ ctx.shuffler.tid) & 1 == 0, 5)
            }
            fn skip_shuffle(&self, _: &SkipShuffleCtx) -> (bool, u64) {
                (false, 5)
            }
        }
        assert_eq!(run_counter(Some(Rc::new(Chaotic)), 24, 40), 960);
    }

    #[test]
    fn numa_policy_reduces_cross_socket_handoffs() {
        // Count socket switches in the acquisition sequence: the NUMA
        // policy must batch same-socket waiters, FIFO must not.
        fn socket_switches(policy: Option<Rc<dyn SimPolicy>>) -> (u64, u64) {
            let sim = SimBuilder::new().seed(11).build();
            let lock = Rc::new(SimShflLock::new(&sim));
            if let Some(p) = policy {
                lock.set_policy(p);
            }
            let last = Rc::new(Cell::new(u32::MAX));
            let switches = Rc::new(Cell::new(0u64));
            let total = Rc::new(Cell::new(0u64));
            for i in 0..32u32 {
                let (l, la, sw, to) = (
                    Rc::clone(&lock),
                    Rc::clone(&last),
                    Rc::clone(&switches),
                    Rc::clone(&total),
                );
                // Four sockets, eight tasks each.
                sim.spawn_on(CpuId((i % 4) * 10 + i / 4), move |t| async move {
                    for _ in 0..30 {
                        l.acquire(&t).await;
                        let s = t.socket().0;
                        if la.replace(s) != s {
                            sw.set(sw.get() + 1);
                        }
                        to.set(to.get() + 1);
                        t.advance(400).await;
                        l.release(&t).await;
                    }
                });
            }
            sim.run();
            (switches.get(), total.get())
        }
        let (fifo_sw, n1) = socket_switches(None);
        let (numa_sw, n2) = socket_switches(Some(Rc::new(NativePolicy::numa_aware())));
        assert_eq!(n1, 960);
        assert_eq!(n2, 960);
        assert!(
            numa_sw * 2 < fifo_sw,
            "NUMA policy should at least halve socket switches: fifo={fifo_sw} numa={numa_sw}"
        );
    }

    #[test]
    fn event_hooks_charge_time() {
        struct Profiling;
        impl SimPolicy for Profiling {
            fn cmp_node(&self, _: &CmpNodeCtx) -> (bool, u64) {
                (false, 0)
            }
            fn skip_shuffle(&self, _: &SkipShuffleCtx) -> (bool, u64) {
                (true, 0)
            }
            fn on_event(&self, _: HookKind, _: &LockEventCtx) -> u64 {
                500
            }
            fn wants_event(&self, _: HookKind) -> bool {
                true
            }
        }
        let elapsed = |policy: Option<Rc<dyn SimPolicy>>| {
            let sim = SimBuilder::new().build();
            let lock = Rc::new(SimShflLock::new(&sim));
            if let Some(p) = policy {
                lock.set_policy(p);
            }
            let l = Rc::clone(&lock);
            sim.spawn_on(CpuId(0), move |t| async move {
                for _ in 0..100 {
                    l.acquire(&t).await;
                    l.release(&t).await;
                }
            });
            sim.run().final_time_ns
        };
        let base = elapsed(None);
        let profiled = elapsed(Some(Rc::new(Profiling)));
        // Each acquire/release fires ≥2 events at 500ns.
        assert!(profiled >= base + 100 * 1000);
    }
}
