//! Simulated BRAVO wrapper (Fig. 2(a)'s winning series).
//!
//! While reader-biased, a reader publishes itself in a visible-readers
//! table slot hashed from its task id — a line essentially private to the
//! reader's socket — instead of RMW-ing the shared reader counter. Writers
//! revoke the bias by scanning the whole table (expensive, and charged as
//! such), then keep the bias off for `N ×` the measured revocation cost.

use std::cell::Cell;

use ksim::{SchedSite, Sim, SimWord, TaskCtx, TaskId};

use crate::rw::SimNeutralRwLock;

/// Visible-readers table slots (per lock in the simulation; the kernel
/// prototype shares one global table, which only changes hash collisions).
pub const VR_SLOTS: usize = 64;

/// Inhibit-window multiplier `N`.
const INHIBIT_MULTIPLIER: u64 = 9;

/// The simulated BRAVO readers-writer lock.
pub struct SimBravo {
    id: u64,
    rbias: SimWord,
    inhibit_until: Cell<u64>,
    /// `0` = empty, else the publishing task id + 1.
    table: Vec<SimWord>,
    underlying: SimNeutralRwLock,
    fast_reads: Cell<u64>,
    slow_reads: Cell<u64>,
    revocations: Cell<u64>,
    /// Per-task published slot (single-threaded sim bookkeeping).
    published: std::cell::RefCell<std::collections::HashMap<TaskId, usize>>,
    bias_allowed: Cell<bool>,
}

impl SimBravo {
    /// Creates a reader-biased instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimBravo {
            id: sim.alloc_id(),
            rbias: SimWord::new(sim, 1),
            inhibit_until: Cell::new(0),
            table: (0..VR_SLOTS).map(|_| SimWord::new(sim, 0)).collect(),
            underlying: SimNeutralRwLock::new(sim),
            fast_reads: Cell::new(0),
            slow_reads: Cell::new(0),
            revocations: Cell::new(0),
            published: Default::default(),
            bias_allowed: Cell::new(true),
        }
    }

    /// Enables/disables biasing — the knob Concord's lock-switching policy
    /// flips (Fig. 2(a): "explicitly switch between a neutral
    /// readers-writer lock to a distributed version for readers").
    pub fn set_bias_enabled(&self, t: &TaskCtx, enabled: bool) {
        self.bias_allowed.set(enabled);
        if !enabled {
            self.inhibit_until.set(u64::MAX);
            // The next writer (or the poke below, safe in virtual time
            // only between operations) clears the flag; to be conservative
            // we leave `rbias` to be cleared by a writer's revocation.
            let _ = t;
        } else {
            self.inhibit_until.set(0);
        }
    }

    /// `(fast, slow, revocations)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.fast_reads.get(),
            self.slow_reads.get(),
            self.revocations.get(),
        )
    }

    /// Whether the lock is currently reader-biased (uncharged).
    pub fn is_biased(&self) -> bool {
        self.rbias.peek() == 1
    }

    fn slot_of(&self, t: &TaskCtx) -> usize {
        let mut x = u64::from(t.id().0 + 1) ^ self.id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        (x as usize) % VR_SLOTS
    }

    /// Per-simulation lock identity (schedule points, oracles).
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires shared access.
    pub async fn read_acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        if self.rbias.load(t).await == 1 {
            let idx = self.slot_of(t);
            let me = u64::from(t.id().0 + 1);
            debug_assert!(
                !self.published.borrow().contains_key(&t.id()),
                "nested BRAVO fast reads by one task are not modeled"
            );
            if self.table[idx].compare_exchange(t, 0, me).await.is_ok() {
                // The publish→recheck window BRAVO's protocol exists for:
                // a concurrent revoker either sees our slot or we see the
                // cleared bias and fall through to the slow path.
                t.sched_point(SchedSite::Window, self.id).await;
                // Recheck the bias after publishing.
                if self.rbias.load(t).await == 1 {
                    self.published.borrow_mut().insert(t.id(), idx);
                    self.fast_reads.set(self.fast_reads.get() + 1);
                    t.sched_point(SchedSite::Acquired, self.id).await;
                    return;
                }
                self.table[idx].store(t, 0).await;
            }
        }
        self.underlying.read_acquire(t).await;
        self.slow_reads.set(self.slow_reads.get() + 1);
        if self.bias_allowed.get() && self.rbias.peek() == 0 && t.now() >= self.inhibit_until.get()
        {
            // Safe to re-enable: we hold a read lock, no writer can run.
            self.rbias.store(t, 1).await;
        }
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases shared access.
    pub async fn read_release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        let slot = self.published.borrow_mut().remove(&t.id());
        match slot {
            Some(idx) => self.table[idx].store(t, 0).await,
            None => self.underlying.read_release(t).await,
        }
    }

    /// Acquires exclusive access.
    pub async fn write_acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        self.underlying.write_acquire(t).await;
        if self.rbias.load(t).await == 1 {
            self.revoke(t).await;
        }
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases exclusive access.
    pub async fn write_release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        self.underlying.write_release(t).await;
    }

    async fn revoke(&self, t: &TaskCtx) {
        let start = t.now();
        self.rbias.store(t, 0).await;
        for slot in &self.table {
            // Wait for any published reader in this slot to drain.
            slot.wait_while(t, |v| v != 0).await;
        }
        let cost = t.now().saturating_sub(start);
        if self.bias_allowed.get() {
            self.inhibit_until.set(t.now() + INHIBIT_MULTIPLIER * cost);
        }
        self.revocations.set(self.revocations.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};
    use std::rc::Rc;

    #[test]
    fn fast_reads_bypass_underlying() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimBravo::new(&sim));
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(0), move |t| async move {
            l.read_acquire(&t).await;
            assert_eq!(l.underlying.readers(), 0);
            l.read_release(&t).await;
        });
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
        assert_eq!(lock.stats().0, 1);
    }

    #[test]
    fn writer_waits_for_published_readers() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimBravo::new(&sim));
        let val = Rc::new(Cell::new((0u64, 0u64)));
        // A reader holding a long fast-path read.
        let (l, v) = (Rc::clone(&lock), Rc::clone(&val));
        sim.spawn_on(CpuId(0), move |t| async move {
            l.read_acquire(&t).await;
            let (a, b) = v.get();
            assert_eq!(a, b);
            t.advance(100_000).await;
            let (a2, b2) = v.get();
            assert_eq!(a2, b2, "writer ran while fast reader held");
            l.read_release(&t).await;
        });
        let (l, v) = (Rc::clone(&lock), Rc::clone(&val));
        sim.spawn_on(CpuId(40), move |t| async move {
            t.advance(1_000).await; // Arrive while the reader holds.
            l.write_acquire(&t).await;
            let (a, b) = v.get();
            v.set((a + 1, b));
            t.advance(500).await;
            let (a, b) = v.get();
            v.set((a, b + 1));
            l.write_release(&t).await;
        });
        let stats = sim.run();
        assert!(
            stats.stuck_tasks.is_empty(),
            "stuck: {:?}",
            stats.stuck_tasks
        );
        assert_eq!(val.get(), (1, 1));
        assert_eq!(lock.stats().2, 1, "one revocation expected");
    }

    #[test]
    fn inhibit_window_forces_slow_reads_after_write() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimBravo::new(&sim));
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(0), move |t| async move {
            l.write_acquire(&t).await;
            l.write_release(&t).await;
            // Immediately after revocation, reads go slow.
            l.read_acquire(&t).await;
            l.read_release(&t).await;
        });
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
        let (fast, slow, _) = lock.stats();
        assert_eq!(fast, 0);
        assert_eq!(slow, 1);
    }

    #[test]
    fn mixed_stress_consistency() {
        let sim = SimBuilder::new().seed(3).build();
        let lock = Rc::new(SimBravo::new(&sim));
        let val = Rc::new(Cell::new((0u64, 0u64)));
        for i in 0..20u32 {
            let (l, v) = (Rc::clone(&lock), Rc::clone(&val));
            sim.spawn_on(CpuId(i * 4), move |t| async move {
                for k in 0..50u64 {
                    if i == 0 && k % 10 == 0 {
                        l.write_acquire(&t).await;
                        let (a, b) = v.get();
                        v.set((a + 1, b + 1));
                        t.advance(400).await;
                        l.write_release(&t).await;
                    } else {
                        l.read_acquire(&t).await;
                        let (a, b) = v.get();
                        assert_eq!(a, b, "inconsistent read");
                        t.advance(200).await;
                        l.read_release(&t).await;
                    }
                    t.advance(t.rng_u64() % 300).await;
                }
            });
        }
        let stats = sim.run();
        assert!(
            stats.stuck_tasks.is_empty(),
            "stuck: {:?}",
            stats.stuck_tasks
        );
        assert_eq!(val.get().0, 5);
    }

    #[test]
    fn disabling_bias_routes_everything_slow() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimBravo::new(&sim));
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(0), move |t| async move {
            l.set_bias_enabled(&t, false);
            // A writer clears the (still set) bias flag via revocation.
            l.write_acquire(&t).await;
            l.write_release(&t).await;
            for _ in 0..5 {
                l.read_acquire(&t).await;
                l.read_release(&t).await;
            }
        });
        sim.run();
        let (fast, slow, _) = lock.stats();
        assert_eq!(fast, 0);
        assert_eq!(slow, 5);
    }
}
