//! Deliberately buggy locks — the planted-bug corpus for the schedule
//! explorer (`concord::explore`) and the CI `schedule_gate`.
//!
//! Each lock here carries a classic concurrency defect that only
//! manifests under particular interleavings, which the explorer's
//! strategies must find by perturbing the schedule at the locks' own
//! [`SchedSite`] injection points:
//!
//! * [`BrokenTicketLock`] — takes its ticket with a non-atomic
//!   load→store pair instead of `fetch_add`; stretching the window hands
//!   the same ticket to two tasks (mutual-exclusion violation).
//! * [`InversionPair`] — two locks taken in opposite orders by the
//!   `ab`/`ba` protocols (lock-order inversion; deadlocks when a delay
//!   lands between the two acquires).
//! * [`UnfairStealLock`] — always lets fresh arrivals steal while woken
//!   waiters pay a re-queue penalty; under an adversarial schedule a
//!   waiter's acquisition latency grows without bound (starvation).
//!
//! These types exist for tests and gates only; nothing in the figure
//! pipeline instantiates them.

use ksim::{SchedSite, Sim, SimFlag, SimWord, TaskCtx};

/// Re-queue penalty a woken [`UnfairStealLock`] waiter pays before it may
/// retry — the window fresh arrivals steal through.
pub const STEAL_QUEUE_PENALTY_NS: u64 = 400;

/// Ticket lock whose ticket take is a non-atomic load→store pair. The
/// [`SchedSite::Window`] point sits exactly in the read→write gap: delay a
/// task there and the next arrival reads the same `next` value, so two
/// tasks hold identical tickets and both pass the `serving` wait.
pub struct BrokenTicketLock {
    id: u64,
    next: SimWord,
    serving: SimWord,
}

impl BrokenTicketLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        BrokenTicketLock {
            id: sim.alloc_id(),
            next: SimWord::new(sim, 0),
            serving: SimWord::new(sim, 0),
        }
    }

    /// Per-simulation lock identity.
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires the lock (unsound under the right schedule).
    pub async fn acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        // BUG: the ticket take is load + store, not fetch_add. Two tasks
        // overlapping in this window read the same ticket.
        let my = self.next.load(t).await;
        t.sched_point(SchedSite::Window, self.id).await;
        self.next.store(t, my + 1).await;
        if self.serving.peek() != my {
            t.sched_point(SchedSite::Contended, self.id).await;
        }
        self.serving.wait_while(t, move |s| s != my).await;
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases the lock.
    pub async fn release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        let s = self.serving.peek();
        self.serving.store(t, s + 1).await;
    }
}

/// A pair of test-and-set locks taken in opposite orders by the two
/// protocols: `ab` takes `a` then `b`, `ba` takes `b` then `a`. The
/// order edges `a→b` and `b→a` form a cycle (lock-order oracle), and a
/// delay injected between the two acquires of concurrent `ab`/`ba`
/// callers deadlocks the pair (both stuck in `wait_clear`).
pub struct InversionPair {
    a: crate::tas::SimTasLock,
    b: crate::tas::SimTasLock,
}

impl InversionPair {
    /// Creates both locks on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        InversionPair {
            a: crate::tas::SimTasLock::new(sim),
            b: crate::tas::SimTasLock::new(sim),
        }
    }

    /// The first lock of the pair.
    pub fn a(&self) -> &crate::tas::SimTasLock {
        &self.a
    }

    /// The second lock of the pair.
    pub fn b(&self) -> &crate::tas::SimTasLock {
        &self.b
    }

    /// Takes `a` then `b` (one half of the inversion).
    pub async fn ab(&self, t: &TaskCtx) {
        self.a.acquire(t).await;
        t.sched_point(SchedSite::Window, self.a.lock_id()).await;
        self.b.acquire(t).await;
    }

    /// Takes `b` then `a` (the inverted half).
    pub async fn ba(&self, t: &TaskCtx) {
        self.b.acquire(t).await;
        t.sched_point(SchedSite::Window, self.b.lock_id()).await;
        self.a.acquire(t).await;
    }

    /// Releases both locks.
    pub async fn unlock_all(&self, t: &TaskCtx) {
        self.b.release(t).await;
        self.a.release(t).await;
    }
}

/// Test-and-set lock with no hand-off discipline at all: a fresh arrival
/// RMWs the word immediately, while a woken waiter pays
/// [`STEAL_QUEUE_PENALTY_NS`] before retrying. The [`SchedSite::Window`]
/// point in the retry path lets a strategy repeatedly widen the steal
/// window for one victim, whose wait grows past any fairness bound.
pub struct UnfairStealLock {
    id: u64,
    locked: SimFlag,
}

impl UnfairStealLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        UnfairStealLock {
            id: sim.alloc_id(),
            locked: SimFlag::new(sim, false),
        }
    }

    /// Per-simulation lock identity.
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires the lock (steal-first, starvation-prone).
    pub async fn acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        // BUG(by design): always race the word first, even when others
        // have been waiting — fresh arrivals win against woken waiters.
        if !self.locked.test_and_set(t).await {
            t.sched_point(SchedSite::Acquired, self.id).await;
            return;
        }
        loop {
            t.sched_point(SchedSite::Contended, self.id).await;
            self.locked.wait_clear(t).await;
            // Re-queue penalty: by the time a woken waiter retries, a
            // stealer has usually taken the word again.
            t.sched_point(SchedSite::Window, self.id).await;
            t.advance(STEAL_QUEUE_PENALTY_NS).await;
            if !self.locked.test_and_set(t).await {
                t.sched_point(SchedSite::Acquired, self.id).await;
                return;
            }
        }
    }

    /// Releases the lock.
    pub async fn release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        self.locked.clear(t).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn broken_ticket_is_correct_without_interference() {
        // The planted bug needs overlapping ticket windows; staggered
        // arrivals with no schedule controller never overlap.
        let sim = SimBuilder::new().build();
        let lock = Rc::new(BrokenTicketLock::new(&sim));
        let inside = Rc::new(Cell::new(false));
        for i in 0..8u32 {
            let (l, ins) = (Rc::clone(&lock), Rc::clone(&inside));
            sim.spawn_on(CpuId(i * 10), move |t| async move {
                t.advance(u64::from(i) * 5_000).await;
                for _ in 0..10 {
                    l.acquire(&t).await;
                    assert!(!ins.replace(true), "unexpected baseline violation");
                    t.advance(100).await;
                    ins.set(false);
                    l.release(&t).await;
                    t.advance(40_000).await;
                }
            });
        }
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty(), "stuck: {:?}", stats.stuck_tasks);
    }

    #[test]
    fn inversion_pair_single_order_is_safe() {
        let sim = SimBuilder::new().build();
        let pair = Rc::new(InversionPair::new(&sim));
        for i in 0..6u32 {
            let p = Rc::clone(&pair);
            sim.spawn_on(CpuId(i * 12), move |t| async move {
                for _ in 0..20 {
                    p.ab(&t).await;
                    t.advance(100).await;
                    p.unlock_all(&t).await;
                    t.advance(200).await;
                }
            });
        }
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty(), "stuck: {:?}", stats.stuck_tasks);
    }

    #[test]
    fn steal_lock_excludes_but_is_unfair_by_design() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(UnfairStealLock::new(&sim));
        let inside = Rc::new(Cell::new(false));
        for i in 0..8u32 {
            let (l, ins) = (Rc::clone(&lock), Rc::clone(&inside));
            sim.spawn_on(CpuId(i * 10), move |t| async move {
                for _ in 0..30 {
                    l.acquire(&t).await;
                    assert!(!ins.replace(true), "mutual exclusion violated");
                    t.advance(150).await;
                    ins.set(false);
                    l.release(&t).await;
                    t.advance(300).await;
                }
            });
        }
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty(), "stuck: {:?}", stats.stuck_tasks);
    }
}
