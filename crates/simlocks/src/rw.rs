//! Simulated neutral readers-writer lock ("Stock" of Fig. 2(a)).
//!
//! One word holds the reader count plus writer/writer-waiting bits — the
//! `qrwlock`-style design whose shared reader counter is precisely what
//! BRAVO removes: every reader RMWs the same line, so read-side throughput
//! flattens as sockets contend for it.

use ksim::{SchedSite, Sim, SimWord, TaskCtx};

const WRITER: u64 = 1;
const WRITER_WAITING: u64 = 2;
const READER_UNIT: u64 = 4;

/// The simulated neutral rwlock.
pub struct SimNeutralRwLock {
    id: u64,
    word: SimWord,
}

impl SimNeutralRwLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimNeutralRwLock {
            id: sim.alloc_id(),
            word: SimWord::new(sim, 0),
        }
    }

    /// Per-simulation lock identity (schedule points, oracles).
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires shared access.
    pub async fn read_acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        loop {
            let w = self.word.load(t).await;
            if w & (WRITER | WRITER_WAITING) == 0 {
                // The load→CAS window: on interference the CAS fails and
                // the loop retries.
                t.sched_point(SchedSite::Window, self.id).await;
                if self
                    .word
                    .compare_exchange(t, w, w + READER_UNIT)
                    .await
                    .is_ok()
                {
                    t.sched_point(SchedSite::Acquired, self.id).await;
                    return;
                }
                continue;
            }
            t.sched_point(SchedSite::Contended, self.id).await;
            self.word
                .wait_while(t, |w| w & (WRITER | WRITER_WAITING) != 0)
                .await;
        }
    }

    /// Releases shared access.
    pub async fn read_release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        debug_assert!(self.word.peek() >= READER_UNIT, "release without readers");
        self.word.fetch_sub(t, READER_UNIT).await;
    }

    /// Acquires exclusive access.
    pub async fn write_acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        loop {
            let w = self.word.load(t).await;
            if w & !WRITER_WAITING == 0 {
                t.sched_point(SchedSite::Window, self.id).await;
                if self.word.compare_exchange(t, w, WRITER).await.is_ok() {
                    t.sched_point(SchedSite::Acquired, self.id).await;
                    return;
                }
                continue;
            }
            if w & WRITER_WAITING == 0 {
                // Announce intent; new readers will stall.
                let _ = self.word.compare_exchange(t, w, w | WRITER_WAITING).await;
                continue;
            }
            t.sched_point(SchedSite::Contended, self.id).await;
            self.word.wait_while(t, |w| w & !WRITER_WAITING != 0).await;
        }
    }

    /// Releases exclusive access.
    pub async fn write_release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        debug_assert!(self.word.peek() & WRITER != 0, "release without writer");
        self.word.fetch_and(t, !WRITER).await;
    }

    /// Current reader count (uncharged; statistics).
    pub fn readers(&self) -> u64 {
        self.word.peek() / READER_UNIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn readers_share_writers_exclude() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimNeutralRwLock::new(&sim));
        let val = Rc::new(Cell::new((0u64, 0u64)));
        for i in 0..12u32 {
            let (l, v) = (Rc::clone(&lock), Rc::clone(&val));
            sim.spawn_on(CpuId(i * 6), move |t| async move {
                for _ in 0..40 {
                    if i < 2 {
                        l.write_acquire(&t).await;
                        let (a, b) = v.get();
                        v.set((a + 1, b));
                        t.advance(300).await;
                        let (a, b) = v.get();
                        v.set((a, b + 1));
                        l.write_release(&t).await;
                    } else {
                        l.read_acquire(&t).await;
                        let (a, b) = v.get();
                        assert_eq!(a, b, "torn read: writer ran under read lock");
                        t.advance(100).await;
                        let (a2, b2) = v.get();
                        assert_eq!(a2, b2, "writer entered during read CS");
                        l.read_release(&t).await;
                    }
                }
            });
        }
        let stats = sim.run();
        assert_eq!(val.get(), (80, 80));
        assert!(
            stats.stuck_tasks.is_empty(),
            "stuck: {:?}",
            stats.stuck_tasks
        );
    }

    #[test]
    fn concurrent_readers_overlap_in_time() {
        // Two readers with long critical sections must overlap: total time
        // well under the serial sum.
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimNeutralRwLock::new(&sim));
        for cpu in [0u32, 40] {
            let l = Rc::clone(&lock);
            sim.spawn_on(CpuId(cpu), move |t| async move {
                l.read_acquire(&t).await;
                t.advance(1_000_000).await;
                l.read_release(&t).await;
            });
        }
        let stats = sim.run();
        assert!(
            stats.final_time_ns < 1_500_000,
            "readers serialized: {}ns",
            stats.final_time_ns
        );
    }

    #[test]
    fn writer_not_starved_by_reader_stream() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimNeutralRwLock::new(&sim));
        let writer_done = Rc::new(Cell::new(0u64));
        // Constant stream of readers.
        for cpu in 0..8u32 {
            let l = Rc::clone(&lock);
            sim.spawn_on(CpuId(cpu * 10), move |t| async move {
                for _ in 0..300 {
                    l.read_acquire(&t).await;
                    t.advance(500).await;
                    l.read_release(&t).await;
                    t.advance(100).await;
                }
            });
        }
        let (l, wd) = (Rc::clone(&lock), Rc::clone(&writer_done));
        sim.spawn_on(CpuId(5), move |t| async move {
            t.advance(10_000).await;
            l.write_acquire(&t).await;
            wd.set(t.now());
            t.advance(1_000).await;
            l.write_release(&t).await;
        });
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
        let done = writer_done.get();
        assert!(done > 0, "writer never ran");
        assert!(
            done < stats.final_time_ns,
            "writer starved to the end of the run"
        );
    }
}
