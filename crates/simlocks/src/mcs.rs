//! Simulated MCS queue lock — the `qspinlock` analog ("Stock" in
//! Fig. 2(b)).

use std::cell::Cell;

use ksim::{SchedSite, Sim, SimWord, TaskCtx};

use crate::arena::{NodeArena, GRANTED, WAITING};

/// MCS lock in the machine model: waiters spin on private lines, handoff
/// transfers exactly one line — scalable but strictly FIFO, so every
/// cross-socket handoff pays the interconnect.
pub struct SimMcsLock {
    id: u64,
    tail: SimWord,
    arena: NodeArena,
    holder: Cell<u32>,
}

impl SimMcsLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimMcsLock {
            id: sim.alloc_id(),
            tail: SimWord::new(sim, 0),
            arena: NodeArena::new(sim),
            holder: Cell::new(0),
        }
    }

    /// Per-simulation lock identity (schedule points, oracles).
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires the lock.
    pub async fn acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        let idx = self.arena.alloc(t);
        let node = self.arena.get(idx);
        let prev = self.tail.swap(t, u64::from(idx)).await;
        if prev != 0 {
            // The swap→link window: a releasing predecessor waits for the
            // link, so stretching this is safe in a correct MCS lock.
            t.sched_point(SchedSite::Window, self.id).await;
            let pnode = self.arena.get(prev as u32);
            pnode.next.store(t, u64::from(idx)).await;
            t.sched_point(SchedSite::Contended, self.id).await;
            node.status.wait_while(t, |s| s == WAITING).await;
        }
        self.holder.set(idx);
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases the lock.
    pub async fn release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        let idx = self.holder.replace(0);
        assert_ne!(idx, 0, "release of unheld SimMcsLock");
        let node = self.arena.get(idx);
        let mut next = node.next.load(t).await;
        if next == 0 {
            if self
                .tail
                .compare_exchange(t, u64::from(idx), 0)
                .await
                .is_ok()
            {
                self.arena.release(idx);
                return;
            }
            next = node.next.wait_while(t, |n| n == 0).await;
        }
        self.arena.get(next as u32).status.store(t, GRANTED).await;
        self.arena.release(idx);
    }

    /// Attempts to acquire without waiting.
    pub async fn try_acquire(&self, t: &TaskCtx) -> bool {
        if self.tail.peek() != 0 {
            return false;
        }
        let idx = self.arena.alloc(t);
        if self
            .tail
            .compare_exchange(t, 0, u64::from(idx))
            .await
            .is_ok()
        {
            self.holder.set(idx);
            true
        } else {
            self.arena.release(idx);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};
    use std::rc::Rc;

    #[test]
    fn mutual_exclusion_many_tasks() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimMcsLock::new(&sim));
        let counter = Rc::new(Cell::new(0u64));
        let inside = Rc::new(Cell::new(false));
        for cpu in 0..40u32 {
            let (l, c, ins) = (Rc::clone(&lock), Rc::clone(&counter), Rc::clone(&inside));
            sim.spawn_on(CpuId(cpu * 2), move |t| async move {
                for _ in 0..25 {
                    l.acquire(&t).await;
                    assert!(!ins.replace(true), "mutual exclusion violated");
                    t.advance(120).await;
                    c.set(c.get() + 1);
                    ins.set(false);
                    l.release(&t).await;
                }
            });
        }
        let stats = sim.run();
        assert_eq!(counter.get(), 1_000);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn nodes_are_recycled_not_leaked() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimMcsLock::new(&sim));
        for cpu in 0..8u32 {
            let l = Rc::clone(&lock);
            sim.spawn_on(CpuId(cpu), move |t| async move {
                for _ in 0..100 {
                    l.acquire(&t).await;
                    t.advance(10).await;
                    l.release(&t).await;
                }
            });
        }
        sim.run();
        assert_eq!(lock.arena.live(), 0, "queue nodes leaked");
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimMcsLock::new(&sim));
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(0), move |t| async move {
            assert!(l.try_acquire(&t).await);
            assert!(!l.try_acquire(&t).await);
            l.release(&t).await;
            assert!(l.try_acquire(&t).await);
            l.release(&t).await;
        });
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn fifo_handoff_order() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimMcsLock::new(&sim));
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        for (i, cpu) in [5u32, 15, 25, 35, 45].iter().enumerate() {
            let (l, o) = (Rc::clone(&lock), Rc::clone(&order));
            sim.spawn_on(CpuId(*cpu), move |t| async move {
                t.advance(500 * (i as u64 + 1)).await;
                l.acquire(&t).await;
                o.borrow_mut().push(i);
                t.advance(20_000).await;
                l.release(&t).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }
}
