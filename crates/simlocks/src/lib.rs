//! Discrete-event-simulator implementations of the paper's lock algorithms.
//!
//! These are the locks that regenerate the evaluation figures: the same
//! algorithms as the real-thread crate `locks`, re-expressed against the
//! `ksim` machine model, where every shared-memory access is charged
//! cache-coherence latency in virtual time. Contention behavior — who
//! transfers which line when — is therefore modeled explicitly, which is
//! what lets an 80-core scalability figure be reproduced deterministically
//! on a single-CPU host (DESIGN.md §2).
//!
//! Lock policies enter through [`policy::SimPolicy`]; the Concord crate
//! supplies an implementation backed by verified `cbpf` bytecode whose
//! execution cost is charged to virtual time, so framework overhead appears
//! in the figures exactly as eBPF overhead does in the paper.
//!
//! # Examples
//!
//! ```
//! use ksim::{CpuId, SimBuilder};
//! use simlocks::SimMcsLock;
//! use std::rc::Rc;
//!
//! let sim = SimBuilder::new().build();
//! let lock = Rc::new(SimMcsLock::new(&sim));
//! for cpu in 0..8u32 {
//!     let lock = Rc::clone(&lock);
//!     sim.spawn_on(CpuId(cpu), move |t| async move {
//!         for _ in 0..50 {
//!             lock.acquire(&t).await;
//!             t.advance(200).await; // Critical section.
//!             lock.release(&t).await;
//!         }
//!     });
//! }
//! let stats = sim.run();
//! assert!(stats.stuck_tasks.is_empty());
//! ```

mod arena;
mod bravo;
pub mod broken;
mod mcs;
mod phasefair;
pub mod policy;
mod rw;
mod shfl;
mod tas;
mod ticket;

pub use bravo::SimBravo;
pub use broken::{BrokenTicketLock, InversionPair, UnfairStealLock};
pub use mcs::SimMcsLock;
pub use phasefair::SimPhaseFairRwLock;
pub use policy::{FifoPolicy, NativePolicy, SimPolicy};
pub use rw::SimNeutralRwLock;
pub use shfl::SimShflLock;
pub use tas::SimTasLock;
pub use ticket::SimTicketLock;
