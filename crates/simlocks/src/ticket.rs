//! Simulated ticket lock.

use ksim::{SchedSite, Sim, SimWord, TaskCtx};

/// FIFO ticket lock in the machine model: one RMW to take a ticket, then
/// all waiters spin on the shared `serving` word — fair, but every handoff
/// invalidates every waiting socket.
pub struct SimTicketLock {
    id: u64,
    next: SimWord,
    serving: SimWord,
}

impl SimTicketLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimTicketLock {
            id: sim.alloc_id(),
            next: SimWord::new(sim, 0),
            serving: SimWord::new(sim, 0),
        }
    }

    /// Per-simulation lock identity (schedule points, oracles).
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires the lock.
    pub async fn acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        let my = self.next.fetch_add(t, 1).await;
        if self.serving.peek() != my {
            t.sched_point(SchedSite::Contended, self.id).await;
        }
        self.serving.wait_while(t, move |s| s != my).await;
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases the lock.
    pub async fn release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        let s = self.serving.peek();
        debug_assert!(self.next.peek() > s, "release of unheld SimTicketLock");
        self.serving.store(t, s + 1).await;
    }

    /// Attempts to acquire without waiting.
    pub async fn try_acquire(&self, t: &TaskCtx) -> bool {
        let serving = self.serving.load(t).await;
        self.next
            .compare_exchange(t, serving, serving + 1)
            .await
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn strict_fifo_order() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimTicketLock::new(&sim));
        let order = Rc::new(RefCell::new(Vec::new()));
        // Stagger arrivals so the queue order is deterministic.
        for (i, cpu) in [0u32, 10, 20, 30].iter().enumerate() {
            let (l, o) = (Rc::clone(&lock), Rc::clone(&order));
            sim.spawn_on(CpuId(*cpu), move |t| async move {
                t.advance(1_000 * (i as u64 + 1)).await;
                l.acquire(&t).await;
                o.borrow_mut().push(i);
                t.advance(50_000).await; // Long CS so all arrive while held.
                l.release(&t).await;
            });
        }
        let stats = sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn contended_counter() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimTicketLock::new(&sim));
        let counter = Rc::new(std::cell::Cell::new(0u64));
        for cpu in 0..20u32 {
            let (l, c) = (Rc::clone(&lock), Rc::clone(&counter));
            sim.spawn_on(CpuId(cpu * 4), move |t| async move {
                for _ in 0..30 {
                    l.acquire(&t).await;
                    c.set(c.get() + 1);
                    t.advance(150).await;
                    l.release(&t).await;
                }
            });
        }
        let stats = sim.run();
        assert_eq!(counter.get(), 600);
        assert!(stats.stuck_tasks.is_empty());
    }
}
