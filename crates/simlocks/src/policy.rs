//! Policy interface of the simulated shuffle lock.
//!
//! Decisions reuse the context vocabulary of the real-thread hook table
//! (`locks::hooks`); every evaluation additionally reports its *cost* in
//! nanoseconds of virtual time, which the lock charges to the invoking
//! task. A native (compiled-in) policy costs a few nanoseconds; Concord's
//! bytecode-backed policy charges patch-point indirection plus
//! per-instruction interpreter cost — reproducing the overhead the paper
//! measures in Fig. 2(c).

use locks::hooks::{CmpNodeCtx, HookKind, LockEventCtx, ScheduleWaiterCtx, SkipShuffleCtx};

/// A decision plus the virtual-time cost of computing it.
pub type Decision = (bool, u64);

/// Policy consulted by the simulated shuffle lock.
pub trait SimPolicy {
    /// Whether to move `ctx.curr` forward; see Table 1.
    fn cmp_node(&self, ctx: &CmpNodeCtx) -> Decision;

    /// Whether to skip the shuffle phase entirely.
    fn skip_shuffle(&self, ctx: &SkipShuffleCtx) -> Decision;

    /// Whether the waiter may park (blocking variants).
    fn schedule_waiter(&self, ctx: &ScheduleWaiterCtx) -> Decision {
        let _ = ctx;
        (true, 0)
    }

    /// Profiling hook; returns the cost charged to the event site.
    fn on_event(&self, kind: HookKind, ctx: &LockEventCtx) -> u64 {
        let _ = (kind, ctx);
        0
    }

    /// Which event hooks are attached (vacant hooks cost nothing at all).
    fn wants_event(&self, kind: HookKind) -> bool {
        let _ = kind;
        false
    }
}

/// The unpatched lock: FIFO order, no shuffling, zero overhead.
#[derive(Default)]
pub struct FifoPolicy;

impl FifoPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        FifoPolicy
    }
}

impl SimPolicy for FifoPolicy {
    fn cmp_node(&self, _ctx: &CmpNodeCtx) -> Decision {
        (false, 0)
    }

    fn skip_shuffle(&self, _ctx: &SkipShuffleCtx) -> Decision {
        (true, 0)
    }
}

/// A compiled-in policy: native closures with a fixed per-call cost.
///
/// Models a policy baked into the kernel at build time (the paper's
/// "pre-compiled versions of the same locks", §5), e.g. NUMA-aware
/// grouping for Fig. 2(b)'s ShflLock series.
pub struct NativePolicy {
    cmp: Box<dyn Fn(&CmpNodeCtx) -> bool>,
    skip: Box<dyn Fn(&SkipShuffleCtx) -> bool>,
    cost_ns: u64,
}

impl NativePolicy {
    /// Builds a policy from closures; `cost_ns` is charged per decision.
    pub fn new(
        cmp: impl Fn(&CmpNodeCtx) -> bool + 'static,
        skip: impl Fn(&SkipShuffleCtx) -> bool + 'static,
        cost_ns: u64,
    ) -> Self {
        NativePolicy {
            cmp: Box::new(cmp),
            skip: Box::new(skip),
            cost_ns,
        }
    }

    /// The NUMA-aware grouping policy (same-socket waiters move forward),
    /// at native-code cost.
    pub fn numa_aware() -> Self {
        NativePolicy::new(|c| c.curr.socket == c.shuffler.socket, |_| false, 3)
    }

    /// A priority policy: move `curr` forward when it outranks the
    /// shuffler.
    pub fn priority() -> Self {
        NativePolicy::new(|c| c.curr.prio > c.shuffler.prio, |_| false, 3)
    }
}

impl SimPolicy for NativePolicy {
    fn cmp_node(&self, ctx: &CmpNodeCtx) -> Decision {
        ((self.cmp)(ctx), self.cost_ns)
    }

    fn skip_shuffle(&self, ctx: &SkipShuffleCtx) -> Decision {
        ((self.skip)(ctx), self.cost_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locks::hooks::NodeView;

    fn view(socket: u32, prio: i64) -> NodeView {
        NodeView {
            tid: 1,
            cpu: socket * 10,
            socket,
            prio,
            cs_hint: 0,
            held_locks: 0,
            wait_start_ns: 0,
        }
    }

    #[test]
    fn fifo_never_shuffles() {
        let p = FifoPolicy::new();
        let ctx = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(0, 0),
            curr: view(0, 0),
        };
        assert_eq!(p.cmp_node(&ctx), (false, 0));
        assert_eq!(
            p.skip_shuffle(&SkipShuffleCtx {
                lock_id: 1,
                shuffler: view(0, 0)
            }),
            (true, 0)
        );
    }

    #[test]
    fn numa_policy_groups_same_socket() {
        let p = NativePolicy::numa_aware();
        let same = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(2, 0),
            curr: view(2, 0),
        };
        let other = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(2, 0),
            curr: view(5, 0),
        };
        assert!(p.cmp_node(&same).0);
        assert!(!p.cmp_node(&other).0);
        assert!(p.cmp_node(&same).1 > 0, "native policies still cost time");
    }

    #[test]
    fn priority_policy_prefers_high_prio() {
        let p = NativePolicy::priority();
        let ctx = CmpNodeCtx {
            lock_id: 1,
            shuffler: view(0, 0),
            curr: view(1, 5),
        };
        assert!(p.cmp_node(&ctx).0);
    }
}
