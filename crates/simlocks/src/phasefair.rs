//! Simulated phase-fair readers-writer lock (PF-T) — the realtime
//! use case of §3.1.2: bounded reader/writer blocking by alternating
//! phases. Same ticket formulation as `locks::PhaseFairRwLock`.

use ksim::{SchedSite, Sim, SimWord, TaskCtx};

const RINC: u64 = 0x100;
const PRES: u64 = 0x2;
const PHID: u64 = 0x1;
const WBITS: u64 = PRES | PHID;

/// The simulated phase-fair rwlock.
pub struct SimPhaseFairRwLock {
    id: u64,
    rin: SimWord,
    rout: SimWord,
    win: SimWord,
    wout: SimWord,
}

impl SimPhaseFairRwLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimPhaseFairRwLock {
            id: sim.alloc_id(),
            rin: SimWord::new(sim, 0),
            rout: SimWord::new(sim, 0),
            win: SimWord::new(sim, 0),
            wout: SimWord::new(sim, 0),
        }
    }

    /// Per-simulation lock identity (schedule points, oracles).
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires shared access (waits at most one writer phase).
    pub async fn read_acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        let w = self.rin.fetch_add(t, RINC).await & WBITS;
        if w != 0 {
            t.sched_point(SchedSite::Contended, self.id).await;
            // Wait for this writer's phase to end; the *next* writer has a
            // different phase id, so we are admitted in between.
            self.rin.wait_while(t, move |v| v & WBITS == w).await;
        }
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases shared access.
    pub async fn read_release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        self.rout.fetch_add(t, RINC).await;
    }

    /// Acquires exclusive access (waits at most one reader phase plus the
    /// writer queue).
    pub async fn write_acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        let ticket = self.win.fetch_add(t, 1).await;
        self.wout.wait_while(t, move |v| v != ticket).await;
        // Writer turn taken; now drain the reader phase that entered first.
        t.sched_point(SchedSite::Window, self.id).await;
        let w = PRES | (ticket & PHID);
        let entered = self.rin.fetch_add(t, w).await & !WBITS;
        self.rout.wait_while(t, move |v| v != entered).await;
        t.sched_point(SchedSite::Acquired, self.id).await;
    }

    /// Releases exclusive access.
    pub async fn write_release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        self.rin.fetch_and(t, !WBITS).await;
        self.wout.fetch_add(t, 1).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder};
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn consistency_under_mixed_load() {
        let sim = SimBuilder::new().seed(2).build();
        let lock = Rc::new(SimPhaseFairRwLock::new(&sim));
        let pair = Rc::new(Cell::new((0u64, 0u64)));
        for i in 0..16u32 {
            let (l, p) = (Rc::clone(&lock), Rc::clone(&pair));
            sim.spawn_on(CpuId(i * 5), move |t| async move {
                for _ in 0..40 {
                    if i < 3 {
                        l.write_acquire(&t).await;
                        let (a, b) = p.get();
                        p.set((a + 1, b));
                        t.advance(250).await;
                        let (a, b) = p.get();
                        p.set((a, b + 1));
                        l.write_release(&t).await;
                    } else {
                        l.read_acquire(&t).await;
                        let (a, b) = p.get();
                        assert_eq!(a, b, "writer overlapped a reader");
                        t.advance(120).await;
                        l.read_release(&t).await;
                    }
                    t.advance(t.rng_u64() % 400).await;
                }
            });
        }
        let stats = sim.run();
        assert!(
            stats.stuck_tasks.is_empty(),
            "stuck: {:?}",
            stats.stuck_tasks
        );
        assert_eq!(pair.get(), (120, 120));
    }

    #[test]
    fn reader_wait_bounded_by_one_writer_phase() {
        // Writers hold for 10 µs back-to-back; a reader arriving must be
        // admitted after at most ~one writer phase, not after the whole
        // writer queue (which a writer-preference lock would impose).
        let sim = SimBuilder::new().seed(4).build();
        let lock = Rc::new(SimPhaseFairRwLock::new(&sim));
        const HOLD: u64 = 10_000;
        for i in 0..6u32 {
            let l = Rc::clone(&lock);
            sim.spawn_on(CpuId(i * 10), move |t| async move {
                for _ in 0..50 {
                    l.write_acquire(&t).await;
                    t.advance(HOLD).await;
                    l.write_release(&t).await;
                }
            });
        }
        let max_wait = Rc::new(Cell::new(0u64));
        {
            let (l, mw) = (Rc::clone(&lock), Rc::clone(&max_wait));
            sim.spawn_on(CpuId(79), move |t| async move {
                for _ in 0..40 {
                    t.advance(15_000).await;
                    let start = t.now();
                    l.read_acquire(&t).await;
                    mw.set(mw.get().max(t.now() - start));
                    l.read_release(&t).await;
                }
            });
        }
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
        assert!(
            max_wait.get() < 2 * HOLD + 5_000,
            "reader waited {} ns — more than ~one writer phase",
            max_wait.get()
        );
    }

    #[test]
    fn parallel_readers_overlap() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimPhaseFairRwLock::new(&sim));
        for cpu in [0u32, 40] {
            let l = Rc::clone(&lock);
            sim.spawn_on(CpuId(cpu), move |t| async move {
                l.read_acquire(&t).await;
                t.advance(1_000_000).await;
                l.read_release(&t).await;
            });
        }
        let stats = sim.run();
        assert!(stats.final_time_ns < 1_500_000, "readers serialized");
    }
}
