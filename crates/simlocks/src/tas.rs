//! Simulated test-and-set lock.

use ksim::{SchedSite, Sim, SimFlag, TaskCtx};

/// Test-and-test-and-set lock in the machine model: every contender RMWs
/// the same line, so each handoff triggers an invalidation storm across
/// all spinning sockets — the collapse curve of non-scalable locks.
pub struct SimTasLock {
    id: u64,
    locked: SimFlag,
}

impl SimTasLock {
    /// Creates an unlocked instance on `sim`'s machine.
    pub fn new(sim: &Sim) -> Self {
        SimTasLock {
            id: sim.alloc_id(),
            locked: SimFlag::new(sim, false),
        }
    }

    /// Per-simulation lock identity (schedule points, oracles).
    pub fn lock_id(&self) -> u64 {
        self.id
    }

    /// Acquires the lock.
    pub async fn acquire(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Acquire, self.id).await;
        loop {
            // Wait until it looks free (shared-mode spin)…
            self.locked.wait_clear(t).await;
            // The read→RMW window: a correct TAS just retries when another
            // contender wins the race here.
            t.sched_point(SchedSite::Window, self.id).await;
            // …then race an RMW for it.
            if !self.locked.test_and_set(t).await {
                t.sched_point(SchedSite::Acquired, self.id).await;
                return;
            }
            t.sched_point(SchedSite::Contended, self.id).await;
        }
    }

    /// Releases the lock.
    pub async fn release(&self, t: &TaskCtx) {
        t.sched_point(SchedSite::Release, self.id).await;
        debug_assert!(self.locked.peek(), "release of unheld SimTasLock");
        self.locked.clear(t).await;
    }

    /// Attempts to acquire without waiting.
    pub async fn try_acquire(&self, t: &TaskCtx) -> bool {
        !self.locked.test_and_set(t).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksim::{CpuId, SimBuilder, SimWord};
    use std::rc::Rc;

    #[test]
    fn mutual_exclusion_and_progress() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimTasLock::new(&sim));
        let counter = Rc::new(SimWord::new(&sim, 0));
        let inside = Rc::new(std::cell::Cell::new(0u32));
        for cpu in 0..16u32 {
            let (l, c, ins) = (Rc::clone(&lock), Rc::clone(&counter), Rc::clone(&inside));
            sim.spawn_on(CpuId(cpu * 5), move |t| async move {
                for _ in 0..50 {
                    l.acquire(&t).await;
                    assert_eq!(ins.replace(1), 0, "mutual exclusion violated");
                    t.advance(100).await;
                    let v = c.peek();
                    c.poke(v + 1);
                    assert_eq!(ins.replace(0), 1);
                    l.release(&t).await;
                }
            });
        }
        let stats = sim.run();
        assert_eq!(counter.peek(), 800);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let sim = SimBuilder::new().build();
        let lock = Rc::new(SimTasLock::new(&sim));
        let l = Rc::clone(&lock);
        sim.spawn_on(CpuId(0), move |t| async move {
            assert!(l.try_acquire(&t).await);
            assert!(!l.try_acquire(&t).await);
            l.release(&t).await;
            assert!(l.try_acquire(&t).await);
            l.release(&t).await;
        });
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
    }
}
