//! Property-based tests for the policy engine.
//!
//! The central property is verifier *soundness*: any program the verifier
//! accepts must execute to completion on the (fully dynamically checked)
//! interpreter without a single runtime fault, for any environment values.

use std::sync::Arc;

use proptest::prelude::*;

use cbpf::asm::{assemble_named, disassemble};
use cbpf::ctx::{CtxLayout, FieldAccess};
use cbpf::helpers::{FixedEnv, HelperId};
use cbpf::insn::{decode, encode, AluOp, Insn, JmpOp, MemSize, Operand, Reg};
use cbpf::interp::run_program;
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::program::Program;
use cbpf::verifier::verify;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..=10).prop_map(Reg)
}

fn alu_op_strategy() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn jmp_op_strategy() -> impl Strategy<Value = JmpOp> {
    proptest::sample::select(JmpOp::ALL.to_vec())
}

fn mem_size_strategy() -> impl Strategy<Value = MemSize> {
    proptest::sample::select(vec![MemSize::B, MemSize::H, MemSize::W, MemSize::Dw])
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        (-64i32..64).prop_map(Operand::Imm),
    ]
}

/// Arbitrary instructions, biased toward plausible-but-possibly-invalid
/// programs: small jump offsets, stack-relative addresses, real helper ids
/// mixed with bogus ones.
fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (
            any::<bool>(),
            alu_op_strategy(),
            reg_strategy(),
            operand_strategy()
        )
            .prop_map(|(wide, op, dst, src)| Insn::Alu {
                wide,
                op,
                dst,
                // `neg` is unary; its canonical encoding carries Imm(0).
                src: if op == AluOp::Neg {
                    Operand::Imm(0)
                } else {
                    src
                },
            }),
        (reg_strategy(), any::<u64>()).prop_map(|(dst, imm)| Insn::LdImm64 { dst, imm }),
        (
            mem_size_strategy(),
            reg_strategy(),
            reg_strategy(),
            (-72i16..16)
        )
            .prop_map(|(size, dst, base, off)| Insn::Load {
                size,
                dst,
                base,
                off
            }),
        (
            mem_size_strategy(),
            reg_strategy(),
            (-72i16..16),
            operand_strategy()
        )
            .prop_map(|(size, base, off, src)| Insn::Store {
                size,
                base,
                off,
                src
            }),
        (-4i16..8).prop_map(|off| Insn::Ja { off }),
        (
            jmp_op_strategy(),
            reg_strategy(),
            operand_strategy(),
            (-4i16..8)
        )
            .prop_map(|(op, dst, src, off)| Insn::Jmp { op, dst, src, off }),
        prop_oneof![Just(4u32), Just(5), Just(6), Just(7), Just(8), Just(999)]
            .prop_map(|helper| Insn::Call { helper }),
        Just(Insn::Exit),
    ]
}

/// Clamps jump targets into `[0, len]` so encoding and disassembly are
/// well-defined (out-of-bounds jumps are the verifier's job to reject).
fn clamp_jumps(insns: Vec<Insn>) -> Vec<Insn> {
    let len = insns.len();
    insns
        .into_iter()
        .enumerate()
        .map(|(pc, i)| match i {
            Insn::Ja { off } => {
                let t = (pc as i64 + 1 + i64::from(off)).clamp(0, len as i64);
                Insn::Ja {
                    off: (t - pc as i64 - 1) as i16,
                }
            }
            Insn::Jmp { op, dst, src, off } => {
                let t = (pc as i64 + 1 + i64::from(off)).clamp(0, len as i64);
                Insn::Jmp {
                    op,
                    dst,
                    src,
                    off: (t - pc as i64 - 1) as i16,
                }
            }
            other => other,
        })
        .collect()
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(insn_strategy(), 1..24).prop_map(|mut insns| {
        // Give random programs a fighting chance: initialize r0 first and
        // guarantee a final exit.
        insns.insert(
            0,
            Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(0),
            },
        );
        insns.push(Insn::Exit);
        Program::new("fuzz", clamp_jumps(insns), Vec::new())
    })
}

fn test_layout() -> CtxLayout {
    CtxLayout::builder()
        .field("a", 8, FieldAccess::ReadOnly)
        .field("b", 4, FieldAccess::ReadOnly)
        .field("out", 8, FieldAccess::ReadWrite)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Soundness: accepted ⇒ runs without any fault, under arbitrary
    /// environment values and context contents.
    #[test]
    fn verified_programs_never_fault(
        prog in program_strategy(),
        cpu in 0u32..128,
        numa in 0u32..8,
        time in any::<u64>(),
        pid in any::<u64>(),
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let mut ctx = vec![0u8; layout.size()];
            for (i, b) in ctx.iter_mut().enumerate() {
                *b = (ctx_seed.rotate_left((i as u32 * 7) % 63) & 0xff) as u8;
            }
            let env = FixedEnv::new().cpu(cpu).numa(numa).time(time).with_pid(pid);
            let res = run_program(&prog, &mut ctx, &layout, &env);
            prop_assert!(res.is_ok(), "verified program faulted: {:?}", res);
        }
    }

    /// Soundness with maps in play: lookups, updates, null checks.
    #[test]
    fn verified_map_programs_never_fault(
        body in proptest::collection::vec(insn_strategy(), 1..16),
        key in 0i32..4,
    ) {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 2,
        }));
        // A valid lookup prologue, then fuzz the continuation.
        let mut insns = vec![
            Insn::LdMapRef { dst: Reg::R1, map_id: 0 },
            Insn::Store { size: MemSize::W, base: Reg::R10, off: -4, src: Operand::Imm(key) },
            Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R2, src: Operand::Reg(Reg::R10) },
            Insn::Alu { wide: true, op: AluOp::Add, dst: Reg::R2, src: Operand::Imm(-4) },
            Insn::Call { helper: HelperId::MapLookup as u32 },
        ];
        insns.extend(body);
        insns.push(Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R0, src: Operand::Imm(0) });
        insns.push(Insn::Exit);
        let prog = Program::new("fuzzmap", insns, vec![map]);
        if verify(&prog, &CtxLayout::empty()).is_ok() {
            let env = FixedEnv::new();
            let res = run_program(&prog, &mut [], &CtxLayout::empty(), &env);
            prop_assert!(res.is_ok(), "verified map program faulted: {:?}", res);
        }
    }

    /// Binary encode/decode is lossless for any instruction sequence whose
    /// jumps stay inside the program.
    #[test]
    fn encode_decode_roundtrip(insns in proptest::collection::vec(insn_strategy(), 1..32)) {
        // Clamp jump offsets to stay inside the program so `encode` does not
        // panic (the verifier owns out-of-bounds detection).
        let clamped = clamp_jumps(insns);
        let raw = encode(&clamped);
        let back = decode(&raw).expect("decode of encoded program");
        prop_assert_eq!(clamped, back);
    }

    /// The assembler parses everything the disassembler prints.
    #[test]
    fn disassemble_assemble_roundtrip(prog in program_strategy()) {
        let text = disassemble(&prog);
        let back = assemble_named("fuzz", &text, &[]).expect("reassemble");
        prop_assert_eq!(prog.insns(), back.insns());
    }

    /// Hash maps behave like a bounded std::HashMap.
    #[test]
    fn hash_map_matches_model(ops in proptest::collection::vec(
        (0u8..3, 0u32..8, any::<u64>()), 1..200)
    ) {
        let map = Map::new(MapDef {
            name: "model".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: 4,
        });
        let mut model: std::collections::HashMap<u32, u64> = Default::default();
        for (op, key, val) in ops {
            let k = key.to_le_bytes();
            match op {
                0 => {
                    let can_insert = model.contains_key(&key) || model.len() < 4;
                    let res = map.update(&k, &val.to_le_bytes(), 0);
                    if can_insert {
                        prop_assert!(res.is_ok());
                        model.insert(key, val);
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                1 => {
                    let res = map.delete(&k);
                    prop_assert_eq!(res.is_ok(), model.remove(&key).is_some());
                }
                _ => {
                    let got = map.lookup_copy(&k, 0).map(|v| {
                        let mut b = [0u8; 8];
                        b.copy_from_slice(&v);
                        u64::from_le_bytes(b)
                    });
                    prop_assert_eq!(got, model.get(&key).copied());
                }
            }
        }
    }
}
