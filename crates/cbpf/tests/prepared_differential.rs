//! Differential property tests: the prepared fast path must be
//! observationally identical to the legacy interpreter on every program
//! the verifier accepts — same return value, same executed-instruction
//! count, same context side effects, same map effects, and the same
//! faults under a constrained budget.

use std::sync::Arc;

use proptest::prelude::*;

use cbpf::ctx::{CtxLayout, FieldAccess};
use cbpf::helpers::{FixedEnv, HelperId};
use cbpf::insn::{AluOp, Insn, JmpOp, MemSize, Operand, Reg};
use cbpf::interp::run_with_budget;
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::program::Program;
use cbpf::verifier::verify;

const BUDGET: u64 = 1 << 16;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..=10).prop_map(Reg)
}

fn alu_op_strategy() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn jmp_op_strategy() -> impl Strategy<Value = JmpOp> {
    proptest::sample::select(JmpOp::ALL.to_vec())
}

fn mem_size_strategy() -> impl Strategy<Value = MemSize> {
    proptest::sample::select(vec![MemSize::B, MemSize::H, MemSize::W, MemSize::Dw])
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        (-64i32..64).prop_map(Operand::Imm),
    ]
}

/// Arbitrary plausible instructions (same bias as the verifier soundness
/// fuzzer: small jumps, stack-relative accesses, real helpers).
fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (
            any::<bool>(),
            alu_op_strategy(),
            reg_strategy(),
            operand_strategy()
        )
            .prop_map(|(wide, op, dst, src)| Insn::Alu {
                wide,
                op,
                dst,
                src: if op == AluOp::Neg {
                    Operand::Imm(0)
                } else {
                    src
                },
            }),
        (reg_strategy(), any::<u64>()).prop_map(|(dst, imm)| Insn::LdImm64 { dst, imm }),
        (
            mem_size_strategy(),
            reg_strategy(),
            reg_strategy(),
            (-72i16..16)
        )
            .prop_map(|(size, dst, base, off)| Insn::Load {
                size,
                dst,
                base,
                off
            }),
        (
            mem_size_strategy(),
            reg_strategy(),
            (-72i16..16),
            operand_strategy()
        )
            .prop_map(|(size, base, off, src)| Insn::Store {
                size,
                base,
                off,
                src
            }),
        (-4i16..8).prop_map(|off| Insn::Ja { off }),
        (
            jmp_op_strategy(),
            reg_strategy(),
            operand_strategy(),
            (-4i16..8)
        )
            .prop_map(|(op, dst, src, off)| Insn::Jmp { op, dst, src, off }),
        prop_oneof![Just(4u32), Just(5), Just(6), Just(7), Just(8)]
            .prop_map(|helper| Insn::Call { helper }),
        Just(Insn::Exit),
    ]
}

fn clamp_jumps(insns: Vec<Insn>) -> Vec<Insn> {
    let len = insns.len();
    insns
        .into_iter()
        .enumerate()
        .map(|(pc, i)| match i {
            Insn::Ja { off } => {
                let t = (pc as i64 + 1 + i64::from(off)).clamp(0, len as i64);
                Insn::Ja {
                    off: (t - pc as i64 - 1) as i16,
                }
            }
            Insn::Jmp { op, dst, src, off } => {
                let t = (pc as i64 + 1 + i64::from(off)).clamp(0, len as i64);
                Insn::Jmp {
                    op,
                    dst,
                    src,
                    off: (t - pc as i64 - 1) as i16,
                }
            }
            other => other,
        })
        .collect()
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(insn_strategy(), 1..24).prop_map(|mut insns| {
        insns.insert(
            0,
            Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(0),
            },
        );
        insns.push(Insn::Exit);
        Program::new("fuzz", clamp_jumps(insns), Vec::new())
    })
}

fn test_layout() -> CtxLayout {
    CtxLayout::builder()
        .field("a", 8, FieldAccess::ReadOnly)
        .field("b", 4, FieldAccess::ReadOnly)
        .field("out", 8, FieldAccess::ReadWrite)
        .build()
}

fn fill_ctx(layout: &CtxLayout, seed: u64) -> Vec<u8> {
    let mut ctx = vec![0u8; layout.size()];
    for (i, b) in ctx.iter_mut().enumerate() {
        *b = (seed.rotate_left((i as u32 * 7) % 63) & 0xff) as u8;
    }
    ctx
}

fn seeded_map() -> Arc<Map> {
    let map = Arc::new(Map::new(MapDef {
        name: "m".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: 4,
    }));
    map.update(&0u32.to_le_bytes(), &7u64.to_le_bytes(), 0)
        .unwrap();
    map.update(&2u32.to_le_bytes(), &9u64.to_le_bytes(), 0)
        .unwrap();
    map
}

fn map_snapshot(map: &Map) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries: Vec<_> = map
        .keys()
        .into_iter()
        .map(|k| {
            let v = map.lookup_copy(&k, 0).unwrap();
            (k, v)
        })
        .collect();
    entries.sort();
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Accepted programs produce identical `RunReport`s (value and insn
    /// count) and identical context side effects on both engines, across
    /// arbitrary environments and context contents.
    #[test]
    fn prepared_matches_legacy(
        prog in program_strategy(),
        cpu in 0u32..128,
        numa in 0u32..8,
        time in any::<u64>(),
        pid in any::<u64>(),
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let env = FixedEnv::new().cpu(cpu).numa(numa).time(time).with_pid(pid);
            let mut ctx_legacy = fill_ctx(&layout, ctx_seed);
            let mut ctx_prepared = ctx_legacy.clone();
            let legacy = run_with_budget(&prog, &mut ctx_legacy, &layout, &env, BUDGET);
            let prepared = prog.prepare(&layout).run(&mut ctx_prepared, &env, BUDGET);
            prop_assert_eq!(&legacy, &prepared, "reports diverge");
            prop_assert_eq!(ctx_legacy, ctx_prepared, "context effects diverge");
        }
    }

    /// Accepted map programs leave both engines' maps in identical states
    /// and agree on the report, including env traces.
    #[test]
    fn prepared_matches_legacy_with_maps(
        body in proptest::collection::vec(insn_strategy(), 1..16),
        key in 0i32..4,
    ) {
        let build = |map: Arc<Map>| {
            let mut insns = vec![
                Insn::LdMapRef { dst: Reg::R1, map_id: 0 },
                Insn::Store { size: MemSize::W, base: Reg::R10, off: -4, src: Operand::Imm(key) },
                Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R2, src: Operand::Reg(Reg::R10) },
                Insn::Alu { wide: true, op: AluOp::Add, dst: Reg::R2, src: Operand::Imm(-4) },
                Insn::Call { helper: HelperId::MapLookup as u32 },
            ];
            insns.extend(body.iter().cloned());
            insns.push(Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R0, src: Operand::Imm(0) });
            insns.push(Insn::Exit);
            Program::new("fuzzmap", insns, vec![map])
        };
        let map_legacy = seeded_map();
        let map_prepared = seeded_map();
        let prog_legacy = build(Arc::clone(&map_legacy));
        let prog_prepared = build(Arc::clone(&map_prepared));
        if verify(&prog_legacy, &CtxLayout::empty()).is_ok() {
            let env_legacy = FixedEnv::new();
            let env_prepared = FixedEnv::new();
            let legacy =
                run_with_budget(&prog_legacy, &mut [], &CtxLayout::empty(), &env_legacy, BUDGET);
            let prepared = prog_prepared
                .prepare(&CtxLayout::empty())
                .run(&mut [], &env_prepared, BUDGET);
            prop_assert_eq!(&legacy, &prepared, "reports diverge");
            prop_assert_eq!(
                map_snapshot(&map_legacy),
                map_snapshot(&map_prepared),
                "map effects diverge"
            );
            prop_assert_eq!(env_legacy.traces(), env_prepared.traces(), "traces diverge");
        }
    }

    /// `trace_emit` charges its fixed weight identically on both engines
    /// at *every* budget: same `RunReport::insns`, same `BudgetExhausted`
    /// boundary, same captured payloads. This is what keeps figure CSVs
    /// byte-identical when tracing is disarmed — the weight never depends
    /// on the telemetry plane's armed state.
    #[test]
    fn trace_emit_weight_is_identical_on_both_engines(
        len in 1i32..=16,
        fill in any::<u64>(),
        budget in 0u64..32,
    ) {
        let insns = vec![
            Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R0, src: Operand::Imm(0) },
            Insn::LdImm64 { dst: Reg::R3, imm: fill },
            Insn::Store { size: MemSize::Dw, base: Reg::R10, off: -16, src: Operand::Reg(Reg::R3) },
            Insn::Store { size: MemSize::Dw, base: Reg::R10, off: -8, src: Operand::Reg(Reg::R3) },
            Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R1, src: Operand::Reg(Reg::R10) },
            Insn::Alu { wide: true, op: AluOp::Add, dst: Reg::R1, src: Operand::Imm(-16) },
            Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R2, src: Operand::Imm(len) },
            Insn::Call { helper: HelperId::TraceEmit as u32 },
            Insn::Exit,
        ];
        let prog = Program::new("emit", insns, Vec::new());
        prop_assert!(verify(&prog, &CtxLayout::empty()).is_ok());
        let env_legacy = FixedEnv::new();
        let env_prepared = FixedEnv::new();
        let legacy = run_with_budget(&prog, &mut [], &CtxLayout::empty(), &env_legacy, budget);
        let prepared = prog
            .prepare(&CtxLayout::empty())
            .run(&mut [], &env_prepared, budget);
        prop_assert_eq!(&legacy, &prepared, "trace_emit budget accounting diverges");
        prop_assert_eq!(env_legacy.emits(), env_prepared.emits(), "payloads diverge");
        // 8 unit-weight instructions + TRACE_EMIT_WEIGHT for the call.
        let full_cost = 8 + u64::from(cbpf::helpers::TRACE_EMIT_WEIGHT);
        if budget >= full_cost {
            let report = legacy.expect("enough budget");
            prop_assert_eq!(report.insns, full_cost);
            prop_assert_eq!(report.ret, 0);
            let expect = fill.to_le_bytes().repeat(2)[..len as usize].to_vec();
            prop_assert_eq!(env_legacy.emits(), vec![expect]);
        } else {
            prop_assert!(legacy.is_err(), "must exhaust below the fixed cost");
        }
    }

    /// With a budget too small to finish, both engines fail with the same
    /// `BudgetExhausted` at the same point (the prepared loop keeps the
    /// budget-before-fetch ordering).
    #[test]
    fn budget_semantics_match(
        prog in program_strategy(),
        budget in 0u64..24,
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let env = FixedEnv::new();
            let mut ctx_legacy = fill_ctx(&layout, ctx_seed);
            let mut ctx_prepared = ctx_legacy.clone();
            let legacy = run_with_budget(&prog, &mut ctx_legacy, &layout, &env, budget);
            let prepared = prog.prepare(&layout).run(&mut ctx_prepared, &env, budget);
            prop_assert_eq!(&legacy, &prepared, "budget behavior diverges");
            prop_assert_eq!(ctx_legacy, ctx_prepared, "partial context effects diverge");
        }
    }
}
