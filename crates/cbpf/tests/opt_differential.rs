//! Differential property tests for the prepare-time optimizer and the
//! sharded map engine.
//!
//! The optimizer contract: for every program the verifier accepts, the
//! optimized prepared form is observationally identical to both the
//! unoptimized prepared form and the legacy interpreter — same return
//! value, same executed-instruction count, same context and map side
//! effects, same faults — at every budget. Each property here runs the
//! three engines (plus each optimizer pass in isolation) on the same
//! inputs and demands bit-equality.
//!
//! The map engine contract: the lock-free sharded hash map is
//! linearizable to a plain `HashMap` model under the same capacity
//! rules.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use cbpf::ctx::{CtxLayout, FieldAccess};
use cbpf::error::{FaultKind, MapError};
use cbpf::fault::{FaultInjector, FaultPlan};
use cbpf::helpers::{FixedEnv, HelperId};
use cbpf::insn::{AluOp, Insn, JmpOp, MemSize, Operand, Reg};
use cbpf::interp::run_with_budget;
use cbpf::map::{Map, MapDef, MapKind};
use cbpf::opt::OptConfig;
use cbpf::program::Program;
use cbpf::verifier::verify;
use cbpf::ExecTier;

const BUDGET: u64 = 1 << 16;

/// Optimizer configurations under test: the full default plus each pass
/// alone, all diffed against `OptConfig::none()` and the legacy
/// interpreter.
fn configs() -> [OptConfig; 4] {
    [
        OptConfig::default(),
        OptConfig {
            const_fold: true,
            ..OptConfig::none()
        },
        OptConfig {
            dead_store: true,
            ..OptConfig::none()
        },
        OptConfig {
            fuse: true,
            ..OptConfig::none()
        },
    ]
}

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..=10).prop_map(Reg)
}

fn alu_op_strategy() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn jmp_op_strategy() -> impl Strategy<Value = JmpOp> {
    proptest::sample::select(JmpOp::ALL.to_vec())
}

fn mem_size_strategy() -> impl Strategy<Value = MemSize> {
    proptest::sample::select(vec![MemSize::B, MemSize::H, MemSize::W, MemSize::Dw])
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy().prop_map(Operand::Reg),
        (-64i32..64).prop_map(Operand::Imm),
    ]
}

/// Arbitrary plausible instructions, biased like the verifier soundness
/// fuzzer (small jumps, stack-relative accesses, real helpers) so a
/// healthy fraction of generated programs verifies and the optimizer
/// sees folds, dead stores and fusable pairs.
fn insn_strategy() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (
            any::<bool>(),
            alu_op_strategy(),
            reg_strategy(),
            operand_strategy()
        )
            .prop_map(|(wide, op, dst, src)| Insn::Alu {
                wide,
                op,
                dst,
                src: if op == AluOp::Neg {
                    Operand::Imm(0)
                } else {
                    src
                },
            }),
        (reg_strategy(), any::<u64>()).prop_map(|(dst, imm)| Insn::LdImm64 { dst, imm }),
        (
            mem_size_strategy(),
            reg_strategy(),
            reg_strategy(),
            (-72i16..16)
        )
            .prop_map(|(size, dst, base, off)| Insn::Load {
                size,
                dst,
                base,
                off
            }),
        (
            mem_size_strategy(),
            reg_strategy(),
            (-72i16..16),
            operand_strategy()
        )
            .prop_map(|(size, base, off, src)| Insn::Store {
                size,
                base,
                off,
                src
            }),
        (-4i16..8).prop_map(|off| Insn::Ja { off }),
        (
            jmp_op_strategy(),
            reg_strategy(),
            operand_strategy(),
            (-4i16..8)
        )
            .prop_map(|(op, dst, src, off)| Insn::Jmp { op, dst, src, off }),
        prop_oneof![Just(4u32), Just(5), Just(6), Just(7), Just(8)]
            .prop_map(|helper| Insn::Call { helper }),
        Just(Insn::Exit),
    ]
}

fn clamp_jumps(insns: Vec<Insn>) -> Vec<Insn> {
    let len = insns.len();
    insns
        .into_iter()
        .enumerate()
        .map(|(pc, i)| match i {
            Insn::Ja { off } => {
                let t = (pc as i64 + 1 + i64::from(off)).clamp(0, len as i64);
                Insn::Ja {
                    off: (t - pc as i64 - 1) as i16,
                }
            }
            Insn::Jmp { op, dst, src, off } => {
                let t = (pc as i64 + 1 + i64::from(off)).clamp(0, len as i64);
                Insn::Jmp {
                    op,
                    dst,
                    src,
                    off: (t - pc as i64 - 1) as i16,
                }
            }
            other => other,
        })
        .collect()
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(insn_strategy(), 1..24).prop_map(|mut insns| {
        insns.insert(
            0,
            Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(0),
            },
        );
        insns.push(Insn::Exit);
        Program::new("fuzz", clamp_jumps(insns), Vec::new())
    })
}

fn test_layout() -> CtxLayout {
    CtxLayout::builder()
        .field("a", 8, FieldAccess::ReadOnly)
        .field("b", 4, FieldAccess::ReadOnly)
        .field("out", 8, FieldAccess::ReadWrite)
        .build()
}

fn fill_ctx(layout: &CtxLayout, seed: u64) -> Vec<u8> {
    let mut ctx = vec![0u8; layout.size()];
    for (i, b) in ctx.iter_mut().enumerate() {
        *b = (seed.rotate_left((i as u32 * 7) % 63) & 0xff) as u8;
    }
    ctx
}

fn seeded_map() -> Arc<Map> {
    let map = Arc::new(Map::new(MapDef {
        name: "m".into(),
        kind: MapKind::Hash,
        key_size: 4,
        value_size: 8,
        max_entries: 4,
    }));
    map.update(&0u32.to_le_bytes(), &7u64.to_le_bytes(), 0)
        .unwrap();
    map.update(&2u32.to_le_bytes(), &9u64.to_le_bytes(), 0)
        .unwrap();
    map
}

fn map_snapshot(map: &Map) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries: Vec<_> = map
        .keys()
        .into_iter()
        .map(|k| {
            let v = map.lookup_copy(&k, 0).unwrap();
            (k, v)
        })
        .collect();
    entries.sort();
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Full budget: the optimized form (and every single-pass form)
    /// matches the unoptimized form and the legacy interpreter on
    /// report, return value, instruction count and context effects.
    #[test]
    fn optimized_matches_unoptimized_and_legacy(
        prog in program_strategy(),
        cpu in 0u32..128,
        numa in 0u32..8,
        time in any::<u64>(),
        pid in any::<u64>(),
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let env = FixedEnv::new().cpu(cpu).numa(numa).time(time).with_pid(pid);
            let mut ctx_legacy = fill_ctx(&layout, ctx_seed);
            let legacy = run_with_budget(&prog, &mut ctx_legacy, &layout, &env, BUDGET);
            let mut ctx_unopt = fill_ctx(&layout, ctx_seed);
            let unopt = prog
                .prepare_with(&layout, OptConfig::none())
                .run(&mut ctx_unopt, &env, BUDGET);
            prop_assert_eq!(&legacy, &unopt, "unoptimized prepared diverges from legacy");
            prop_assert_eq!(&ctx_legacy, &ctx_unopt, "unoptimized context effects diverge");
            for cfg in configs() {
                let mut ctx_opt = fill_ctx(&layout, ctx_seed);
                let opt = prog.prepare_with(&layout, cfg).run(&mut ctx_opt, &env, BUDGET);
                prop_assert_eq!(&unopt, &opt, "optimizer {:?} changed the report", cfg);
                prop_assert_eq!(&ctx_unopt, &ctx_opt, "optimizer {:?} changed context effects", cfg);
            }
        }
    }

    /// Map programs: identical final map contents and env traces across
    /// legacy, unoptimized and every optimizer configuration.
    #[test]
    fn optimized_preserves_map_side_effects(
        body in proptest::collection::vec(insn_strategy(), 1..16),
        key in 0i32..4,
    ) {
        let build = |map: Arc<Map>| {
            let mut insns = vec![
                Insn::LdMapRef { dst: Reg::R1, map_id: 0 },
                Insn::Store { size: MemSize::W, base: Reg::R10, off: -4, src: Operand::Imm(key) },
                Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R2, src: Operand::Reg(Reg::R10) },
                Insn::Alu { wide: true, op: AluOp::Add, dst: Reg::R2, src: Operand::Imm(-4) },
                Insn::Call { helper: HelperId::MapLookup as u32 },
            ];
            insns.extend(body.iter().cloned());
            insns.push(Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R0, src: Operand::Imm(0) });
            insns.push(Insn::Exit);
            Program::new("fuzzmap", insns, vec![map])
        };
        let map_legacy = seeded_map();
        let prog_legacy = build(Arc::clone(&map_legacy));
        if verify(&prog_legacy, &CtxLayout::empty()).is_ok() {
            let env_legacy = FixedEnv::new();
            let legacy =
                run_with_budget(&prog_legacy, &mut [], &CtxLayout::empty(), &env_legacy, BUDGET);
            let snap_legacy = map_snapshot(&map_legacy);

            let map_unopt = seeded_map();
            let env_unopt = FixedEnv::new();
            let unopt = build(Arc::clone(&map_unopt))
                .prepare_with(&CtxLayout::empty(), OptConfig::none())
                .run(&mut [], &env_unopt, BUDGET);
            prop_assert_eq!(&legacy, &unopt, "reports diverge");
            prop_assert_eq!(&snap_legacy, &map_snapshot(&map_unopt), "map effects diverge");
            prop_assert_eq!(env_legacy.traces(), env_unopt.traces(), "traces diverge");

            for cfg in configs() {
                let map_opt = seeded_map();
                let env_opt = FixedEnv::new();
                let opt = build(Arc::clone(&map_opt))
                    .prepare_with(&CtxLayout::empty(), cfg)
                    .run(&mut [], &env_opt, BUDGET);
                prop_assert_eq!(&unopt, &opt, "optimizer {:?} changed the report", cfg);
                prop_assert_eq!(
                    &snap_legacy,
                    &map_snapshot(&map_opt),
                    "optimizer {:?} changed map effects", cfg
                );
                prop_assert_eq!(env_legacy.traces(), env_opt.traces(), "traces diverge");
            }
        }
    }

    /// Tiny budgets: fused slots pre-charge their whole pair, so budget
    /// exhaustion fires at exactly the same point (and with the same
    /// partial side effects) as the unfused program, at every budget.
    #[test]
    fn optimized_budget_accounting_is_exact(
        prog in program_strategy(),
        budget in 0u64..24,
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let env = FixedEnv::new();
            let mut ctx_legacy = fill_ctx(&layout, ctx_seed);
            let legacy = run_with_budget(&prog, &mut ctx_legacy, &layout, &env, budget);
            for cfg in configs() {
                let mut ctx_opt = fill_ctx(&layout, ctx_seed);
                let opt = prog.prepare_with(&layout, cfg).run(&mut ctx_opt, &env, budget);
                prop_assert_eq!(&legacy, &opt, "optimizer {:?} budget behavior diverges", cfg);
                prop_assert_eq!(&ctx_legacy, &ctx_opt, "optimizer {:?} partial effects diverge", cfg);
            }
        }
    }

    /// The compiled tier ([`cbpf::jit`]) is observationally identical to
    /// the prepared interpreter on arbitrary verified programs: same
    /// report (value and executed-instruction count), same fault, same
    /// context mutations, at full budget.
    #[test]
    fn jit_matches_interp_report_and_ctx(
        prog in program_strategy(),
        cpu in 0u32..128,
        numa in 0u32..8,
        time in any::<u64>(),
        pid in any::<u64>(),
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let env = FixedEnv::new().cpu(cpu).numa(numa).time(time).with_pid(pid);
            let prepared = prog.prepare(&layout);
            let mut ctx_interp = fill_ctx(&layout, ctx_seed);
            let interp = prepared.run_tier(ExecTier::Interp, &mut ctx_interp, &env, BUDGET);
            let mut ctx_jit = fill_ctx(&layout, ctx_seed);
            let jit = prepared.run_tier(ExecTier::Jit, &mut ctx_jit, &env, BUDGET);
            prop_assert_eq!(&interp, &jit, "jit report diverges from interpreter");
            prop_assert_eq!(&ctx_interp, &ctx_jit, "jit context effects diverge");
        }
    }

    /// Map programs on the compiled tier: identical final map contents
    /// and env traces. Exercises the jit's region-tracked value access,
    /// constant-key lookup caching and RMW fusion against the
    /// interpreter's generic paths.
    #[test]
    fn jit_preserves_map_side_effects(
        body in proptest::collection::vec(insn_strategy(), 1..16),
        key in 0i32..4,
    ) {
        let build = |map: Arc<Map>| {
            let mut insns = vec![
                Insn::LdMapRef { dst: Reg::R1, map_id: 0 },
                Insn::Store { size: MemSize::W, base: Reg::R10, off: -4, src: Operand::Imm(key) },
                Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R2, src: Operand::Reg(Reg::R10) },
                Insn::Alu { wide: true, op: AluOp::Add, dst: Reg::R2, src: Operand::Imm(-4) },
                Insn::Call { helper: HelperId::MapLookup as u32 },
            ];
            insns.extend(body.iter().cloned());
            insns.push(Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R0, src: Operand::Imm(0) });
            insns.push(Insn::Exit);
            Program::new("fuzzjit", insns, vec![map])
        };
        let map_interp = seeded_map();
        let prog_interp = build(Arc::clone(&map_interp));
        if verify(&prog_interp, &CtxLayout::empty()).is_ok() {
            let env_interp = FixedEnv::new();
            let interp = prog_interp
                .prepare(&CtxLayout::empty())
                .run_tier(ExecTier::Interp, &mut [], &env_interp, BUDGET);

            let map_jit = seeded_map();
            let env_jit = FixedEnv::new();
            let jit = build(Arc::clone(&map_jit))
                .prepare(&CtxLayout::empty())
                .run_tier(ExecTier::Jit, &mut [], &env_jit, BUDGET);
            prop_assert_eq!(&interp, &jit, "jit report diverges");
            prop_assert_eq!(
                &map_snapshot(&map_interp),
                &map_snapshot(&map_jit),
                "jit map effects diverge"
            );
            prop_assert_eq!(env_interp.traces(), env_jit.traces(), "jit traces diverge");
        }
    }

    /// Tiny budgets on the compiled tier: jit steps pre-charge whole
    /// pure-prefix groups, so exhaustion must fire at exactly the same
    /// budgets with the same partial context effects as the interpreter.
    #[test]
    fn jit_budget_accounting_is_exact(
        prog in program_strategy(),
        budget in 0u64..24,
        ctx_seed in any::<u64>(),
    ) {
        let layout = test_layout();
        if verify(&prog, &layout).is_ok() {
            let env = FixedEnv::new();
            let prepared = prog.prepare(&layout);
            let mut ctx_interp = fill_ctx(&layout, ctx_seed);
            let interp = prepared.run_tier(ExecTier::Interp, &mut ctx_interp, &env, budget);
            let mut ctx_jit = fill_ctx(&layout, ctx_seed);
            let jit = prepared.run_tier(ExecTier::Jit, &mut ctx_jit, &env, budget);
            prop_assert_eq!(&interp, &jit, "jit budget behavior diverges");
            prop_assert_eq!(&ctx_interp, &ctx_jit, "jit partial effects diverge");
        }
    }

    /// Deterministic fault injection hits both tiers identically: the
    /// same plan (seed, invocation trigger, helper rate) against the
    /// same invocation sequence produces the same faults at the same
    /// invocations, and the same map/trace state afterwards.
    #[test]
    fn jit_fault_injection_parity(
        body in proptest::collection::vec(insn_strategy(), 1..16),
        key in 0i32..4,
        seed in any::<u64>(),
        trigger in 1u64..8,
        per_mille in 0u16..1000,
        kind_ix in 0usize..4,
        invocations in 1usize..12,
    ) {
        let kind = [FaultKind::Budget, FaultKind::Trap, FaultKind::Helper, FaultKind::Map][kind_ix];
        let build = |map: Arc<Map>| {
            let mut insns = vec![
                Insn::LdMapRef { dst: Reg::R1, map_id: 0 },
                Insn::Store { size: MemSize::W, base: Reg::R10, off: -4, src: Operand::Imm(key) },
                Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R2, src: Operand::Reg(Reg::R10) },
                Insn::Alu { wide: true, op: AluOp::Add, dst: Reg::R2, src: Operand::Imm(-4) },
                Insn::Call { helper: HelperId::MapLookup as u32 },
            ];
            insns.extend(body.iter().cloned());
            insns.push(Insn::Alu { wide: true, op: AluOp::Mov, dst: Reg::R0, src: Operand::Imm(0) });
            insns.push(Insn::Exit);
            Program::new("fuzzfault", insns, vec![map])
        };
        let map_interp = seeded_map();
        let prog_interp = build(Arc::clone(&map_interp));
        if verify(&prog_interp, &CtxLayout::empty()).is_ok() {
            let plan = FaultPlan {
                seed,
                fault_on_invocation: Some(trigger),
                repeat: false,
                helper_fault_per_mille: per_mille,
                kind,
            };
            let env_interp = FixedEnv::new();
            let inj_interp = FaultInjector::new(plan.clone());
            let prepared_interp = prog_interp.prepare(&CtxLayout::empty());
            let mut got_interp = Vec::with_capacity(invocations);
            for _ in 0..invocations {
                got_interp.push(prepared_interp.run_tier_with_faults(
                    ExecTier::Interp, &mut [], &env_interp, BUDGET, Some(&inj_interp),
                ));
            }

            let map_jit = seeded_map();
            let env_jit = FixedEnv::new();
            let inj_jit = FaultInjector::new(plan);
            let prepared_jit = build(Arc::clone(&map_jit)).prepare(&CtxLayout::empty());
            let mut got_jit = Vec::with_capacity(invocations);
            for _ in 0..invocations {
                got_jit.push(prepared_jit.run_tier_with_faults(
                    ExecTier::Jit, &mut [], &env_jit, BUDGET, Some(&inj_jit),
                ));
            }

            prop_assert_eq!(&got_interp, &got_jit, "injected fault sequences diverge");
            prop_assert_eq!(inj_interp.injected(), inj_jit.injected(), "injection counts diverge");
            prop_assert_eq!(
                &map_snapshot(&map_interp),
                &map_snapshot(&map_jit),
                "post-fault map state diverges"
            );
            prop_assert_eq!(env_interp.traces(), env_jit.traces(), "post-fault traces diverge");
        }
    }

    /// The sharded lock-free hash map is equivalent to a plain `HashMap`
    /// model under the same capacity rule, operation by operation
    /// (update/delete/lookup over a key space larger than capacity, so
    /// `Full`, `NoSuchKey` and tombstone-reuse paths all fire).
    #[test]
    fn sharded_hash_map_matches_model(
        ops in proptest::collection::vec((0u8..3, 0u32..12u32, any::<u64>()), 1..64),
    ) {
        const MAX: usize = 8;
        let map = Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: MAX,
        });
        let mut model: HashMap<u32, u64> = HashMap::new();
        for (op, key, val) in ops {
            let k = key.to_le_bytes();
            match op {
                0 => {
                    let got = map.update(&k, &val.to_le_bytes(), 0);
                    if model.contains_key(&key) || model.len() < MAX {
                        prop_assert_eq!(got, Ok(()));
                        model.insert(key, val);
                    } else {
                        prop_assert_eq!(got, Err(MapError::Full));
                    }
                }
                1 => {
                    let got = map.delete(&k);
                    if model.remove(&key).is_some() {
                        prop_assert_eq!(got, Ok(()));
                    } else {
                        prop_assert_eq!(got, Err(MapError::NoSuchKey));
                    }
                }
                _ => {
                    let got = map.lookup_copy(&k, 0);
                    let want = model.get(&key).map(|v| v.to_le_bytes().to_vec());
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(map.len(), model.len(), "live counts diverge");
        }
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = model
            .iter()
            .map(|(k, v)| (k.to_le_bytes().to_vec(), v.to_le_bytes().to_vec()))
            .collect();
        want.sort();
        prop_assert_eq!(map_snapshot(&map), want, "final contents diverge");
    }

    /// Concurrent updates from racing threads agree with the sequential
    /// model when the per-thread key sets are disjoint (each thread's
    /// writes land intact; no lost updates across shards).
    #[test]
    fn concurrent_disjoint_updates_match_model(
        per_thread in 1usize..24,
        seed in any::<u64>(),
    ) {
        const THREADS: u32 = 4;
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: 512,
        }));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per_thread as u32 {
                        let key = t * 1000 + i;
                        let val = seed ^ u64::from(key);
                        map.update(&key.to_le_bytes(), &val.to_le_bytes(), t).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(map.len(), per_thread * THREADS as usize);
        for t in 0..THREADS {
            for i in 0..per_thread as u32 {
                let key = t * 1000 + i;
                let want = (seed ^ u64::from(key)).to_le_bytes().to_vec();
                prop_assert_eq!(map.lookup_copy(&key.to_le_bytes(), 0), Some(want));
            }
        }
    }
}
