//! Property tests for the C-style policy frontend.
//!
//! The central property mirrors the verifier-soundness one: any program
//! the compiler emits must pass the verifier, and then run without
//! faulting — for arbitrary generated sources and context contents. A
//! second property checks the compiler against a direct AST evaluator.

use cbpf::ctx::{CtxLayout, FieldAccess};
use cbpf::dsl::compile;
use cbpf::helpers::FixedEnv;
use cbpf::interp::run_program;
use cbpf::verifier::verify;
use proptest::prelude::*;

fn layout() -> CtxLayout {
    CtxLayout::builder()
        .field("a", 8, FieldAccess::ReadOnly)
        .field("b", 4, FieldAccess::ReadOnly)
        .field("c", 8, FieldAccess::ReadOnly)
        .build()
}

/// A miniature expression AST we can both print as source and evaluate.
#[derive(Clone, Debug)]
enum E {
    Num(u32),
    Field(&'static str),
    Cpu,
    Un(&'static str, Box<E>),
    Bin(&'static str, Box<E>, Box<E>),
}

fn to_src(e: &E) -> String {
    match e {
        E::Num(v) => v.to_string(),
        E::Field(f) => f.to_string(),
        E::Cpu => "cpu_id()".to_string(),
        E::Un(op, x) => format!("{op}({})", to_src(x)),
        E::Bin(op, l, r) => format!("({} {op} {})", to_src(l), to_src(r)),
    }
}

// The explicit zero branches mirror the documented eBPF semantics.
#[allow(unknown_lints, clippy::manual_checked_ops)]
fn eval(e: &E, a: u64, b: u32, c: u64, cpu: u32) -> u64 {
    let norm = |b: bool| u64::from(b);
    match e {
        E::Num(v) => u64::from(*v),
        E::Field("a") => a,
        E::Field("b") => u64::from(b),
        E::Field(_) => c,
        E::Cpu => u64::from(cpu),
        E::Un("-", x) => (eval(x, a, b, c, cpu) as i64).wrapping_neg() as u64,
        E::Un("~", x) => !eval(x, a, b, c, cpu),
        E::Un(_, x) => norm(eval(x, a, b, c, cpu) == 0), // "!"
        E::Bin(op, l, r) => {
            let (x, y) = (eval(l, a, b, c, cpu), eval(r, a, b, c, cpu));
            match *op {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => {
                    if y == 0 {
                        0
                    } else {
                        x / y
                    }
                }
                "%" => {
                    if y == 0 {
                        x
                    } else {
                        x % y
                    }
                }
                "&" => x & y,
                "|" => x | y,
                "^" => x ^ y,
                "<<" => x.wrapping_shl(y as u32 & 63),
                ">>" => x.wrapping_shr(y as u32 & 63),
                "==" => norm(x == y),
                "!=" => norm(x != y),
                "<" => norm((x as i64) < (y as i64)),
                "<=" => norm((x as i64) <= (y as i64)),
                ">" => norm((x as i64) > (y as i64)),
                ">=" => norm((x as i64) >= (y as i64)),
                "&&" => norm(x != 0 && y != 0),
                "||" => norm(x != 0 || y != 0),
                other => unreachable!("op {other}"),
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0u32..1000).prop_map(E::Num),
        proptest::sample::select(vec!["a", "b", "c"]).prop_map(E::Field),
        Just(E::Cpu),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (proptest::sample::select(vec!["-", "~", "!"]), inner.clone())
                .prop_map(|(op, x)| E::Un(op, Box::new(x))),
            (
                proptest::sample::select(vec![
                    "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">",
                    ">=", "&&", "||",
                ]),
                inner.clone(),
                inner
            )
                .prop_map(|(op, l, r)| E::Bin(op, Box::new(l), Box::new(r))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    /// Compile → verify → run never faults, and the result matches a
    /// direct evaluation of the AST.
    #[test]
    fn compiled_matches_reference(
        e in expr_strategy(),
        a in any::<u64>(),
        b in any::<u32>(),
        c in any::<u64>(),
        cpu in 0u32..128,
    ) {
        let l = layout();
        let src = format!("return {};", to_src(&e));
        let prog = compile("fuzz", &src, &l).expect("generated source compiles");
        // Division by a *constant* zero is a static rejection (the verifier
        // tracks known values); the runtime semantics only apply to dynamic
        // zeros. Discard such cases.
        match verify(&prog, &l) {
            Ok(()) => {}
            Err(cbpf::VerifyError::DivByZero { .. }) => return Ok(()),
            Err(e) => panic!("compiler output failed verification: {e}\nsrc: {src}"),
        }
        let mut ctx = vec![0u8; l.size()];
        l.write(&mut ctx, "a", a);
        l.write(&mut ctx, "b", u64::from(b));
        l.write(&mut ctx, "c", c);
        let env = FixedEnv::new().cpu(cpu);
        let got = run_program(&prog, &mut ctx, &l, &env).expect("runs without fault");
        let want = eval(&e, a, b, c, cpu);
        // Boolean-producing roots are normalized to 0/1 by both sides;
        // arithmetic roots must match bit-for-bit.
        prop_assert_eq!(got, want, "src: {}", src);
    }

    /// Statement-level structures (let/if/else nesting) always verify.
    #[test]
    fn statements_always_verify(
        cond in expr_strategy(),
        v1 in expr_strategy(),
        v2 in expr_strategy(),
    ) {
        let l = layout();
        let src = format!(
            "let x = {}; if ({}) {{ let y = x + 1; return y; }} else {{ return {}; }}",
            to_src(&v1),
            to_src(&cond),
            to_src(&v2),
        );
        let prog = compile("fuzz", &src, &l).expect("compiles");
        match verify(&prog, &l) {
            Ok(()) => {}
            Err(cbpf::VerifyError::DivByZero { .. }) => return Ok(()),
            Err(e) => panic!("verifier: {e}\nsrc: {src}"),
        }
        let mut ctx = vec![0u8; l.size()];
        let env = FixedEnv::new();
        run_program(&prog, &mut ctx, &l, &env).expect("runs");
    }
}
