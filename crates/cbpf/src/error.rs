//! Error types for decoding, assembling, verifying and running programs.

use std::fmt;

/// Error decoding raw instruction slots.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Unknown opcode byte at `pc`.
    BadOpcode {
        /// Slot index.
        pc: usize,
        /// Offending opcode byte.
        op: u8,
    },
    /// Register number out of range at `pc`.
    BadRegister {
        /// Slot index.
        pc: usize,
        /// Offending register number.
        reg: u8,
    },
    /// A two-slot `ldimm64` was cut off at the end of the program.
    TruncatedImm64 {
        /// Slot index of the first half.
        pc: usize,
    },
    /// A jump lands inside a two-slot instruction or outside the program.
    BadJumpTarget {
        /// Slot index of the jump.
        pc: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { pc, op } => {
                write!(f, "unknown opcode {op:#04x} at instruction {pc}")
            }
            DecodeError::BadRegister { pc, reg } => {
                write!(f, "bad register r{reg} at instruction {pc}")
            }
            DecodeError::TruncatedImm64 { pc } => {
                write!(f, "truncated ldimm64 at instruction {pc}")
            }
            DecodeError::BadJumpTarget { pc } => {
                write!(f, "jump at slot {pc} targets an invalid position")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error produced by the assembler.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Rejection reason from the verifier.
///
/// Every variant carries the program counter of the offending instruction so
/// the "notify user" step of the Concord workflow (Fig. 1, step 4) can point
/// at the exact policy line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// The program is empty or exceeds the instruction limit.
    BadProgramSize {
        /// Number of instructions found.
        len: usize,
    },
    /// A jump leaves the program or splits an instruction.
    JumpOutOfBounds {
        /// Offending pc.
        pc: usize,
    },
    /// A backward jump (loop) — rejected to guarantee termination.
    BackEdge {
        /// Offending pc.
        pc: usize,
    },
    /// Execution can fall off the end without `exit`.
    FallOffEnd,
    /// Read of an uninitialized register.
    UninitRegister {
        /// Offending pc.
        pc: usize,
        /// The register.
        reg: u8,
    },
    /// Write to the read-only frame pointer `r10`.
    FramePointerWrite {
        /// Offending pc.
        pc: usize,
    },
    /// A memory access through a non-pointer register.
    NotAPointer {
        /// Offending pc.
        pc: usize,
        /// The register.
        reg: u8,
    },
    /// A memory access outside its region.
    OutOfBounds {
        /// Offending pc.
        pc: usize,
        /// Attempted byte offset.
        off: i64,
        /// Access width in bytes.
        size: usize,
    },
    /// Read of uninitialized stack bytes.
    UninitStack {
        /// Offending pc.
        pc: usize,
        /// Stack byte offset below `r10`.
        off: i64,
    },
    /// Unaligned context or map access.
    Unaligned {
        /// Offending pc.
        pc: usize,
        /// Attempted byte offset.
        off: i64,
    },
    /// Context access that does not match a declared field.
    BadCtxAccess {
        /// Offending pc.
        pc: usize,
        /// Attempted byte offset.
        off: i64,
    },
    /// Write to a read-only context field.
    ReadOnlyCtxField {
        /// Offending pc.
        pc: usize,
        /// Field name.
        field: &'static str,
    },
    /// Pointer arithmetic the verifier cannot bound.
    BadPointerArithmetic {
        /// Offending pc.
        pc: usize,
    },
    /// Division or modulo by a constant zero.
    DivByZero {
        /// Offending pc.
        pc: usize,
    },
    /// Unknown helper id.
    UnknownHelper {
        /// Offending pc.
        pc: usize,
        /// Helper id.
        helper: u32,
    },
    /// Helper argument type mismatch.
    BadHelperArg {
        /// Offending pc.
        pc: usize,
        /// Helper id.
        helper: u32,
        /// 1-based argument index.
        arg: u8,
        /// Description of the expected type.
        expected: &'static str,
    },
    /// Dereference of a possibly-null map value pointer.
    PossiblyNullDeref {
        /// Offending pc.
        pc: usize,
        /// The register.
        reg: u8,
    },
    /// Reference to a map id not present in the program's map table.
    UnknownMap {
        /// Offending pc.
        pc: usize,
        /// Map id.
        map_id: u32,
    },
    /// `exit` with an uninitialized or non-scalar `r0`.
    BadReturnValue {
        /// Offending pc.
        pc: usize,
    },
    /// The verifier's state budget was exhausted (program too branchy).
    TooComplex {
        /// States explored before giving up.
        states: usize,
    },
    /// A lock-safety rule imposed by the hook was violated (e.g., a
    /// decision hook returning a pointer).
    HookRule {
        /// Description of the violated rule.
        rule: &'static str,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BadProgramSize { len } => {
                write!(f, "program size {len} outside [1, 4096]")
            }
            VerifyError::JumpOutOfBounds { pc } => write!(f, "pc {pc}: jump out of bounds"),
            VerifyError::BackEdge { pc } => {
                write!(f, "pc {pc}: backward jump (loops are not allowed)")
            }
            VerifyError::FallOffEnd => write!(f, "control can fall off the end"),
            VerifyError::UninitRegister { pc, reg } => {
                write!(f, "pc {pc}: read of uninitialized r{reg}")
            }
            VerifyError::FramePointerWrite { pc } => {
                write!(f, "pc {pc}: write to read-only frame pointer r10")
            }
            VerifyError::NotAPointer { pc, reg } => {
                write!(f, "pc {pc}: memory access via non-pointer r{reg}")
            }
            VerifyError::OutOfBounds { pc, off, size } => {
                write!(
                    f,
                    "pc {pc}: access of {size} bytes at offset {off} out of bounds"
                )
            }
            VerifyError::UninitStack { pc, off } => {
                write!(f, "pc {pc}: read of uninitialized stack at offset {off}")
            }
            VerifyError::Unaligned { pc, off } => {
                write!(f, "pc {pc}: unaligned access at offset {off}")
            }
            VerifyError::BadCtxAccess { pc, off } => {
                write!(
                    f,
                    "pc {pc}: context access at offset {off} matches no field"
                )
            }
            VerifyError::ReadOnlyCtxField { pc, field } => {
                write!(f, "pc {pc}: write to read-only context field `{field}`")
            }
            VerifyError::BadPointerArithmetic { pc } => {
                write!(f, "pc {pc}: unbounded pointer arithmetic")
            }
            VerifyError::DivByZero { pc } => write!(f, "pc {pc}: division by constant zero"),
            VerifyError::UnknownHelper { pc, helper } => {
                write!(f, "pc {pc}: unknown helper {helper}")
            }
            VerifyError::BadHelperArg {
                pc,
                helper,
                arg,
                expected,
            } => write!(
                f,
                "pc {pc}: helper {helper} argument {arg} must be {expected}"
            ),
            VerifyError::PossiblyNullDeref { pc, reg } => {
                write!(
                    f,
                    "pc {pc}: r{reg} may be null; test it before dereferencing"
                )
            }
            VerifyError::UnknownMap { pc, map_id } => {
                write!(f, "pc {pc}: map id {map_id} not in program map table")
            }
            VerifyError::BadReturnValue { pc } => {
                write!(f, "pc {pc}: exit requires r0 to hold an initialized scalar")
            }
            VerifyError::TooComplex { states } => {
                write!(f, "program too complex: exceeded {states} verifier states")
            }
            VerifyError::HookRule { rule } => write!(f, "hook safety rule violated: {rule}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Failure of a host-side or helper map operation.
///
/// Maps are fixed-capacity slabs (see [`crate::map`]), so every failure
/// mode is a static-shape violation or capacity exhaustion — there is no
/// allocation to fail. Inside policies the interpreters flatten these to
/// the eBPF `-1` helper return; host callers (concord, `c3ctl`, tests)
/// get the typed reason.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapError {
    /// Key length differs from the map definition's `key_size`.
    KeySizeMismatch,
    /// Value length differs from the map definition's `value_size`.
    ValueSizeMismatch,
    /// Array index at or beyond `max_entries`.
    IndexOutOfRange,
    /// Hash map already holds `max_entries` live entries (or the probed
    /// shard is saturated — see the map module docs on sharding).
    Full,
    /// Delete of a key that is not present.
    NoSuchKey,
    /// Delete on an array kind (array entries always exist).
    DeleteOnArray,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MapError::KeySizeMismatch => "key size mismatch",
            MapError::ValueSizeMismatch => "value size mismatch",
            MapError::IndexOutOfRange => "index out of range",
            MapError::Full => "map full",
            MapError::NoSuchKey => "no such key",
            MapError::DeleteOnArray => "delete on array map",
        })
    }
}

impl std::error::Error for MapError {}

/// Coarse classification of a runtime fault — the taxonomy Concord's
/// containment layer keys its fault counters and breaker decisions on.
///
/// The verifier proves memory and termination safety, so for verified
/// programs only [`FaultKind::Budget`] (defense-in-depth instruction
/// budget) and injected faults are reachable; the other kinds exist for
/// out-of-contract programs and the fault-injection harness.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// The per-invocation instruction budget ran out.
    Budget,
    /// The program trapped: bad pc, bad memory access, uninitialized
    /// register, or fell off the end.
    Trap,
    /// A non-map helper call failed at runtime.
    Helper,
    /// A map helper call failed (bad map ref, unknown map, bad key/value
    /// buffer).
    Map,
}

impl FaultKind {
    /// All kinds, in counter-index order (see [`FaultKind::index`]).
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Budget,
        FaultKind::Trap,
        FaultKind::Helper,
        FaultKind::Map,
    ];

    /// Stable dense index for per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::Budget => 0,
            FaultKind::Trap => 1,
            FaultKind::Helper => 2,
            FaultKind::Map => 3,
        }
    }

    /// Stable name for reports and quarantine records.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Budget => "budget",
            FaultKind::Trap => "trap",
            FaultKind::Helper => "helper",
            FaultKind::Map => "map",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime fault from the interpreter.
///
/// A verified program never produces any of these except
/// [`RunError::BudgetExhausted`]; the interpreter checks everything anyway
/// (defense in depth), which is what the verifier soundness property tests
/// rely on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// Program counter left the program.
    PcOutOfBounds {
        /// Offending pc.
        pc: i64,
    },
    /// Read of an uninitialized register (interpreter tracks validity).
    UninitRegister {
        /// Offending pc.
        pc: usize,
        /// The register.
        reg: u8,
    },
    /// Memory access outside any live region.
    BadAccess {
        /// Offending pc.
        pc: usize,
        /// The raw pointer value.
        addr: u64,
    },
    /// Instruction budget exhausted.
    BudgetExhausted,
    /// Helper call failed (unknown helper or bad arguments at runtime).
    HelperFault {
        /// Offending pc.
        pc: usize,
        /// Helper id.
        helper: u32,
        /// Description.
        msg: &'static str,
    },
    /// `exit` never executed (program ended without it).
    NoExit,
}

impl RunError {
    /// Classifies the fault for the containment taxonomy.
    ///
    /// Map helpers occupy ids 1–3 (`map_lookup_elem`, `map_update_elem`,
    /// `map_delete_elem`); the `ldmap` unknown-map trap reports helper 0
    /// with a map message — both classify as [`FaultKind::Map`].
    pub fn fault_kind(&self) -> FaultKind {
        match self {
            RunError::BudgetExhausted => FaultKind::Budget,
            RunError::HelperFault { helper: 1..=3, .. } => FaultKind::Map,
            RunError::HelperFault { helper: 0, msg, .. } if msg.contains("map") => FaultKind::Map,
            RunError::HelperFault { .. } => FaultKind::Helper,
            RunError::PcOutOfBounds { .. }
            | RunError::UninitRegister { .. }
            | RunError::BadAccess { .. }
            | RunError::NoExit => FaultKind::Trap,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::PcOutOfBounds { pc } => write!(f, "pc {pc} out of bounds"),
            RunError::UninitRegister { pc, reg } => {
                write!(f, "pc {pc}: read of uninitialized r{reg}")
            }
            RunError::BadAccess { pc, addr } => {
                write!(f, "pc {pc}: bad memory access at {addr:#x}")
            }
            RunError::BudgetExhausted => write!(f, "instruction budget exhausted"),
            RunError::HelperFault { pc, helper, msg } => {
                write!(f, "pc {pc}: helper {helper} fault: {msg}")
            }
            RunError::NoExit => write!(f, "program ended without exit"),
        }
    }
}

impl std::error::Error for RunError {}

/// Error opening a compiled-policy wire artifact ([`crate::wire::open`]).
///
/// The variants are ordered by the check that produced them: artifact
/// integrity first (magic, version, checksum, structure), then
/// provenance (the verification-context digest), then the verifier
/// itself. An artifact that fails *any* check never becomes runnable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The buffer does not start with the `C3PW` magic.
    BadMagic,
    /// The artifact's format version is not one this build speaks.
    UnsupportedVersion {
        /// Version found in the artifact.
        version: u16,
    },
    /// The buffer ends before the structure it declares.
    Truncated,
    /// The whole-artifact checksum does not match — the bytes were
    /// corrupted or tampered with after sealing.
    ChecksumMismatch,
    /// The verification-context digest does not match the load host's
    /// layout and rules — the artifact was sealed against a different
    /// hook context (or its payload was rewritten).
    DigestMismatch,
    /// A structural bound was violated (count, size or name field).
    Malformed(&'static str),
    /// The instruction stream does not decode.
    Decode(DecodeError),
    /// The program decoded but failed re-verification on the load host.
    Verify(VerifyError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not a compiled-policy artifact (bad magic)"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported wire format version {version}")
            }
            WireError::Truncated => write!(f, "artifact truncated"),
            WireError::ChecksumMismatch => write!(f, "artifact checksum mismatch"),
            WireError::DigestMismatch => {
                write!(f, "verification-context digest mismatch (wrong hook or tampered payload)")
            }
            WireError::Malformed(what) => write!(f, "malformed artifact: {what}"),
            WireError::Decode(e) => write!(f, "artifact instruction stream: {e}"),
            WireError::Verify(e) => write!(f, "re-verification failed: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Decode(e) => Some(e),
            WireError::Verify(e) => Some(e),
            _ => None,
        }
    }
}
