//! Policy maps: the shared state channel between userspace and policies.
//!
//! The paper relies on eBPF "map data structures to store information at
//! runtime" (§4.2) — e.g. a priority map keyed by task id, or per-CPU
//! critical-section statistics. Three kinds are provided, mirroring the
//! kernel types Concord uses: `Array`, `Hash` and `PerCpuArray`.
//!
//! Values are reference-counted and individually locked, so a running
//! policy holds a handle to the exact value object it looked up — a deleted
//! entry stays alive until the program finishes, the same grace-period
//! discipline RCU gives kernel eBPF.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Kinds of maps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapKind {
    /// Fixed-size array keyed by a little-endian `u32` index; all entries
    /// exist from creation, zero-initialized.
    Array,
    /// Hash map with arbitrary fixed-size keys; entries are created by
    /// update and removed by delete.
    Hash,
    /// Per-CPU array: like `Array`, but lookups resolve to the invoking
    /// CPU's copy, so hot-path updates never contend.
    PerCpuArray,
}

/// Static shape of a map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapDef {
    /// Name (used by the assembler and the object store).
    pub name: String,
    /// Kind.
    pub kind: MapKind,
    /// Key size in bytes (must be 4 for array kinds).
    pub key_size: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Maximum number of entries (array length for array kinds).
    pub max_entries: usize,
}

/// A shared value cell.
pub type ValueCell = Arc<Mutex<Box<[u8]>>>;

enum Inner {
    Array(Vec<ValueCell>),
    Hash(Mutex<HashMap<Vec<u8>, ValueCell>>),
    PerCpu { ncpu: usize, slots: Vec<ValueCell> },
}

/// A policy map instance.
///
/// # Examples
///
/// ```
/// use cbpf::map::{Map, MapDef, MapKind};
///
/// let m = Map::new(MapDef {
///     name: "prio".into(),
///     kind: MapKind::Hash,
///     key_size: 8,
///     value_size: 8,
///     max_entries: 128,
/// });
/// m.update(&42u64.to_le_bytes(), &7u64.to_le_bytes(), 0).unwrap();
/// assert_eq!(m.lookup_copy(&42u64.to_le_bytes(), 0), Some(7u64.to_le_bytes().to_vec()));
/// ```
pub struct Map {
    def: MapDef,
    inner: Inner,
}

fn zero_value(size: usize) -> ValueCell {
    Arc::new(Mutex::new(vec![0u8; size].into_boxed_slice()))
}

impl Map {
    /// Creates a map; per-CPU maps size their slots for 128 CPUs.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized key/value, zero `max_entries`, or an array
    /// kind whose key size is not 4.
    pub fn new(def: MapDef) -> Self {
        Map::with_cpus(def, 128)
    }

    /// Creates a map with an explicit CPU count for per-CPU kinds.
    ///
    /// # Panics
    ///
    /// See [`Map::new`].
    pub fn with_cpus(def: MapDef, ncpu: usize) -> Self {
        assert!(def.key_size > 0, "map `{}`: zero key size", def.name);
        assert!(def.value_size > 0, "map `{}`: zero value size", def.name);
        assert!(def.max_entries > 0, "map `{}`: zero max_entries", def.name);
        let inner = match def.kind {
            MapKind::Array => {
                assert_eq!(def.key_size, 4, "array maps use a 4-byte index key");
                Inner::Array(
                    (0..def.max_entries)
                        .map(|_| zero_value(def.value_size))
                        .collect(),
                )
            }
            MapKind::Hash => Inner::Hash(Mutex::new(HashMap::new())),
            MapKind::PerCpuArray => {
                assert_eq!(def.key_size, 4, "per-cpu array maps use a 4-byte index key");
                assert!(ncpu > 0, "per-cpu map needs at least one cpu");
                Inner::PerCpu {
                    ncpu,
                    slots: (0..def.max_entries * ncpu)
                        .map(|_| zero_value(def.value_size))
                        .collect(),
                }
            }
        };
        Map { def, inner }
    }

    /// The map's definition.
    pub fn def(&self) -> &MapDef {
        &self.def
    }

    fn array_index(&self, key: &[u8]) -> Option<usize> {
        if key.len() != 4 {
            return None;
        }
        let idx = u32::from_le_bytes([key[0], key[1], key[2], key[3]]) as usize;
        (idx < self.def.max_entries).then_some(idx)
    }

    /// Looks up the value cell for `key`; `cpu` selects the copy for
    /// per-CPU maps. Returns `None` on a missing hash entry or an
    /// out-of-range array index.
    pub fn lookup(&self, key: &[u8], cpu: u32) -> Option<ValueCell> {
        if key.len() != self.def.key_size {
            return None;
        }
        match &self.inner {
            Inner::Array(v) => self.array_index(key).map(|i| Arc::clone(&v[i])),
            Inner::Hash(h) => h.lock().get(key).cloned(),
            Inner::PerCpu { ncpu, slots } => {
                let i = self.array_index(key)?;
                let c = (cpu as usize) % ncpu;
                Some(Arc::clone(&slots[i * ncpu + c]))
            }
        }
    }

    /// Convenience: copies the value out (host-side reads).
    pub fn lookup_copy(&self, key: &[u8], cpu: u32) -> Option<Vec<u8>> {
        self.lookup(key, cpu).map(|c| c.lock().to_vec())
    }

    /// Inserts or overwrites the value for `key`.
    ///
    /// # Errors
    ///
    /// Returns `Err` on a size mismatch, an out-of-range array index, or a
    /// full hash map.
    pub fn update(&self, key: &[u8], value: &[u8], cpu: u32) -> Result<(), &'static str> {
        if key.len() != self.def.key_size {
            return Err("key size mismatch");
        }
        if value.len() != self.def.value_size {
            return Err("value size mismatch");
        }
        match &self.inner {
            Inner::Array(_) | Inner::PerCpu { .. } => {
                let cell = self.lookup(key, cpu).ok_or("index out of range")?;
                cell.lock().copy_from_slice(value);
                Ok(())
            }
            Inner::Hash(h) => {
                let mut h = h.lock();
                if let Some(cell) = h.get(key) {
                    cell.lock().copy_from_slice(value);
                    return Ok(());
                }
                if h.len() >= self.def.max_entries {
                    return Err("map full");
                }
                h.insert(
                    key.to_vec(),
                    Arc::new(Mutex::new(value.to_vec().into_boxed_slice())),
                );
                Ok(())
            }
        }
    }

    /// Deletes `key` (hash maps only).
    ///
    /// # Errors
    ///
    /// Returns `Err` for array kinds or a missing key.
    pub fn delete(&self, key: &[u8]) -> Result<(), &'static str> {
        match &self.inner {
            Inner::Hash(h) => {
                if h.lock().remove(key).is_some() {
                    Ok(())
                } else {
                    Err("no such key")
                }
            }
            _ => Err("delete on array map"),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Array(v) => v.len(),
            Inner::Hash(h) => h.lock().len(),
            Inner::PerCpu { .. } => self.def.max_entries,
        }
    }

    /// True when a hash map has no entries (array kinds are never empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all keys (host-side introspection).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        match &self.inner {
            Inner::Array(v) => (0..v.len() as u32)
                .map(|i| i.to_le_bytes().to_vec())
                .collect(),
            Inner::Hash(h) => h.lock().keys().cloned().collect(),
            Inner::PerCpu { .. } => (0..self.def.max_entries as u32)
                .map(|i| i.to_le_bytes().to_vec())
                .collect(),
        }
    }

    /// Sums the first 8 bytes of every per-CPU copy of `key` (the usual way
    /// per-CPU counters are read out).
    pub fn percpu_sum(&self, key: &[u8]) -> u64 {
        match &self.inner {
            Inner::PerCpu { ncpu, slots } => {
                let Some(i) = self.array_index(key) else {
                    return 0;
                };
                (0..*ncpu)
                    .map(|c| {
                        let v = slots[i * ncpu + c].lock();
                        let mut b = [0u8; 8];
                        let n = v.len().min(8);
                        b[..n].copy_from_slice(&v[..n]);
                        u64::from_le_bytes(b)
                    })
                    .sum()
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_map() -> Map {
        Map::new(MapDef {
            name: "h".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: 2,
        })
    }

    #[test]
    fn array_map_prezeroed_and_updatable() {
        let m = Map::new(MapDef {
            name: "a".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 4,
        });
        let k = 2u32.to_le_bytes();
        assert_eq!(m.lookup_copy(&k, 0), Some(vec![0; 8]));
        m.update(&k, &9u64.to_le_bytes(), 0).unwrap();
        assert_eq!(m.lookup_copy(&k, 0), Some(9u64.to_le_bytes().to_vec()));
        assert_eq!(m.lookup_copy(&9u32.to_le_bytes(), 0), None);
    }

    #[test]
    fn hash_map_insert_overwrite_delete() {
        let m = hash_map();
        let k = 1u32.to_le_bytes();
        assert_eq!(m.lookup_copy(&k, 0), None);
        m.update(&k, &5u64.to_le_bytes(), 0).unwrap();
        m.update(&k, &6u64.to_le_bytes(), 0).unwrap();
        assert_eq!(m.lookup_copy(&k, 0), Some(6u64.to_le_bytes().to_vec()));
        m.delete(&k).unwrap();
        assert_eq!(m.lookup_copy(&k, 0), None);
        assert!(m.delete(&k).is_err());
    }

    #[test]
    fn hash_map_capacity_enforced() {
        let m = hash_map();
        m.update(&1u32.to_le_bytes(), &[0; 8], 0).unwrap();
        m.update(&2u32.to_le_bytes(), &[0; 8], 0).unwrap();
        assert_eq!(m.update(&3u32.to_le_bytes(), &[0; 8], 0), Err("map full"));
        // Overwriting an existing key still works at capacity.
        m.update(&1u32.to_le_bytes(), &[1; 8], 0).unwrap();
    }

    #[test]
    fn size_mismatches_rejected() {
        let m = hash_map();
        assert!(m.update(&[0; 3], &[0; 8], 0).is_err());
        assert!(m.update(&[0; 4], &[0; 7], 0).is_err());
        assert!(m.lookup(&[0; 3], 0).is_none());
    }

    #[test]
    fn percpu_map_isolates_cpus_and_sums() {
        let m = Map::with_cpus(
            MapDef {
                name: "p".into(),
                kind: MapKind::PerCpuArray,
                key_size: 4,
                value_size: 8,
                max_entries: 1,
            },
            4,
        );
        let k = 0u32.to_le_bytes();
        for cpu in 0..4u32 {
            m.update(&k, &u64::from(cpu + 1).to_le_bytes(), cpu)
                .unwrap();
        }
        for cpu in 0..4u32 {
            assert_eq!(
                m.lookup_copy(&k, cpu),
                Some(u64::from(cpu + 1).to_le_bytes().to_vec())
            );
        }
        assert_eq!(m.percpu_sum(&k), 1 + 2 + 3 + 4);
    }

    #[test]
    fn deleted_value_stays_alive_for_holders() {
        let m = hash_map();
        let k = 7u32.to_le_bytes();
        m.update(&k, &1u64.to_le_bytes(), 0).unwrap();
        let cell = m.lookup(&k, 0).unwrap();
        m.delete(&k).unwrap();
        // The held cell is still readable (RCU-like grace).
        assert_eq!(&cell.lock()[..], &1u64.to_le_bytes());
    }

    #[test]
    fn keys_snapshot() {
        let m = hash_map();
        m.update(&1u32.to_le_bytes(), &[0; 8], 0).unwrap();
        m.update(&2u32.to_le_bytes(), &[0; 8], 0).unwrap();
        let mut keys = m.keys();
        keys.sort();
        assert_eq!(
            keys,
            vec![1u32.to_le_bytes().to_vec(), 2u32.to_le_bytes().to_vec()]
        );
    }

    #[test]
    #[should_panic(expected = "4-byte index")]
    fn array_map_requires_u32_key() {
        Map::new(MapDef {
            name: "bad".into(),
            kind: MapKind::Array,
            key_size: 8,
            value_size: 8,
            max_entries: 1,
        });
    }
}
