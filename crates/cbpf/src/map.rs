//! Policy maps: the shared state channel between userspace and policies.
//!
//! The paper relies on eBPF "map data structures to store information at
//! runtime" (§4.2) — e.g. a priority map keyed by task id, or per-CPU
//! critical-section statistics. Three kinds are provided, mirroring the
//! kernel types Concord uses: `Array`, `Hash` and `PerCpuArray`.
//!
//! # Memory layout
//!
//! All value storage is a single pre-sized slab of `AtomicU64` words
//! allocated at map creation — the data plane never allocates. A lookup
//! resolves a key to a dense **slot** index; policies then read and write
//! the slot's words directly with relaxed atomics, so the hot path
//! (`lookup_slot` + `value_load`/`value_store`) takes no lock for array
//! kinds and only a short per-shard probe lock for `Hash`:
//!
//! * `Array` — slot `i` is entry `i`; pure atomics, no locks anywhere.
//! * `PerCpuArray` — entry `i` on CPU `c` is slot `i·ncpu + c%ncpu`;
//!   each CPU touches its own cache lines, so hot-path updates never
//!   contend.
//! * `Hash` — open addressing (linear probing, FNV-1a) over fixed-capacity
//!   shard tables, each guarded by its own mutex (the shard-lock idiom from
//!   the `locks` crate's BRAVO/ShflLock studies: spread the contended
//!   cacheline). Small maps (< 256 entries) use one shard so capacity
//!   semantics stay exact; larger maps use 16. A saturated *shard* can
//!   report [`MapError::Full`] slightly before `max_entries` under
//!   adversarial key distributions — the same early-ENOMEM caveat kernel
//!   htab maps carry.
//!
//! Deletion tombstones the slot; a policy still holding the slot keeps
//! reading the old bytes until the slot is reused — the grace-period
//! discipline RCU gives kernel eBPF, weakened from "until the program
//! exits" to "until reuse" (a reuse writes a full new value, so readers
//! see torn-but-valid map bytes, never wild memory). Concurrent writers
//! to one value are word-atomic: sub-word stores CAS their containing
//! word, whole-word stores are plain relaxed stores.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::error::MapError;

/// Hard cap on `max_entries` for any kind. Policies address map memory
/// through 28-bit region indices and capacity tests size probe loops by
/// this; the verifier-facing loader enforces it by construction
/// (`Map::with_cpus` panics past it).
pub const MAX_MAP_ENTRIES: usize = 1 << 16;

/// Kinds of maps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapKind {
    /// Fixed-size array keyed by a little-endian `u32` index; all entries
    /// exist from creation, zero-initialized.
    Array,
    /// Hash map with arbitrary fixed-size keys; entries are created by
    /// update and removed by delete.
    Hash,
    /// Per-CPU array: like `Array`, but lookups resolve to the invoking
    /// CPU's copy, so hot-path updates never contend.
    PerCpuArray,
}

/// Static shape of a map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapDef {
    /// Name (used by the assembler and the object store).
    pub name: String,
    /// Kind.
    pub kind: MapKind,
    /// Key size in bytes (must be 4 for array kinds).
    pub key_size: usize,
    /// Value size in bytes.
    pub value_size: usize,
    /// Maximum number of entries (array length for array kinds).
    pub max_entries: usize,
}

/// A pre-sized slab of atomic words holding fixed-size values.
struct Slab {
    /// Words per value (`value_size` rounded up).
    stride: usize,
    value_size: usize,
    /// Slot count, cached so the bounds check on every policy value
    /// access is a compare, not a division.
    slots: usize,
    words: Box<[AtomicU64]>,
}

impl Slab {
    fn new(slots: usize, value_size: usize) -> Slab {
        let stride = value_size.div_ceil(8);
        Slab {
            stride,
            value_size,
            slots,
            words: (0..slots * stride).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn slots(&self) -> usize {
        self.slots
    }

    /// CAS-merges `bits` under `mask` into one word (full-mask = plain
    /// store). Relaxed: map words carry no inter-word ordering contract.
    fn rmw(word: &AtomicU64, mask: u64, bits: u64) {
        if mask == u64::MAX {
            word.store(bits, Ordering::Relaxed);
            return;
        }
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | (bits & mask);
            match word.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Loads `n ≤ 8` bytes at byte offset `off` of `slot`, little-endian.
    fn load(&self, slot: usize, off: usize, n: usize) -> Option<u64> {
        debug_assert!((1..=8).contains(&n));
        if off.checked_add(n)? > self.value_size {
            return None;
        }
        let base = slot * self.stride;
        let w = base + off / 8;
        let bit = (off % 8) * 8;
        let lo = self.words[w].load(Ordering::Relaxed) >> bit;
        let v = if bit + n * 8 <= 64 {
            lo
        } else {
            lo | (self.words[w + 1].load(Ordering::Relaxed) << (64 - bit))
        };
        Some(if n == 8 {
            v
        } else {
            v & ((1u64 << (n * 8)) - 1)
        })
    }

    /// Stores the low `n ≤ 8` bytes of `val` at byte offset `off` of
    /// `slot`, little-endian.
    fn store(&self, slot: usize, off: usize, n: usize, val: u64) -> bool {
        debug_assert!((1..=8).contains(&n));
        let Some(end) = off.checked_add(n) else {
            return false;
        };
        if end > self.value_size {
            return false;
        }
        let base = slot * self.stride;
        let w = base + off / 8;
        let bit = (off % 8) * 8;
        if bit + n * 8 <= 64 {
            let mask = if n == 8 {
                u64::MAX
            } else {
                ((1u64 << (n * 8)) - 1) << bit
            };
            Slab::rmw(&self.words[w], mask, val << bit);
        } else {
            let lo_bits = 64 - bit;
            Slab::rmw(&self.words[w], u64::MAX << bit, val << bit);
            let hi_mask = (1u64 << (n * 8 - lo_bits)) - 1;
            Slab::rmw(&self.words[w + 1], hi_mask, val >> lo_bits);
        }
        true
    }

    /// Copies a whole value out (host-side reads).
    fn read_value(&self, slot: usize) -> Vec<u8> {
        let mut out = vec![0u8; self.value_size];
        let mut off = 0;
        while off < self.value_size {
            let n = (self.value_size - off).min(8);
            let v = self.load(slot, off, n).expect("in-bounds by construction");
            out[off..off + n].copy_from_slice(&v.to_le_bytes()[..n]);
            off += n;
        }
        out
    }

    /// Writes a whole value (host-side updates). `value.len()` must equal
    /// `value_size`.
    fn write_value(&self, slot: usize, value: &[u8]) {
        debug_assert_eq!(value.len(), self.value_size);
        let mut off = 0;
        while off < value.len() {
            let n = (value.len() - off).min(8);
            let mut b = [0u8; 8];
            b[..n].copy_from_slice(&value[off..off + n]);
            self.store(slot, off, n, u64::from_le_bytes(b));
            off += n;
        }
    }
}

const EMPTY: u8 = 0;
const OCCUPIED: u8 = 1;
const TOMBSTONE: u8 = 2;

/// One hash shard: probe state and key bytes behind a short mutex.
/// Values live in the shared lock-free slab.
struct ShardTable {
    states: Box<[u8]>,
    keys: Box<[u8]>,
}

struct HashCore {
    shards: Box<[Mutex<ShardTable>]>,
    /// Power-of-two slots per shard.
    shard_cap: usize,
    /// Live-entry count across shards; insertion reserves against
    /// `max_entries` here so capacity is exact even though shards lock
    /// independently.
    live: AtomicUsize,
    /// Probe-layout generation: bumped by entry insertion and deletion
    /// (never by value overwrites), so callers can cache a key→slot
    /// resolution and revalidate with one load. See
    /// [`Map::probe_generation`].
    layout_gen: AtomicU64,
    values: Slab,
}

enum Inner {
    Array { values: Slab },
    PerCpu { ncpu: usize, values: Slab },
    Hash(HashCore),
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

enum Probe {
    /// Key present at this in-shard position.
    Found(usize),
    /// Key absent; this position (first tombstone, else first empty) can
    /// take it.
    Vacant(usize),
    /// Key absent and the shard has no usable position.
    Saturated,
}

impl ShardTable {
    fn probe(&self, key: &[u8], cap: usize, start: usize) -> Probe {
        let ks = key.len();
        let mut vacant: Option<usize> = None;
        for step in 0..cap {
            let pos = (start + step) & (cap - 1);
            match self.states[pos] {
                EMPTY => {
                    return Probe::Vacant(vacant.unwrap_or(pos));
                }
                OCCUPIED => {
                    if &self.keys[pos * ks..(pos + 1) * ks] == key {
                        return Probe::Found(pos);
                    }
                }
                _ => {
                    if vacant.is_none() {
                        vacant = Some(pos);
                    }
                }
            }
        }
        match vacant {
            Some(pos) => Probe::Vacant(pos),
            None => Probe::Saturated,
        }
    }
}

impl HashCore {
    fn shard_of(&self, h: u64) -> usize {
        (h >> 48) as usize & (self.shards.len() - 1)
    }

    fn start_of(&self, h: u64) -> usize {
        h as usize & (self.shard_cap - 1)
    }

    fn slot(&self, shard: usize, pos: usize) -> u32 {
        (shard * self.shard_cap + pos) as u32
    }
}

/// A policy map instance.
///
/// # Examples
///
/// ```
/// use cbpf::map::{Map, MapDef, MapKind};
///
/// let m = Map::new(MapDef {
///     name: "prio".into(),
///     kind: MapKind::Hash,
///     key_size: 8,
///     value_size: 8,
///     max_entries: 128,
/// });
/// m.update(&42u64.to_le_bytes(), &7u64.to_le_bytes(), 0).unwrap();
/// assert_eq!(m.lookup_copy(&42u64.to_le_bytes(), 0), Some(7u64.to_le_bytes().to_vec()));
///
/// // The allocation-free path policies use: resolve a slot once, then
/// // read/write words in place.
/// let slot = m.lookup_slot(&42u64.to_le_bytes(), 0).unwrap();
/// assert_eq!(m.value_load(slot, 0, 8), Some(7));
/// ```
pub struct Map {
    def: MapDef,
    inner: Inner,
}

impl Map {
    /// Creates a map; per-CPU maps size their slots for 128 CPUs.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized key/value, zero or over-[`MAX_MAP_ENTRIES`]
    /// `max_entries`, or an array kind whose key size is not 4.
    pub fn new(def: MapDef) -> Self {
        Map::with_cpus(def, 128)
    }

    /// Creates a map with an explicit CPU count for per-CPU kinds.
    ///
    /// # Panics
    ///
    /// See [`Map::new`].
    pub fn with_cpus(def: MapDef, ncpu: usize) -> Self {
        assert!(def.key_size > 0, "map `{}`: zero key size", def.name);
        assert!(def.value_size > 0, "map `{}`: zero value size", def.name);
        assert!(def.max_entries > 0, "map `{}`: zero max_entries", def.name);
        assert!(
            def.max_entries <= MAX_MAP_ENTRIES,
            "map `{}`: max_entries {} over the {} cap",
            def.name,
            def.max_entries,
            MAX_MAP_ENTRIES
        );
        let inner = match def.kind {
            MapKind::Array => {
                assert_eq!(def.key_size, 4, "array maps use a 4-byte index key");
                Inner::Array {
                    values: Slab::new(def.max_entries, def.value_size),
                }
            }
            MapKind::Hash => {
                let shards = if def.max_entries < 256 { 1 } else { 16 };
                let shard_cap = (2 * def.max_entries.div_ceil(shards))
                    .max(8)
                    .next_power_of_two();
                Inner::Hash(HashCore {
                    shards: (0..shards)
                        .map(|_| {
                            Mutex::new(ShardTable {
                                states: vec![EMPTY; shard_cap].into_boxed_slice(),
                                keys: vec![0u8; shard_cap * def.key_size].into_boxed_slice(),
                            })
                        })
                        .collect(),
                    shard_cap,
                    live: AtomicUsize::new(0),
                    layout_gen: AtomicU64::new(0),
                    values: Slab::new(shards * shard_cap, def.value_size),
                })
            }
            MapKind::PerCpuArray => {
                assert_eq!(def.key_size, 4, "per-cpu array maps use a 4-byte index key");
                assert!(ncpu > 0, "per-cpu map needs at least one cpu");
                Inner::PerCpu {
                    ncpu,
                    values: Slab::new(def.max_entries * ncpu, def.value_size),
                }
            }
        };
        Map { def, inner }
    }

    /// The map's definition.
    pub fn def(&self) -> &MapDef {
        &self.def
    }

    fn array_index(&self, key: &[u8]) -> Option<usize> {
        if key.len() != 4 {
            return None;
        }
        let idx = u32::from_le_bytes([key[0], key[1], key[2], key[3]]) as usize;
        (idx < self.def.max_entries).then_some(idx)
    }

    fn values(&self) -> &Slab {
        match &self.inner {
            Inner::Array { values } => values,
            Inner::PerCpu { values, .. } => values,
            Inner::Hash(h) => &h.values,
        }
    }

    /// Resolves `key` to a value slot without copying or allocating; `cpu`
    /// selects the copy for per-CPU maps. Returns `None` on a missing hash
    /// entry, an out-of-range array index, or a key-size mismatch.
    ///
    /// The slot stays readable/writable via [`Map::value_load`] /
    /// [`Map::value_store`] even if the entry is deleted meanwhile (bytes
    /// are stable until the slot is reused).
    pub fn lookup_slot(&self, key: &[u8], cpu: u32) -> Option<u32> {
        if key.len() != self.def.key_size {
            return None;
        }
        match &self.inner {
            Inner::Array { .. } => self.array_index(key).map(|i| i as u32),
            Inner::PerCpu { ncpu, .. } => {
                let i = self.array_index(key)?;
                let c = (cpu as usize) % ncpu;
                Some((i * ncpu + c) as u32)
            }
            Inner::Hash(h) => {
                let hash = fnv1a(key);
                let shard = h.shard_of(hash);
                let table = h.shards[shard].lock();
                match table.probe(key, h.shard_cap, h.start_of(hash)) {
                    Probe::Found(pos) => Some(h.slot(shard, pos)),
                    _ => None,
                }
            }
        }
    }

    /// Monotonic probe-layout generation for hash maps (`None` for the
    /// array kinds, whose key→slot mapping never changes). Bumped by
    /// entry insertion and deletion, stable across value overwrites, so
    /// a caller holding a `(generation, key, slot)` triple may reuse the
    /// slot without re-probing while the generation still matches —
    /// with the same bytes-stable-until-reuse guarantee a racing
    /// [`Map::lookup_slot`] would have. The compiled policy tier uses
    /// this to cache constant-key lookups.
    pub fn probe_generation(&self) -> Option<u64> {
        match &self.inner {
            Inner::Hash(h) => Some(h.layout_gen.load(Ordering::Acquire)),
            _ => None,
        }
    }

    /// Loads `n ∈ 1..=8` bytes at byte offset `off` of `slot`,
    /// little-endian. `None` when the window leaves the value.
    #[inline]
    pub fn value_load(&self, slot: u32, off: usize, n: usize) -> Option<u64> {
        let values = self.values();
        if (slot as usize) >= values.slots() {
            return None;
        }
        values.load(slot as usize, off, n)
    }

    /// Stores the low `n ∈ 1..=8` bytes of `val` at byte offset `off` of
    /// `slot`; `false` when the window leaves the value.
    #[inline]
    pub fn value_store(&self, slot: u32, off: usize, n: usize, val: u64) -> bool {
        let values = self.values();
        if (slot as usize) >= values.slots() {
            return false;
        }
        values.store(slot as usize, off, n, val)
    }

    /// Direct handle to slab word `idx` (`slot * stride + off / 8`), for
    /// the compiled tier's single-word read-modify-write path: one
    /// bounds check covers both the load and the store of an aligned
    /// 8-byte access. Same relaxed-word contract as
    /// [`Map::value_load`]/[`Map::value_store`].
    #[inline]
    pub(crate) fn value_word(&self, idx: usize) -> Option<&AtomicU64> {
        self.values().words.get(idx)
    }

    /// Words per value in the slab — the compiled tier bakes this into
    /// its word-index arithmetic.
    pub(crate) fn value_stride(&self) -> usize {
        self.values().stride
    }

    /// Convenience: copies the value out (host-side reads).
    pub fn lookup_copy(&self, key: &[u8], cpu: u32) -> Option<Vec<u8>> {
        let slot = self.lookup_slot(key, cpu)?;
        Some(self.values().read_value(slot as usize))
    }

    /// Inserts or overwrites the value for `key`.
    ///
    /// # Errors
    ///
    /// Returns `Err` on a size mismatch, an out-of-range array index, or a
    /// full hash map.
    pub fn update(&self, key: &[u8], value: &[u8], cpu: u32) -> Result<(), MapError> {
        if key.len() != self.def.key_size {
            return Err(MapError::KeySizeMismatch);
        }
        if value.len() != self.def.value_size {
            return Err(MapError::ValueSizeMismatch);
        }
        match &self.inner {
            Inner::Array { values } => {
                let i = self.array_index(key).ok_or(MapError::IndexOutOfRange)?;
                values.write_value(i, value);
                Ok(())
            }
            Inner::PerCpu { ncpu, values } => {
                let i = self.array_index(key).ok_or(MapError::IndexOutOfRange)?;
                values.write_value(i * ncpu + (cpu as usize) % ncpu, value);
                Ok(())
            }
            Inner::Hash(h) => {
                let hash = fnv1a(key);
                let shard = h.shard_of(hash);
                let mut table = h.shards[shard].lock();
                match table.probe(key, h.shard_cap, h.start_of(hash)) {
                    Probe::Found(pos) => {
                        h.values.write_value(shard * h.shard_cap + pos, value);
                        Ok(())
                    }
                    Probe::Vacant(pos) => {
                        // Reserve a live-count ticket before touching the
                        // shard so `max_entries` holds across shards.
                        let max = self.def.max_entries;
                        h.live
                            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |l| {
                                (l < max).then_some(l + 1)
                            })
                            .map_err(|_| MapError::Full)?;
                        let ks = self.def.key_size;
                        table.states[pos] = OCCUPIED;
                        table.keys[pos * ks..(pos + 1) * ks].copy_from_slice(key);
                        h.values.write_value(shard * h.shard_cap + pos, value);
                        h.layout_gen.fetch_add(1, Ordering::Release);
                        Ok(())
                    }
                    Probe::Saturated => Err(MapError::Full),
                }
            }
        }
    }

    /// Deletes `key` (hash maps only). The value bytes stay readable by
    /// policies already holding the slot until the slot is reused.
    ///
    /// # Errors
    ///
    /// Returns `Err` for array kinds or a missing key.
    pub fn delete(&self, key: &[u8]) -> Result<(), MapError> {
        match &self.inner {
            Inner::Hash(h) => {
                if key.len() != self.def.key_size {
                    return Err(MapError::NoSuchKey);
                }
                let hash = fnv1a(key);
                let shard = h.shard_of(hash);
                let mut table = h.shards[shard].lock();
                match table.probe(key, h.shard_cap, h.start_of(hash)) {
                    Probe::Found(pos) => {
                        table.states[pos] = TOMBSTONE;
                        h.live.fetch_sub(1, Ordering::Relaxed);
                        h.layout_gen.fetch_add(1, Ordering::Release);
                        Ok(())
                    }
                    _ => Err(MapError::NoSuchKey),
                }
            }
            _ => Err(MapError::DeleteOnArray),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Array { .. } | Inner::PerCpu { .. } => self.def.max_entries,
            Inner::Hash(h) => h.live.load(Ordering::Relaxed),
        }
    }

    /// True when a hash map has no entries (array kinds are never empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all keys (host-side introspection).
    pub fn keys(&self) -> Vec<Vec<u8>> {
        match &self.inner {
            Inner::Array { .. } | Inner::PerCpu { .. } => (0..self.def.max_entries as u32)
                .map(|i| i.to_le_bytes().to_vec())
                .collect(),
            Inner::Hash(h) => {
                let ks = self.def.key_size;
                let mut out = Vec::new();
                for shard in h.shards.iter() {
                    let table = shard.lock();
                    for pos in 0..h.shard_cap {
                        if table.states[pos] == OCCUPIED {
                            out.push(table.keys[pos * ks..(pos + 1) * ks].to_vec());
                        }
                    }
                }
                out
            }
        }
    }

    /// Sums the first 8 bytes of every per-CPU copy of `key` (the usual way
    /// per-CPU counters are read out).
    pub fn percpu_sum(&self, key: &[u8]) -> u64 {
        match &self.inner {
            Inner::PerCpu { ncpu, values } => {
                let Some(i) = self.array_index(key) else {
                    return 0;
                };
                let n = self.def.value_size.min(8);
                (0..*ncpu)
                    .map(|c| {
                        values
                            .load(i * ncpu + c, 0, n)
                            .expect("in-bounds by construction")
                    })
                    .sum()
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_map() -> Map {
        Map::new(MapDef {
            name: "h".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: 2,
        })
    }

    #[test]
    fn array_map_prezeroed_and_updatable() {
        let m = Map::new(MapDef {
            name: "a".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 4,
        });
        let k = 2u32.to_le_bytes();
        assert_eq!(m.lookup_copy(&k, 0), Some(vec![0; 8]));
        m.update(&k, &9u64.to_le_bytes(), 0).unwrap();
        assert_eq!(m.lookup_copy(&k, 0), Some(9u64.to_le_bytes().to_vec()));
        assert_eq!(m.lookup_copy(&9u32.to_le_bytes(), 0), None);
    }

    #[test]
    fn hash_map_insert_overwrite_delete() {
        let m = hash_map();
        let k = 1u32.to_le_bytes();
        assert_eq!(m.lookup_copy(&k, 0), None);
        m.update(&k, &5u64.to_le_bytes(), 0).unwrap();
        m.update(&k, &6u64.to_le_bytes(), 0).unwrap();
        assert_eq!(m.lookup_copy(&k, 0), Some(6u64.to_le_bytes().to_vec()));
        m.delete(&k).unwrap();
        assert_eq!(m.lookup_copy(&k, 0), None);
        assert_eq!(m.delete(&k), Err(MapError::NoSuchKey));
    }

    #[test]
    fn hash_map_capacity_enforced() {
        let m = hash_map();
        m.update(&1u32.to_le_bytes(), &[0; 8], 0).unwrap();
        m.update(&2u32.to_le_bytes(), &[0; 8], 0).unwrap();
        assert_eq!(
            m.update(&3u32.to_le_bytes(), &[0; 8], 0),
            Err(MapError::Full)
        );
        // Overwriting an existing key still works at capacity.
        m.update(&1u32.to_le_bytes(), &[1; 8], 0).unwrap();
        // Delete frees capacity for a different key.
        m.delete(&2u32.to_le_bytes()).unwrap();
        m.update(&3u32.to_le_bytes(), &[3; 8], 0).unwrap();
        assert_eq!(m.lookup_copy(&3u32.to_le_bytes(), 0), Some(vec![3; 8]));
    }

    #[test]
    fn size_mismatches_rejected() {
        let m = hash_map();
        assert_eq!(m.update(&[0; 3], &[0; 8], 0), Err(MapError::KeySizeMismatch));
        assert_eq!(
            m.update(&[0; 4], &[0; 7], 0),
            Err(MapError::ValueSizeMismatch)
        );
        assert!(m.lookup_slot(&[0; 3], 0).is_none());
    }

    #[test]
    fn percpu_map_isolates_cpus_and_sums() {
        let m = Map::with_cpus(
            MapDef {
                name: "p".into(),
                kind: MapKind::PerCpuArray,
                key_size: 4,
                value_size: 8,
                max_entries: 1,
            },
            4,
        );
        let k = 0u32.to_le_bytes();
        for cpu in 0..4u32 {
            m.update(&k, &u64::from(cpu + 1).to_le_bytes(), cpu)
                .unwrap();
        }
        for cpu in 0..4u32 {
            assert_eq!(
                m.lookup_copy(&k, cpu),
                Some(u64::from(cpu + 1).to_le_bytes().to_vec())
            );
        }
        assert_eq!(m.percpu_sum(&k), 1 + 2 + 3 + 4);
    }

    #[test]
    fn deleted_value_stays_readable_through_held_slot() {
        let m = hash_map();
        let k = 7u32.to_le_bytes();
        m.update(&k, &1u64.to_le_bytes(), 0).unwrap();
        let slot = m.lookup_slot(&k, 0).unwrap();
        m.delete(&k).unwrap();
        // The held slot is still readable (RCU-like grace until reuse).
        assert_eq!(m.value_load(slot, 0, 8), Some(1));
        // But the key is gone from the probe path.
        assert_eq!(m.lookup_slot(&k, 0), None);
    }

    #[test]
    fn keys_snapshot() {
        let m = hash_map();
        m.update(&1u32.to_le_bytes(), &[0; 8], 0).unwrap();
        m.update(&2u32.to_le_bytes(), &[0; 8], 0).unwrap();
        let mut keys = m.keys();
        keys.sort();
        assert_eq!(
            keys,
            vec![1u32.to_le_bytes().to_vec(), 2u32.to_le_bytes().to_vec()]
        );
    }

    #[test]
    #[should_panic(expected = "4-byte index")]
    fn array_map_requires_u32_key() {
        Map::new(MapDef {
            name: "bad".into(),
            kind: MapKind::Array,
            key_size: 8,
            value_size: 8,
            max_entries: 1,
        });
    }

    #[test]
    #[should_panic(expected = "over the 65536 cap")]
    fn oversized_max_entries_rejected() {
        Map::new(MapDef {
            name: "huge".into(),
            kind: MapKind::Hash,
            key_size: 8,
            value_size: 8,
            max_entries: MAX_MAP_ENTRIES + 1,
        });
    }

    #[test]
    fn value_words_subword_and_straddling_access() {
        // value_size 12: one full word plus a 4-byte tail.
        let m = Map::new(MapDef {
            name: "w".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 12,
            max_entries: 1,
        });
        let slot = m.lookup_slot(&0u32.to_le_bytes(), 0).unwrap();
        // Byte stores land in the right lanes.
        for i in 0..12 {
            assert!(m.value_store(slot, i, 1, (i as u64) + 1));
        }
        for i in 0..12 {
            assert_eq!(m.value_load(slot, i, 1), Some((i as u64) + 1));
        }
        // A 4-byte load straddling the word boundary (off 6) merges both
        // words correctly: bytes 7,8,9,10 of the pattern.
        assert_eq!(
            m.value_load(slot, 6, 4),
            Some(u64::from(u32::from_le_bytes([7, 8, 9, 10])))
        );
        // A straddling store round-trips.
        assert!(m.value_store(slot, 6, 4, 0xdead_beef));
        assert_eq!(m.value_load(slot, 6, 4), Some(0xdead_beef));
        // Neighbors are untouched.
        assert_eq!(m.value_load(slot, 5, 1), Some(6));
        assert_eq!(m.value_load(slot, 10, 1), Some(11));
        // Out-of-bounds windows are rejected.
        assert_eq!(m.value_load(slot, 9, 4), None);
        assert!(!m.value_store(slot, 12, 1, 0));
        assert_eq!(m.value_load(slot + 1, 0, 1), None);
    }

    #[test]
    fn sharded_hash_map_handles_many_keys() {
        // 1024 entries → 16 shards; exercise insert/lookup/delete across
        // all of them, including tombstone reuse.
        let m = Map::new(MapDef {
            name: "big".into(),
            kind: MapKind::Hash,
            key_size: 8,
            value_size: 8,
            max_entries: 1024,
        });
        for i in 0..1024u64 {
            m.update(&i.to_le_bytes(), &(i * 3).to_le_bytes(), 0).unwrap();
        }
        assert_eq!(m.len(), 1024);
        for i in (0..1024u64).step_by(2) {
            m.delete(&i.to_le_bytes()).unwrap();
        }
        assert_eq!(m.len(), 512);
        for i in 0..1024u64 {
            let got = m.lookup_copy(&i.to_le_bytes(), 0);
            if i % 2 == 0 {
                assert_eq!(got, None, "key {i}");
            } else {
                assert_eq!(got, Some((i * 3).to_le_bytes().to_vec()), "key {i}");
            }
        }
        // Tombstoned capacity is reusable.
        for i in 2048..2560u64 {
            m.update(&i.to_le_bytes(), &i.to_le_bytes(), 0).unwrap();
        }
        assert_eq!(m.len(), 1024);
        assert_eq!(m.keys().len(), 1024);
    }

    #[test]
    fn concurrent_updates_from_many_threads() {
        use std::sync::Arc;
        let m = Arc::new(Map::new(MapDef {
            name: "c".into(),
            kind: MapKind::Hash,
            key_size: 8,
            value_size: 8,
            max_entries: 1024,
        }));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..128u64 {
                        let k = (t * 128 + i).to_le_bytes();
                        m.update(&k, &(t * 128 + i + 1).to_le_bytes(), t as u32)
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.len(), 1024);
        for v in 0..1024u64 {
            assert_eq!(
                m.lookup_copy(&v.to_le_bytes(), 0),
                Some((v + 1).to_le_bytes().to_vec())
            );
        }
    }
}
