//! Context layouts: the typed window a policy gets onto lock state.
//!
//! Each Concord hook (Table 1 of the paper) passes the policy a small,
//! fixed-layout context — e.g. `cmp_node` passes the lock id plus views of
//! the shuffler node and the current node. The layout declares, per field,
//! its offset, width and whether the policy may write it. The verifier
//! rejects any access that is not an exact, aligned, permitted field access,
//! which is how Concord keeps user policies from corrupting lock internals
//! while still letting them *decide* (the paper's "APIs … do not modify the
//! locking behavior but only return the decision").

use crate::error::VerifyError;

/// Whether a policy may write a context field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldAccess {
    /// Policy may only read the field.
    ReadOnly,
    /// Policy may read and write the field (e.g. a scratch/out slot).
    ReadWrite,
}

/// One field of a context layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FieldDef {
    /// Field name (for diagnostics and host-side access).
    pub name: &'static str,
    /// Byte offset within the context buffer.
    pub offset: usize,
    /// Width in bytes: 1, 2, 4 or 8.
    pub size: usize,
    /// Access permission for the policy.
    pub access: FieldAccess,
}

/// Declared shape of a hook context.
///
/// # Examples
///
/// ```
/// use cbpf::ctx::{CtxLayout, FieldAccess};
///
/// let layout = CtxLayout::builder()
///     .field("lock_id", 8, FieldAccess::ReadOnly)
///     .field("curr_cpu", 4, FieldAccess::ReadOnly)
///     .field("out", 8, FieldAccess::ReadWrite)
///     .build();
/// assert_eq!(layout.size(), 24);
/// assert_eq!(layout.field("curr_cpu").unwrap().offset, 8);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtxLayout {
    fields: Vec<FieldDef>,
    size: usize,
}

impl CtxLayout {
    /// A layout with no fields (programs taking no context).
    pub fn empty() -> Self {
        CtxLayout {
            fields: Vec::new(),
            size: 0,
        }
    }

    /// Starts building a layout; fields are packed in declaration order
    /// with natural alignment.
    pub fn builder() -> CtxLayoutBuilder {
        CtxLayoutBuilder {
            fields: Vec::new(),
            offset: 0,
        }
    }

    /// Total context size in bytes (8-byte aligned).
    pub fn size(&self) -> usize {
        self.size
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Validates an access of `size` bytes at `offset`: it must exactly
    /// match a declared field, and writes require [`FieldAccess::ReadWrite`].
    ///
    /// # Errors
    ///
    /// Returns the [`VerifyError`] the verifier reports for the bad access.
    pub fn check_access(
        &self,
        pc: usize,
        offset: i64,
        size: usize,
        is_write: bool,
    ) -> Result<(), VerifyError> {
        let f = self
            .fields
            .iter()
            .find(|f| f.offset as i64 == offset && f.size == size)
            .ok_or(VerifyError::BadCtxAccess { pc, off: offset })?;
        if is_write && f.access == FieldAccess::ReadOnly {
            return Err(VerifyError::ReadOnlyCtxField { pc, field: f.name });
        }
        Ok(())
    }

    /// Reads field `name` from a context buffer (host side).
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist or the buffer is too small — both
    /// are host-side programming errors, not policy errors.
    pub fn read(&self, buf: &[u8], name: &str) -> u64 {
        let f = self
            .field(name)
            .unwrap_or_else(|| panic!("no context field `{name}`"));
        let mut v = [0u8; 8];
        v[..f.size].copy_from_slice(&buf[f.offset..f.offset + f.size]);
        u64::from_le_bytes(v)
    }

    /// Writes field `name` into a context buffer (host side).
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist or the buffer is too small.
    pub fn write(&self, buf: &mut [u8], name: &str, value: u64) {
        let f = self
            .field(name)
            .unwrap_or_else(|| panic!("no context field `{name}`"));
        buf[f.offset..f.offset + f.size].copy_from_slice(&value.to_le_bytes()[..f.size]);
    }
}

/// Builder returned by [`CtxLayout::builder`].
pub struct CtxLayoutBuilder {
    fields: Vec<FieldDef>,
    offset: usize,
}

impl CtxLayoutBuilder {
    /// Appends a field of `size` bytes (1, 2, 4 or 8), naturally aligned.
    ///
    /// # Panics
    ///
    /// Panics on an invalid size or duplicate name.
    pub fn field(mut self, name: &'static str, size: usize, access: FieldAccess) -> Self {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "field `{name}`: size must be 1, 2, 4 or 8"
        );
        assert!(
            self.fields.iter().all(|f| f.name != name),
            "duplicate field `{name}`"
        );
        let offset = (self.offset + size - 1) & !(size - 1);
        self.fields.push(FieldDef {
            name,
            offset,
            size,
            access,
        });
        self.offset = offset + size;
        self
    }

    /// Finishes the layout, rounding the size up to 8 bytes.
    pub fn build(self) -> CtxLayout {
        CtxLayout {
            fields: self.fields,
            size: (self.offset + 7) & !7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> CtxLayout {
        CtxLayout::builder()
            .field("a", 8, FieldAccess::ReadOnly)
            .field("b", 4, FieldAccess::ReadOnly)
            .field("c", 1, FieldAccess::ReadOnly)
            .field("d", 4, FieldAccess::ReadWrite)
            .build()
    }

    #[test]
    fn natural_alignment_and_padding() {
        let l = layout();
        assert_eq!(l.field("a").unwrap().offset, 0);
        assert_eq!(l.field("b").unwrap().offset, 8);
        assert_eq!(l.field("c").unwrap().offset, 12);
        // `d` is 4-byte aligned, so it skips the byte at 13.
        assert_eq!(l.field("d").unwrap().offset, 16);
        assert_eq!(l.size(), 24);
    }

    #[test]
    fn check_access_exact_match_only() {
        let l = layout();
        assert!(l.check_access(0, 0, 8, false).is_ok());
        // Wrong size.
        assert!(matches!(
            l.check_access(0, 0, 4, false),
            Err(VerifyError::BadCtxAccess { .. })
        ));
        // Interior offset.
        assert!(matches!(
            l.check_access(0, 2, 2, false),
            Err(VerifyError::BadCtxAccess { .. })
        ));
        // Padding byte.
        assert!(matches!(
            l.check_access(0, 13, 1, false),
            Err(VerifyError::BadCtxAccess { .. })
        ));
    }

    #[test]
    fn write_permission_enforced() {
        let l = layout();
        assert!(matches!(
            l.check_access(3, 0, 8, true),
            Err(VerifyError::ReadOnlyCtxField { pc: 3, field: "a" })
        ));
        assert!(l.check_access(0, 16, 4, true).is_ok());
    }

    #[test]
    fn host_read_write_roundtrip() {
        let l = layout();
        let mut buf = vec![0u8; l.size()];
        l.write(&mut buf, "a", 0xdead_beef_0bad_cafe);
        l.write(&mut buf, "b", 0x1234_5678);
        l.write(&mut buf, "c", 0xab);
        assert_eq!(l.read(&buf, "a"), 0xdead_beef_0bad_cafe);
        assert_eq!(l.read(&buf, "b"), 0x1234_5678);
        assert_eq!(l.read(&buf, "c"), 0xab);
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_field_panics() {
        CtxLayout::builder()
            .field("x", 8, FieldAccess::ReadOnly)
            .field("x", 4, FieldAccess::ReadOnly);
    }

    #[test]
    fn empty_layout() {
        let l = CtxLayout::empty();
        assert_eq!(l.size(), 0);
        assert!(l.check_access(0, 0, 1, false).is_err());
    }
}
