//! Prepare-time program optimizer.
//!
//! Runs inside [`crate::program::Program::prepare`], after verification,
//! on the lowered instruction form. Three pass groups, each individually
//! switchable through [`OptConfig`]:
//!
//! 1. **Constant folding** (per basic block): a small provenance lattice
//!    tracks registers that hold compile-time constants — immediates, the
//!    frame pointer, map references, and the zeros helper calls leave in
//!    `r1`–`r5`. Fully-constant ALU results rewrite to `ldimm64`,
//!    constant conditional jumps rewrite to an unconditional jump or a
//!    [`PInsn::Nop`], and constant register operands rewrite to
//!    immediates.
//! 2. **Dead-code elimination**: instructions unreachable from the entry
//!    are neutralized to `Nop` in place (numbering is never changed, so
//!    jump targets and fault attribution survive), and stores to stack
//!    bytes no instruction can read are dropped. The read-set is a global
//!    over-approximation — if any load or helper buffer argument has an
//!    unknown base, *all* store elimination is abandoned.
//! 3. **Superinstruction fusion**: adjacent pairs that the interpreter
//!    can retire under a single dispatch — ALU/ALU, load/load, and the
//!    hot `map_lookup` + null-branch idiom — fuse into the wide opcodes
//!    [`PInsn::Alu2`], [`PInsn::Load2`] and [`PInsn::CallMapLookupBr`].
//!    A pair only fuses when its second slot is not a jump target.
//!
//! Every replacement preserves the executed-instruction count through the
//! weight table: folded and eliminated instructions still charge 1 (they
//! stand where an instruction stood), a fused slot charges 2 and its dead
//! second slot 0. Together with the budget pre-charge in the run loop
//! this makes the optimized program observationally identical to the
//! unoptimized one — same results, same side effects, same faults, same
//! `RunReport::insns` — at **every** budget, for every program the
//! verifier accepts. (Like the rest of the prepared form, the passes
//! trust the verifier: programs it would reject may observe differences,
//! e.g. reads of helper-clobbered registers fold to the zeros the
//! prepared interpreter defines them to.)

use std::sync::Arc;

use crate::insn::{AluOp, STACK_SIZE};
use crate::interp::{fold32, fold64};
use crate::map::Map;
use crate::prepare::{
    ptr, ptr_index, ptr_off, ptr_tag, MapOp, PInsn, PSrc, TAG_MAPREF, TAG_STACK,
};

/// Pass switches for [`crate::program::Program::prepare_with`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OptConfig {
    /// Per-basic-block constant folding.
    pub const_fold: bool,
    /// Unreachable-code neutralization and dead stack-store elimination.
    pub dead_store: bool,
    /// Superinstruction fusion.
    pub fuse: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            const_fold: true,
            dead_store: true,
            fuse: true,
        }
    }
}

impl OptConfig {
    /// All passes off: `prepare_with(layout, OptConfig::none())` is the
    /// plain lowering, the baseline differential tests compare against.
    pub fn none() -> Self {
        OptConfig {
            const_fold: false,
            dead_store: false,
            fuse: false,
        }
    }
}

/// Optimizes lowered code in place. `code` excludes the `Halt` sentinel
/// (prepare appends it afterwards); `weights` is parallel to `code` and
/// all-ones on entry. Instruction count and numbering never change.
pub(crate) fn optimize(code: &mut [PInsn], weights: &mut [u32], maps: &[Arc<Map>], cfg: OptConfig) {
    if cfg.const_fold {
        const_fold(code);
    }
    if cfg.dead_store {
        neutralize_unreachable(code);
        eliminate_dead_stores(code, maps);
    }
    if cfg.fuse {
        fuse(code, weights);
    }
}

/// What the lattice knows about a register at one program point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    /// Holds exactly this value on every execution reaching this point.
    Const(u64),
    /// Run-dependent, but provably not a stack pointer (helper results,
    /// the entry context pointer, any 32-bit-truncated value). Lets the
    /// dead-store pass keep working across map-value loads.
    NonStack,
    Unknown,
}

#[derive(Clone)]
struct Lattice {
    regs: [Val; 11],
}

impl Lattice {
    /// Program-entry state: `r1` is the context pointer or 0 (never
    /// stack), `r10` is the constant frame pointer.
    fn entry() -> Lattice {
        let mut l = Lattice::boundary();
        l.regs[1] = Val::NonStack;
        l
    }

    /// Basic-block boundary: everything forgotten except the immutable
    /// frame pointer.
    fn boundary() -> Lattice {
        let mut regs = [Val::Unknown; 11];
        regs[10] = Val::Const(ptr(TAG_STACK, 0, STACK_SIZE as u32));
        Lattice { regs }
    }

    fn get(&self, r: u8) -> Val {
        self.regs[r as usize]
    }

    fn set(&mut self, r: u8, v: Val) {
        self.regs[r as usize] = v;
    }

    fn src(&self, s: PSrc) -> Option<u64> {
        match s {
            PSrc::Imm(v) => Some(v),
            PSrc::Reg(r) => match self.get(r) {
                Val::Const(v) => Some(v),
                _ => None,
            },
        }
    }

    /// Applies one (possibly already rewritten) instruction.
    fn transfer(&mut self, insn: &PInsn) {
        match *insn {
            PInsn::Alu64 { op, dst, src } => {
                let v = match (self.get(dst), self.src(src)) {
                    (Val::Const(a), Some(b)) => Val::Const(fold64(op, a, b)),
                    _ => Val::Unknown,
                };
                self.set(dst, v);
            }
            PInsn::Alu32 { op, dst, src } => {
                // 32-bit results are zero-extended, so the tag nibble is
                // always clear: never a stack pointer.
                let v = match (self.get(dst), self.src(src)) {
                    (Val::Const(a), Some(b)) => {
                        Val::Const(u64::from(fold32(op, a as u32, b as u32)))
                    }
                    _ => Val::NonStack,
                };
                self.set(dst, v);
            }
            PInsn::Mov64R { dst, src } => self.set(dst, self.get(src)),
            PInsn::Mov32R { dst, src } => {
                let v = match self.get(src) {
                    Val::Const(v) => Val::Const(u64::from(v as u32)),
                    _ => Val::NonStack,
                };
                self.set(dst, v);
            }
            PInsn::LdImm64 { dst, imm } => self.set(dst, Val::Const(imm)),
            PInsn::LdMapRef { dst, map_id } => {
                self.set(dst, Val::Const(ptr(TAG_MAPREF, u64::from(map_id), 0)));
            }
            PInsn::Load { dst, .. } => {
                // A loaded scalar is data; the verifier rejects using it
                // as a pointer, so classing it NonStack is sound for the
                // verified programs prepare is contracted to receive.
                self.set(dst, Val::NonStack);
            }
            PInsn::Load2 { d1, d2, .. } => {
                self.set(d1, Val::NonStack);
                self.set(d2, Val::NonStack);
            }
            PInsn::CallEnv0 { .. }
            | PInsn::CallEnv1 { .. }
            | PInsn::CallTrace { .. }
            | PInsn::CallMap { .. }
            | PInsn::CallMapLookupBr { .. } => {
                // Helpers return scalars or map-value pointers (never
                // stack) and the prepared interpreter zeroes r1–r5.
                self.set(0, Val::NonStack);
                for r in 1..=5 {
                    self.set(r, Val::Const(0));
                }
            }
            PInsn::Alu2 { dst1, dst2, .. } => {
                self.set(dst1, Val::Unknown);
                self.set(dst2, Val::Unknown);
            }
            PInsn::Store { .. }
            | PInsn::Ja { .. }
            | PInsn::Jmp { .. }
            | PInsn::Exit
            | PInsn::Trap { .. }
            | PInsn::Halt
            | PInsn::Nop => {}
        }
    }
}

/// Slots that start a basic block: the entry plus every jump target.
/// (Index `len` — the Halt sentinel position — is representable too.)
fn leaders(code: &[PInsn]) -> Vec<bool> {
    let mut lead = vec![false; code.len() + 1];
    lead[0] = true;
    for insn in code {
        match *insn {
            PInsn::Ja { target }
            | PInsn::Jmp { target, .. }
            | PInsn::CallMapLookupBr { target, .. } => lead[target as usize] = true,
            _ => {}
        }
    }
    lead
}

/// Slots reachable from the entry by fall-through and jumps.
fn reachable(code: &[PInsn]) -> Vec<bool> {
    let mut seen = vec![false; code.len() + 1];
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        if pc > code.len() || seen[pc] {
            continue;
        }
        seen[pc] = true;
        if pc == code.len() {
            continue; // Halt sentinel position.
        }
        match code[pc] {
            PInsn::Ja { target } => work.push(target as usize),
            PInsn::Jmp { target, .. } => {
                work.push(target as usize);
                work.push(pc + 1);
            }
            PInsn::CallMapLookupBr { target, .. } => {
                work.push(target as usize);
                work.push(pc + 2);
            }
            PInsn::Exit | PInsn::Trap { .. } | PInsn::Halt => {}
            _ => work.push(pc + 1),
        }
    }
    seen
}

fn const_fold(code: &mut [PInsn]) {
    let lead = leaders(code);
    let mut l = Lattice::entry();
    for pc in 0..code.len() {
        if pc != 0 && lead[pc] {
            l = Lattice::boundary();
        }
        rewrite(&mut code[pc], &l);
        l.transfer(&code[pc]);
    }
}

/// Rewrites one instruction against the lattice state at its entry. Every
/// rewrite is value-preserving for the state the interpreter would be in.
fn rewrite(insn: &mut PInsn, l: &Lattice) {
    // A constant register operand becomes an immediate (PSrc::Imm holds
    // the full pre-extended word, so any u64 is representable).
    let imm_src = |src: PSrc| -> PSrc {
        match src {
            PSrc::Reg(r) => match l.get(r) {
                Val::Const(v) => PSrc::Imm(v),
                _ => src,
            },
            imm => imm,
        }
    };
    match *insn {
        PInsn::Alu64 { op, dst, src } => {
            if let (Val::Const(a), Some(b)) = (l.get(dst), l.src(src)) {
                *insn = PInsn::LdImm64 {
                    dst,
                    imm: fold64(op, a, b),
                };
            } else {
                *insn = PInsn::Alu64 {
                    op,
                    dst,
                    src: imm_src(src),
                };
            }
        }
        PInsn::Alu32 { op, dst, src } => {
            if let (Val::Const(a), Some(b)) = (l.get(dst), l.src(src)) {
                *insn = PInsn::LdImm64 {
                    dst,
                    imm: u64::from(fold32(op, a as u32, b as u32)),
                };
            } else {
                *insn = PInsn::Alu32 {
                    op,
                    dst,
                    src: imm_src(src),
                };
            }
        }
        PInsn::Mov64R { dst, src } => {
            if let Val::Const(v) = l.get(src) {
                *insn = PInsn::LdImm64 { dst, imm: v };
            }
        }
        PInsn::Mov32R { dst, src } => {
            if let Val::Const(v) = l.get(src) {
                *insn = PInsn::LdImm64 {
                    dst,
                    imm: u64::from(v as u32),
                };
            }
        }
        // A map reference is itself a constant tagged pointer.
        PInsn::LdMapRef { dst, map_id } => {
            *insn = PInsn::LdImm64 {
                dst,
                imm: ptr(TAG_MAPREF, u64::from(map_id), 0),
            };
        }
        PInsn::Store {
            size,
            base,
            off,
            src,
        } => {
            *insn = PInsn::Store {
                size,
                base,
                off,
                src: imm_src(src),
            };
        }
        PInsn::Jmp {
            op,
            dst,
            src,
            target,
        } => {
            if let (Val::Const(a), Some(b)) = (l.get(dst), l.src(src)) {
                // Still one executed instruction either way.
                *insn = if op.eval(a, b) {
                    PInsn::Ja { target }
                } else {
                    PInsn::Nop
                };
            } else {
                *insn = PInsn::Jmp {
                    op,
                    dst,
                    src: imm_src(src),
                    target,
                };
            }
        }
        _ => {}
    }
}

fn neutralize_unreachable(code: &mut [PInsn]) {
    let live = reachable(code);
    for (pc, insn) in code.iter_mut().enumerate() {
        if !live[pc] {
            *insn = PInsn::Nop;
        }
    }
}

/// A half-open byte window on the stack.
type Window = (usize, usize);

fn stack_window(base: Val, insn_off: u64, n: usize) -> StackRef {
    match base {
        Val::Const(v) => {
            let addr = v.wrapping_add(insn_off);
            if ptr_tag(addr) == TAG_STACK {
                let off = ptr_off(addr) as usize;
                StackRef::Window((off.min(STACK_SIZE), (off.saturating_add(n)).min(STACK_SIZE)))
            } else {
                StackRef::NotStack
            }
        }
        Val::NonStack => StackRef::NotStack,
        Val::Unknown => StackRef::Unknown,
    }
}

enum StackRef {
    /// Clamped to the stack; an out-of-bounds access faults before
    /// touching anything, so the clamp over-approximates reads and is
    /// exact for the in-bounds candidates stores need.
    Window(Window),
    NotStack,
    Unknown,
}

/// Drops stores to stack bytes that no reachable instruction can read.
/// The read-set is global and flow-insensitive; any unknown-base load or
/// helper buffer argument aborts the whole pass. Run after
/// [`neutralize_unreachable`] so dead code contributes no phantom reads.
fn eliminate_dead_stores(code: &mut [PInsn], maps: &[Arc<Map>]) {
    fn mark(reads: &mut [bool; STACK_SIZE], w: Window) {
        reads[w.0..w.1].iter_mut().for_each(|b| *b = true);
    }
    let lead = leaders(code);
    let mut reads = [false; STACK_SIZE];
    // Candidate stores: (pc, window), provably in-bounds on the stack.
    let mut candidates: Vec<(usize, Window)> = Vec::new();
    let mut l = Lattice::entry();
    for pc in 0..code.len() {
        if pc != 0 && lead[pc] {
            l = Lattice::boundary();
        }
        match code[pc] {
            PInsn::Load {
                size, base, off, ..
            } => match stack_window(l.get(base), off, size.bytes()) {
                StackRef::Window(w) => mark(&mut reads, w),
                StackRef::NotStack => {}
                StackRef::Unknown => return,
            },
            PInsn::Store {
                size, base, off, ..
            } => match stack_window(l.get(base), off, size.bytes()) {
                // Only exactly-bounded windows are candidates: an
                // out-of-bounds store faults and must stay.
                StackRef::Window((s, e)) if e - s == size.bytes() => candidates.push((pc, (s, e))),
                _ => {}
            },
            PInsn::CallTrace { .. } => {
                // Reads `len = r2` bytes at `r1`.
                match (l.get(1), l.get(2)) {
                    (_, Val::Unknown) | (Val::Unknown, _) => return,
                    (base, Val::Const(len)) => {
                        match stack_window(base, 0, (len as usize).min(STACK_SIZE)) {
                            StackRef::Window(w) => mark(&mut reads, w),
                            StackRef::NotStack => {}
                            StackRef::Unknown => return,
                        }
                    }
                    (_, Val::NonStack) => return, // Length unknown.
                }
            }
            PInsn::CallMap { op, .. } => {
                // Key at `r2` (and value at `r3` for update), sized by
                // the map named in `r1`.
                let def = match l.get(1) {
                    // An unknown map id makes the helper fault without
                    // reading, hence the plain `None` from `get`.
                    Val::Const(mref) if ptr_tag(mref) == TAG_MAPREF => {
                        maps.get(ptr_index(mref) as usize).map(|m| m.def())
                    }
                    Val::Const(_) | Val::NonStack => None, // Faults, no read.
                    Val::Unknown => return,
                };
                if let Some(def) = def {
                    match stack_window(l.get(2), 0, def.key_size) {
                        StackRef::Window(w) => mark(&mut reads, w),
                        StackRef::NotStack => {}
                        StackRef::Unknown => return,
                    }
                    if op == MapOp::Update {
                        match stack_window(l.get(3), 0, def.value_size) {
                            StackRef::Window(w) => mark(&mut reads, w),
                            StackRef::NotStack => {}
                            StackRef::Unknown => return,
                        }
                    }
                }
            }
            // CallEnv1 consumes r1 as a scalar, not a buffer; everything
            // else reads no stack memory.
            _ => {}
        }
        l.transfer(&code[pc]);
    }
    for (pc, (s, e)) in candidates {
        if !reads[s..e].iter().any(|b| *b) {
            code[pc] = PInsn::Nop; // Weight stays 1: still one instruction.
        }
    }
}

/// Decomposes ALU-class instructions (including the specialized `mov`
/// forms) into a common shape for pairing.
fn as_alu(p: PInsn) -> Option<(bool, AluOp, u8, PSrc)> {
    match p {
        PInsn::Alu64 { op, dst, src } => Some((true, op, dst, src)),
        PInsn::Alu32 { op, dst, src } => Some((false, op, dst, src)),
        PInsn::Mov64R { dst, src } => Some((true, AluOp::Mov, dst, PSrc::Reg(src))),
        PInsn::Mov32R { dst, src } => Some((false, AluOp::Mov, dst, PSrc::Reg(src))),
        PInsn::LdImm64 { dst, imm } => Some((true, AluOp::Mov, dst, PSrc::Imm(imm))),
        _ => None,
    }
}

/// Pairwise superinstruction fusion. The second slot of a fused pair must
/// not be a jump target (a jump landing there must still execute exactly
/// the second instruction), and becomes a weight-0 `Nop` that is only
/// ever skipped over.
fn fuse(code: &mut [PInsn], weights: &mut [u32]) {
    let lead = leaders(code);
    let mut pc = 0;
    while pc + 1 < code.len() {
        if lead[pc + 1] {
            pc += 1;
            continue;
        }
        let fused = match (code[pc], code[pc + 1]) {
            (
                PInsn::CallMap {
                    op: MapOp::Lookup,
                    helper,
                },
                PInsn::Jmp {
                    op,
                    dst,
                    src,
                    target,
                },
            ) => Some(PInsn::CallMapLookupBr {
                helper,
                jop: op,
                jdst: dst,
                jsrc: src,
                target,
            }),
            (
                PInsn::Load {
                    size: s1,
                    dst: d1,
                    base: b1,
                    off: o1,
                },
                PInsn::Load {
                    size: s2,
                    dst: d2,
                    base: b2,
                    off: o2,
                },
            ) => Some(PInsn::Load2 {
                s1,
                d1,
                b1,
                o1,
                s2,
                d2,
                b2,
                o2,
            }),
            (a, b) => match (as_alu(a), as_alu(b)) {
                (Some((w1, op1, dst1, src1)), Some((w2, op2, dst2, src2))) => Some(PInsn::Alu2 {
                    w1,
                    op1,
                    dst1,
                    src1,
                    w2,
                    op2,
                    dst2,
                    src2,
                }),
                _ => None,
            },
        };
        if let Some(f) = fused {
            code[pc] = f;
            code[pc + 1] = PInsn::Nop;
            weights[pc] += weights[pc + 1];
            weights[pc + 1] = 0;
            pc += 2;
        } else {
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{JmpOp, MemSize};

    fn run_passes(code: &mut [PInsn], maps: &[Arc<Map>], cfg: OptConfig) -> Vec<u32> {
        let mut weights = vec![1u32; code.len()];
        optimize(code, &mut weights, maps, cfg);
        weights
    }

    #[test]
    fn constant_chains_fold_to_ldimm64() {
        let mut code = vec![
            PInsn::LdImm64 { dst: 0, imm: 5 },
            PInsn::Alu64 {
                op: AluOp::Add,
                dst: 0,
                src: PSrc::Imm(3),
            },
            PInsn::Alu64 {
                op: AluOp::Mul,
                dst: 0,
                src: PSrc::Imm(2),
            },
            PInsn::Exit,
        ];
        const_fold(&mut code);
        assert_eq!(code[1], PInsn::LdImm64 { dst: 0, imm: 8 });
        assert_eq!(code[2], PInsn::LdImm64 { dst: 0, imm: 16 });
    }

    #[test]
    fn constant_jumps_become_ja_or_nop() {
        let mut code = vec![
            PInsn::LdImm64 { dst: 1, imm: 7 },
            PInsn::Jmp {
                op: JmpOp::Eq,
                dst: 1,
                src: PSrc::Imm(7),
                target: 3,
            },
            PInsn::Jmp {
                op: JmpOp::Ne,
                dst: 1,
                src: PSrc::Imm(7),
                target: 0,
            },
            PInsn::Exit,
        ];
        const_fold(&mut code);
        assert_eq!(code[1], PInsn::Ja { target: 3 });
        // pc 2 is unreachable after the fold but also a straight-line
        // continuation in the pre-fold CFG; the taken branch folds first,
        // and the (stale) state still proves the second test false.
        assert_eq!(code[2], PInsn::Nop);
    }

    #[test]
    fn folding_resets_at_join_points() {
        // pc 2 is a jump target: r1's constancy must be forgotten there.
        let mut code = vec![
            PInsn::LdImm64 { dst: 1, imm: 1 },
            PInsn::Jmp {
                op: JmpOp::Eq,
                dst: 0,
                src: PSrc::Imm(0),
                target: 2,
            },
            PInsn::Alu64 {
                op: AluOp::Add,
                dst: 1,
                src: PSrc::Imm(1),
            },
            PInsn::Exit,
        ];
        const_fold(&mut code);
        assert_eq!(
            code[2],
            PInsn::Alu64 {
                op: AluOp::Add,
                dst: 1,
                src: PSrc::Imm(1),
            },
            "constants must not flow across basic-block leaders"
        );
    }

    #[test]
    fn unreachable_code_is_neutralized() {
        let mut code = vec![
            PInsn::Ja { target: 2 },
            PInsn::Trap {
                kind: crate::prepare::Trap::WriteR10,
            },
            PInsn::Exit,
        ];
        neutralize_unreachable(&mut code);
        assert_eq!(code[1], PInsn::Nop);
        assert_eq!(code[2], PInsn::Exit);
    }

    fn fp_store(off: u64) -> PInsn {
        PInsn::Store {
            size: MemSize::Dw,
            base: 10,
            off,
            src: PSrc::Imm(1),
        }
    }

    #[test]
    fn unread_stack_stores_are_eliminated() {
        let neg8 = (-8i64) as u64;
        let neg16 = (-16i64) as u64;
        let mut code = vec![
            fp_store(neg8),
            fp_store(neg16),
            PInsn::Load {
                size: MemSize::Dw,
                dst: 0,
                base: 10,
                off: neg16,
            },
            PInsn::Exit,
        ];
        eliminate_dead_stores(&mut code, &[]);
        assert_eq!(code[0], PInsn::Nop, "store at fp-8 is never read");
        assert_eq!(code[1], fp_store(neg16), "store at fp-16 is read back");
    }

    #[test]
    fn unknown_base_load_aborts_store_elimination() {
        let neg8 = (-8i64) as u64;
        let mut code = vec![
            fp_store(neg8),
            // r3 is unknown: this load could alias any stack byte.
            PInsn::Load {
                size: MemSize::Dw,
                dst: 0,
                base: 3,
                off: 0,
            },
            PInsn::Exit,
        ];
        eliminate_dead_stores(&mut code, &[]);
        assert_eq!(code[0], fp_store(neg8), "unknown read-set keeps all stores");
    }

    #[test]
    fn fusion_forms_pairs_and_respects_leaders() {
        let mut code = vec![
            PInsn::LdImm64 { dst: 2, imm: 1 },
            PInsn::Alu64 {
                op: AluOp::Add,
                dst: 2,
                src: PSrc::Imm(4),
            },
            PInsn::CallMap {
                op: MapOp::Lookup,
                helper: 1,
            },
            PInsn::Jmp {
                op: JmpOp::Eq,
                dst: 0,
                src: PSrc::Imm(0),
                target: 5,
            },
            PInsn::Exit,
            PInsn::Exit,
        ];
        let mut weights = vec![1u32; code.len()];
        fuse(&mut code, &mut weights);
        assert!(matches!(code[0], PInsn::Alu2 { .. }));
        assert_eq!(code[1], PInsn::Nop);
        assert!(matches!(code[2], PInsn::CallMapLookupBr { target: 5, .. }));
        assert_eq!(code[3], PInsn::Nop);
        assert_eq!(weights, vec![2, 0, 2, 0, 1, 1]);
    }

    #[test]
    fn fusion_skips_jump_target_second_slots() {
        // pc 2 is a jump target: the pair (1, 2) must stay unfused so the
        // jump still executes exactly instruction 2.
        let mut code = vec![
            PInsn::Jmp {
                op: JmpOp::Eq,
                dst: 0,
                src: PSrc::Imm(0),
                target: 2,
            },
            PInsn::LdImm64 { dst: 1, imm: 1 },
            PInsn::LdImm64 { dst: 2, imm: 2 },
            PInsn::Exit,
        ];
        let mut weights = vec![1u32; code.len()];
        fuse(&mut code, &mut weights);
        assert_eq!(code[1], PInsn::LdImm64 { dst: 1, imm: 1 });
        assert_eq!(code[2], PInsn::LdImm64 { dst: 2, imm: 2 });
        assert_eq!(weights, vec![1, 1, 1, 1]);
    }

    #[test]
    fn weights_always_sum_to_instruction_count() {
        let neg8 = (-8i64) as u64;
        let mut code = vec![
            PInsn::LdImm64 { dst: 1, imm: 3 },
            PInsn::Alu64 {
                op: AluOp::Add,
                dst: 1,
                src: PSrc::Imm(1),
            },
            fp_store(neg8),
            PInsn::Load {
                size: MemSize::Dw,
                dst: 0,
                base: 10,
                off: neg8,
            },
            PInsn::Load {
                size: MemSize::Dw,
                dst: 2,
                base: 10,
                off: neg8,
            },
            PInsn::Exit,
        ];
        let n = code.len() as u32;
        let weights = run_passes(&mut code, &[], OptConfig::default());
        assert_eq!(weights.iter().sum::<u32>(), n);
    }
}
