//! The policy interpreter.
//!
//! Runs a (normally verified) program against a context buffer and a
//! [`PolicyEnv`]. Every check the verifier performs statically is repeated
//! dynamically here — tagged pointers, bounds, initialization, context
//! field permissions — so that a verifier bug turns into a clean
//! [`RunError`] instead of memory unsafety. The property tests in
//! `verifier.rs` lean on this: *any accepted program must run without
//! faulting*.
//!
//! There is deliberately no JIT; the paper's §6 discusses eBPF runtime
//! overhead as an open problem, and the interpreter's per-instruction cost
//! is what Concord charges to virtual time in the simulator.

use std::sync::Arc;

use crate::ctx::CtxLayout;
use crate::error::RunError;
use crate::helpers::{mapops, HelperId, PolicyEnv};
use crate::insn::{AluOp, Insn, MemSize, Operand, Reg, STACK_SIZE};
use crate::map::Map;
use crate::program::Program;

/// Default instruction budget per invocation.
pub const DEFAULT_BUDGET: u64 = 1 << 20;

const TAG_STACK: u64 = 1;
const TAG_CTX: u64 = 2;
const TAG_MAPVAL: u64 = 3;
const TAG_MAPREF: u64 = 4;

fn ptr(tag: u64, index: u64, off: u32) -> u64 {
    (tag << 60) | (index << 32) | u64::from(off)
}

fn ptr_tag(v: u64) -> u64 {
    v >> 60
}

fn ptr_index(v: u64) -> u64 {
    (v >> 32) & 0x0fff_ffff
}

fn ptr_off(v: u64) -> u32 {
    v as u32
}

#[derive(Clone, Copy, Default)]
struct RtVal {
    v: u64,
    init: bool,
}

struct Machine<'a> {
    regs: [RtVal; 11],
    stack: [u8; STACK_SIZE],
    stack_init: [bool; STACK_SIZE],
    ctx: &'a mut [u8],
    layout: &'a CtxLayout,
    prog: &'a Program,
    env: &'a dyn PolicyEnv,
    // Map-value regions live policies hold pointers into: the owning map
    // plus the resolved value slot (kept alive by the `Arc`; slot bytes
    // stay stable until reuse even across a delete).
    map_regions: Vec<(Arc<Map>, u32)>,
    insns_executed: u64,
    budget: u64,
}

/// Outcome counters of one program run (for profiling benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Return value (`r0` at `exit`).
    pub ret: u64,
    /// Instructions executed, including both slots of `ldimm64` as one.
    pub insns: u64,
}

/// Runs `prog` with the default instruction budget.
///
/// # Errors
///
/// Returns [`RunError`] on any dynamic fault; verified programs only ever
/// produce [`RunError::BudgetExhausted`], and only if verified with a
/// smaller budget assumption than given here.
pub fn run_program(
    prog: &Program,
    ctx: &mut [u8],
    layout: &CtxLayout,
    env: &dyn PolicyEnv,
) -> Result<u64, RunError> {
    run_with_budget(prog, ctx, layout, env, DEFAULT_BUDGET).map(|r| r.ret)
}

/// Runs `prog` with an explicit instruction budget, reporting the count of
/// executed instructions.
///
/// # Errors
///
/// See [`run_program`].
pub fn run_with_budget(
    prog: &Program,
    ctx: &mut [u8],
    layout: &CtxLayout,
    env: &dyn PolicyEnv,
    budget: u64,
) -> Result<RunReport, RunError> {
    let mut m = Machine {
        regs: [RtVal::default(); 11],
        stack: [0; STACK_SIZE],
        stack_init: [false; STACK_SIZE],
        ctx,
        layout,
        prog,
        env,
        map_regions: Vec::new(),
        insns_executed: 0,
        budget,
    };
    // r1 = ctx pointer (when a context exists), r10 = frame pointer one past
    // the end of the downward-growing stack.
    if !m.ctx.is_empty() {
        m.regs[1] = RtVal {
            v: ptr(TAG_CTX, 0, 0),
            init: true,
        };
    }
    m.regs[10] = RtVal {
        v: ptr(TAG_STACK, 0, STACK_SIZE as u32),
        init: true,
    };

    let insns = prog.insns();
    let mut pc: usize = 0;
    loop {
        if m.insns_executed >= budget {
            return Err(RunError::BudgetExhausted);
        }
        m.insns_executed += 1;
        let insn = *insns
            .get(pc)
            .ok_or(RunError::PcOutOfBounds { pc: pc as i64 })?;
        match insn {
            Insn::Alu { wide, op, dst, src } => {
                let rhs = m.operand(pc, src)?;
                let lhs = if op == AluOp::Mov {
                    0
                } else {
                    m.read_reg(pc, dst)?
                };
                let out = if wide {
                    fold64(op, lhs, rhs)
                } else {
                    u64::from(fold32(op, lhs as u32, rhs as u32))
                };
                m.write_reg(pc, dst, out)?;
            }
            Insn::LdImm64 { dst, imm } => {
                m.write_reg(pc, dst, imm)?;
            }
            Insn::LdMapRef { dst, map_id } => {
                if prog.map(map_id).is_none() {
                    return Err(RunError::HelperFault {
                        pc,
                        helper: 0,
                        msg: "unknown map id",
                    });
                }
                m.write_reg(pc, dst, ptr(TAG_MAPREF, u64::from(map_id), 0))?;
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                let addr = m.read_reg(pc, base)?.wrapping_add(off as i64 as u64);
                let v = m.mem_load(pc, addr, size)?;
                m.write_reg(pc, dst, v)?;
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => {
                let addr = m.read_reg(pc, base)?.wrapping_add(off as i64 as u64);
                let v = m.operand(pc, src)?;
                m.mem_store(pc, addr, size, v)?;
            }
            Insn::Ja { off } => {
                pc = jump_target(pc, off)?;
                continue;
            }
            Insn::Jmp { op, dst, src, off } => {
                let l = m.read_reg(pc, dst)?;
                let r = m.operand(pc, src)?;
                if op.eval(l, r) {
                    pc = jump_target(pc, off)?;
                    continue;
                }
            }
            Insn::Call { helper } => {
                m.call_helper(pc, helper)?;
            }
            Insn::Exit => {
                let r0 = m.regs[0];
                if !r0.init {
                    return Err(RunError::UninitRegister { pc, reg: 0 });
                }
                return Ok(RunReport {
                    ret: r0.v,
                    insns: m.insns_executed,
                });
            }
        }
        pc += 1;
    }
}

fn jump_target(pc: usize, off: i16) -> Result<usize, RunError> {
    let t = pc as i64 + 1 + i64::from(off);
    if t < 0 {
        Err(RunError::PcOutOfBounds { pc: t })
    } else {
        Ok(t as usize)
    }
}

// The explicit zero checks mirror the eBPF specification text; clippy's
// `checked_div` suggestion would obscure the mod-by-zero = dividend rule.
#[allow(unknown_lints, clippy::manual_checked_ops)]
pub(crate) fn fold64(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a / b
            }
        }
        AluOp::Mod => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => a.wrapping_shl(b as u32 & 63),
        AluOp::Rsh => a.wrapping_shr(b as u32 & 63),
        AluOp::Arsh => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
        AluOp::Neg => (a as i64).wrapping_neg() as u64,
        AluOp::Mov => b,
    }
}

#[allow(unknown_lints, clippy::manual_checked_ops)]
pub(crate) fn fold32(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a / b
            }
        }
        AluOp::Mod => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Lsh => a.wrapping_shl(b & 31),
        AluOp::Rsh => a.wrapping_shr(b & 31),
        AluOp::Arsh => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Neg => (a as i32).wrapping_neg() as u32,
        AluOp::Mov => b,
    }
}

impl Machine<'_> {
    fn read_reg(&self, pc: usize, r: Reg) -> Result<u64, RunError> {
        let rv = self.regs[r.0 as usize];
        if rv.init {
            Ok(rv.v)
        } else {
            Err(RunError::UninitRegister { pc, reg: r.0 })
        }
    }

    fn write_reg(&mut self, pc: usize, r: Reg, v: u64) -> Result<(), RunError> {
        if r == Reg::R10 {
            // The verifier rejects this; at runtime it is a plain fault.
            return Err(RunError::BadAccess { pc, addr: v });
        }
        self.regs[r.0 as usize] = RtVal { v, init: true };
        Ok(())
    }

    fn operand(&self, pc: usize, op: Operand) -> Result<u64, RunError> {
        match op {
            Operand::Reg(r) => self.read_reg(pc, r),
            Operand::Imm(i) => Ok(i as i64 as u64),
        }
    }

    fn mem_load(&mut self, pc: usize, addr: u64, size: MemSize) -> Result<u64, RunError> {
        let n = size.bytes();
        let off = ptr_off(addr) as usize;
        match ptr_tag(addr) {
            TAG_STACK => {
                let end = off.checked_add(n).filter(|e| *e <= STACK_SIZE);
                let end = end.ok_or(RunError::BadAccess { pc, addr })?;
                if !off.is_multiple_of(n) {
                    return Err(RunError::BadAccess { pc, addr });
                }
                if !self.stack_init[off..end].iter().all(|b| *b) {
                    return Err(RunError::BadAccess { pc, addr });
                }
                Ok(read_le(&self.stack[off..end]))
            }
            TAG_CTX => {
                self.layout
                    .check_access(pc, off as i64, n, false)
                    .map_err(|_| RunError::BadAccess { pc, addr })?;
                let end = off + n;
                if end > self.ctx.len() {
                    return Err(RunError::BadAccess { pc, addr });
                }
                Ok(read_le(&self.ctx[off..end]))
            }
            TAG_MAPVAL => {
                let idx = ptr_index(addr) as usize;
                let (map, slot) = self
                    .map_regions
                    .get(idx)
                    .ok_or(RunError::BadAccess { pc, addr })?;
                if !off.is_multiple_of(n) {
                    return Err(RunError::BadAccess { pc, addr });
                }
                map.value_load(*slot, off, n)
                    .ok_or(RunError::BadAccess { pc, addr })
            }
            _ => Err(RunError::BadAccess { pc, addr }),
        }
    }

    fn mem_store(&mut self, pc: usize, addr: u64, size: MemSize, val: u64) -> Result<(), RunError> {
        let n = size.bytes();
        let off = ptr_off(addr) as usize;
        match ptr_tag(addr) {
            TAG_STACK => {
                let end = off.checked_add(n).filter(|e| *e <= STACK_SIZE);
                let end = end.ok_or(RunError::BadAccess { pc, addr })?;
                if !off.is_multiple_of(n) {
                    return Err(RunError::BadAccess { pc, addr });
                }
                self.stack[off..end].copy_from_slice(&val.to_le_bytes()[..n]);
                self.stack_init[off..end].fill(true);
                Ok(())
            }
            TAG_CTX => {
                self.layout
                    .check_access(pc, off as i64, n, true)
                    .map_err(|_| RunError::BadAccess { pc, addr })?;
                let end = off + n;
                if end > self.ctx.len() {
                    return Err(RunError::BadAccess { pc, addr });
                }
                self.ctx[off..end].copy_from_slice(&val.to_le_bytes()[..n]);
                Ok(())
            }
            TAG_MAPVAL => {
                let idx = ptr_index(addr) as usize;
                let (map, slot) = self
                    .map_regions
                    .get(idx)
                    .ok_or(RunError::BadAccess { pc, addr })?;
                if !off.is_multiple_of(n) {
                    return Err(RunError::BadAccess { pc, addr });
                }
                if map.value_store(*slot, off, n, val) {
                    Ok(())
                } else {
                    Err(RunError::BadAccess { pc, addr })
                }
            }
            _ => Err(RunError::BadAccess { pc, addr }),
        }
    }

    /// Reads `len` initialized stack bytes pointed to by `addr`.
    fn stack_bytes(&self, pc: usize, addr: u64, len: usize) -> Result<Vec<u8>, RunError> {
        if ptr_tag(addr) != TAG_STACK {
            return Err(RunError::BadAccess { pc, addr });
        }
        let off = ptr_off(addr) as usize;
        let end = off.checked_add(len).filter(|e| *e <= STACK_SIZE);
        let end = end.ok_or(RunError::BadAccess { pc, addr })?;
        if !self.stack_init[off..end].iter().all(|b| *b) {
            return Err(RunError::BadAccess { pc, addr });
        }
        Ok(self.stack[off..end].to_vec())
    }

    fn helper_fault(pc: usize, helper: u32, msg: &'static str) -> RunError {
        RunError::HelperFault { pc, helper, msg }
    }

    fn call_helper(&mut self, pc: usize, helper: u32) -> Result<(), RunError> {
        let id =
            HelperId::from_u32(helper).ok_or(Self::helper_fault(pc, helper, "unknown helper"))?;
        let ret = match id {
            HelperId::KtimeNs => self.env.ktime_ns(),
            HelperId::CpuId => u64::from(self.env.cpu_id()),
            HelperId::NumaId => u64::from(self.env.numa_id()),
            HelperId::Pid => self.env.pid(),
            HelperId::Prandom => self.env.prandom(),
            HelperId::TaskPriority => {
                let tid = self.read_reg(pc, Reg::R1)?;
                self.env.task_priority(tid) as u64
            }
            HelperId::CpuToNode => {
                let cpu = self.read_reg(pc, Reg::R1)?;
                u64::from(self.env.cpu_to_node(cpu as u32))
            }
            HelperId::CpuOnline => {
                let cpu = self.read_reg(pc, Reg::R1)?;
                u64::from(self.env.cpu_online(cpu as u32))
            }
            HelperId::SchedHint => {
                let code = self.read_reg(pc, Reg::R1)?;
                self.env.sched_hint(code)
            }
            HelperId::TracePrintk => {
                let buf = self.read_reg(pc, Reg::R1)?;
                let len = self.read_reg(pc, Reg::R2)? as usize;
                if len > STACK_SIZE {
                    return Err(Self::helper_fault(pc, helper, "trace length too large"));
                }
                let bytes = self.stack_bytes(pc, buf, len)?;
                self.env.trace(&bytes);
                len as u64
            }
            HelperId::TraceEmit => {
                // The fixed TRACE_EMIT_WEIGHT is charged whether or not the
                // telemetry plane is armed, and before any side effect, so
                // `RunReport::insns` matches the prepared engine's weight
                // table exactly: the loop top already charged 1, the rest
                // is charged here behind the same exhaustion predicate
                // (`weight > budget - executed_before`).
                let extra = u64::from(crate::helpers::TRACE_EMIT_WEIGHT) - 1;
                if extra > self.budget - self.insns_executed {
                    return Err(RunError::BudgetExhausted);
                }
                self.insns_executed += extra;
                let buf = self.read_reg(pc, Reg::R1)?;
                let len = self.read_reg(pc, Reg::R2)? as usize;
                if !(1..=crate::helpers::TRACE_EMIT_MAX_PAYLOAD).contains(&len) {
                    return Err(Self::helper_fault(
                        pc,
                        helper,
                        "trace_emit payload length out of bounds",
                    ));
                }
                let bytes = self.stack_bytes(pc, buf, len)?;
                self.env.trace_emit(&bytes);
                0
            }
            HelperId::MapLookup | HelperId::MapUpdate | HelperId::MapDelete => {
                let mref = self.read_reg(pc, Reg::R1)?;
                if ptr_tag(mref) != TAG_MAPREF {
                    return Err(Self::helper_fault(pc, helper, "arg1 is not a map"));
                }
                let map = self
                    .prog
                    .map(ptr_index(mref) as u32)
                    .ok_or(Self::helper_fault(pc, helper, "unknown map id"))?
                    .clone();
                let key_ptr = self.read_reg(pc, Reg::R2)?;
                let key = self.stack_bytes(pc, key_ptr, map.def().key_size)?;
                let cpu = self.env.cpu_id();
                match id {
                    HelperId::MapLookup => match mapops::lookup(&map, &key, cpu) {
                        Some(slot) => {
                            self.map_regions.push((map, slot));
                            ptr(TAG_MAPVAL, (self.map_regions.len() - 1) as u64, 0)
                        }
                        None => 0,
                    },
                    HelperId::MapUpdate => {
                        let val_ptr = self.read_reg(pc, Reg::R3)?;
                        let val = self.stack_bytes(pc, val_ptr, map.def().value_size)?;
                        // r4 = flags, currently ignored but must be valid.
                        let _flags = self.read_reg(pc, Reg::R4)?;
                        mapops::update(&map, &key, &val, cpu)
                    }
                    HelperId::MapDelete => mapops::delete(&map, &key),
                    _ => unreachable!(),
                }
            }
        };
        // Helper calls clobber the caller-saved argument registers.
        for r in 1..=5 {
            self.regs[r] = RtVal::default();
        }
        self.regs[0] = RtVal { v: ret, init: true };
        Ok(())
    }
}

fn read_le(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{CtxLayout, FieldAccess};
    use crate::helpers::FixedEnv;
    use crate::insn::JmpOp;
    use crate::map::{Map, MapDef, MapKind};
    use crate::program::ProgramBuilder;
    use std::sync::Arc;

    fn run(prog: &Program) -> Result<u64, RunError> {
        run_program(prog, &mut [], &CtxLayout::empty(), &FixedEnv::new())
    }

    #[test]
    fn mov_and_exit() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 1234);
        b.exit();
        assert_eq!(run(&b.build().unwrap()), Ok(1234));
    }

    #[test]
    fn arithmetic_64_and_32() {
        let mut b = ProgramBuilder::new("t");
        b.ld_imm64(Reg::R1, u64::MAX);
        b.mov(Reg::R0, Reg::R1);
        b.alu_imm(AluOp::Add, Reg::R0, 1); // Wraps to 0.
        b.alu_imm(AluOp::Add, Reg::R0, 7); // 7.
        b.alu32_imm(AluOp::Sub, Reg::R0, 9); // 32-bit wrap, zero-extended.
        b.exit();
        assert_eq!(
            run(&b.build().unwrap()),
            Ok(u64::from(7u32.wrapping_sub(9)))
        );
    }

    #[test]
    fn division_by_zero_semantics() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 42);
        b.mov_imm(Reg::R1, 0);
        b.alu(AluOp::Div, Reg::R0, Reg::R1);
        b.exit();
        assert_eq!(run(&b.build().unwrap()), Ok(0));

        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 42);
        b.mov_imm(Reg::R1, 0);
        b.alu(AluOp::Mod, Reg::R0, Reg::R1);
        b.exit();
        assert_eq!(run(&b.build().unwrap()), Ok(42));
    }

    #[test]
    fn stack_store_load_roundtrip() {
        let mut b = ProgramBuilder::new("t");
        b.ld_imm64(Reg::R1, 0xaabb_ccdd_eeff_1122u64); // Arbitrary.
        b.store(MemSize::Dw, Reg::R10, -8, Reg::R1);
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -8);
        b.alu(AluOp::Sub, Reg::R0, Reg::R1);
        b.exit();
        assert_eq!(run(&b.build().unwrap()), Ok(0));
    }

    #[test]
    fn uninit_register_read_faults() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R0, Reg::R7);
        b.exit();
        assert!(matches!(
            run(&b.build().unwrap()),
            Err(RunError::UninitRegister { reg: 7, .. })
        ));
    }

    #[test]
    fn uninit_stack_read_faults() {
        let mut b = ProgramBuilder::new("t");
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -16);
        b.exit();
        assert!(matches!(
            run(&b.build().unwrap()),
            Err(RunError::BadAccess { .. })
        ));
    }

    #[test]
    fn stack_overflow_faults() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 0);
        b.store(MemSize::Dw, Reg::R10, -(STACK_SIZE as i16) - 8, Reg::R1);
        b.exit();
        assert!(matches!(
            run(&b.build().unwrap()),
            Err(RunError::BadAccess { .. })
        ));
    }

    #[test]
    fn ctx_field_access_and_permissions() {
        let layout = CtxLayout::builder()
            .field("in", 8, FieldAccess::ReadOnly)
            .field("out", 8, FieldAccess::ReadWrite)
            .build();
        let mut ctx = vec![0u8; layout.size()];
        layout.write(&mut ctx, "in", 21);

        // out = in * 2; return out.
        let mut b = ProgramBuilder::new("t");
        b.load(MemSize::Dw, Reg::R0, Reg::R1, 0);
        b.alu_imm(AluOp::Mul, Reg::R0, 2);
        b.store(MemSize::Dw, Reg::R1, 8, Reg::R0);
        b.exit();
        let prog = b.build().unwrap();
        let ret = run_program(&prog, &mut ctx, &layout, &FixedEnv::new()).unwrap();
        assert_eq!(ret, 42);
        assert_eq!(layout.read(&ctx, "out"), 42);

        // Writing the read-only field faults at runtime too.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.store(MemSize::Dw, Reg::R1, 0, Reg::R0);
        b.exit();
        let prog = b.build().unwrap();
        assert!(matches!(
            run_program(&prog, &mut ctx, &layout, &FixedEnv::new()),
            Err(RunError::BadAccess { .. })
        ));
    }

    #[test]
    fn helpers_return_env_values_and_clobber_args() {
        let env = FixedEnv::new().cpu(9).numa(2);
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R3, 55); // r3 survives (callee-saved are r6-r9; r3 is clobbered).
        b.call(HelperId::CpuId);
        b.mov(Reg::R6, Reg::R0);
        b.call(HelperId::NumaId);
        b.alu(AluOp::Add, Reg::R0, Reg::R6);
        b.exit();
        let prog = b.build().unwrap();
        let ret = run_program(&prog, &mut [], &CtxLayout::empty(), &env).unwrap();
        assert_eq!(ret, 11);

        // Reading a clobbered register after a call faults.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R3, 55);
        b.call(HelperId::CpuId);
        b.mov(Reg::R0, Reg::R3);
        b.exit();
        assert!(matches!(
            run(&b.build().unwrap()),
            Err(RunError::UninitRegister { reg: 3, .. })
        ));
    }

    #[test]
    fn map_lookup_update_through_program() {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 4,
        }));
        map.update(&1u32.to_le_bytes(), &10u64.to_le_bytes(), 0)
            .unwrap();

        // v = *lookup(m, 1); if (!v) return 0; *v += 5; return *v.
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(Arc::clone(&map));
        b.ldmap(Reg::R1, mid);
        b.store_imm(MemSize::W, Reg::R10, -4, 1);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4);
        b.call(HelperId::MapLookup);
        b.jmp_imm(JmpOp::Ne, Reg::R0, 0, "hit");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        b.label("hit");
        b.load(MemSize::Dw, Reg::R1, Reg::R0, 0);
        b.alu_imm(AluOp::Add, Reg::R1, 5);
        b.store(MemSize::Dw, Reg::R0, 0, Reg::R1);
        b.mov(Reg::R0, Reg::R1);
        b.exit();
        let prog = b.build().unwrap();
        let ret = run(&prog).unwrap();
        assert_eq!(ret, 15);
        assert_eq!(
            map.lookup_copy(&1u32.to_le_bytes(), 0),
            Some(15u64.to_le_bytes().to_vec())
        );
    }

    #[test]
    fn map_lookup_miss_returns_null() {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: 4,
        }));
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(map);
        b.ldmap(Reg::R1, mid);
        b.store_imm(MemSize::W, Reg::R10, -4, 9);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4);
        b.call(HelperId::MapLookup);
        b.exit();
        assert_eq!(run(&b.build().unwrap()), Ok(0));
    }

    #[test]
    fn trace_printk_reaches_env() {
        let env = FixedEnv::new();
        let mut b = ProgramBuilder::new("t");
        b.store_imm(MemSize::B, Reg::R10, -2, b'h' as i32);
        b.store_imm(MemSize::B, Reg::R10, -1, b'i' as i32);
        b.mov(Reg::R1, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R1, -2);
        b.mov_imm(Reg::R2, 2);
        b.call(HelperId::TracePrintk);
        b.exit();
        let prog = b.build().unwrap();
        let ret = run_program(&prog, &mut [], &CtxLayout::empty(), &env).unwrap();
        assert_eq!(ret, 2);
        assert_eq!(env.traces(), vec![b"hi".to_vec()]);
    }

    #[test]
    fn budget_exhaustion_detected() {
        // An intentional infinite loop (the verifier would reject it).
        let prog = Program::new("spin", vec![Insn::Ja { off: -1 }, Insn::Exit], Vec::new());
        let r = run_with_budget(&prog, &mut [], &CtxLayout::empty(), &FixedEnv::new(), 1000);
        assert_eq!(r.unwrap_err(), RunError::BudgetExhausted);
    }

    #[test]
    fn fall_off_end_faults() {
        let prog = Program::new(
            "nop",
            vec![Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(0),
            }],
            Vec::new(),
        );
        assert!(matches!(run(&prog), Err(RunError::PcOutOfBounds { .. })));
    }

    #[test]
    fn misaligned_stack_access_faults() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 1);
        b.store(MemSize::Dw, Reg::R10, -9, Reg::R1);
        b.exit();
        assert!(matches!(
            run(&b.build().unwrap()),
            Err(RunError::BadAccess { .. })
        ));
    }
}
