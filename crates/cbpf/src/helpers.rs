//! Helper functions callable from policies, and the environment trait that
//! backs them.
//!
//! The paper: "we use eBPF helper functions, such as CPU ID, NUMA ID and
//! time along with its map data structure to store information at runtime"
//! (§4.2). The set below covers those plus the map operations and a
//! `trace_printk` analog for the profiling use cases.
//!
//! Helpers are dispatched through [`PolicyEnv`], so the same verified policy
//! runs unchanged against the real machine (thread-locals, `Instant`) or
//! the `ksim` virtual machine (virtual CPU, virtual time).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::map::Map;

/// Borrow-based map helper semantics, shared by both interpreter engines.
///
/// Keys and values are passed as borrows of the policy stack — no `Vec`
/// materialization on the hot path — and resolve to dense value slots (see
/// [`crate::map`]). Failures flatten to the eBPF `-1` helper return; the
/// typed [`crate::error::MapError`] stays host-side.
pub mod mapops {
    use super::Map;

    /// `map_lookup_elem`: key → value slot, `None` on miss.
    #[inline]
    pub fn lookup(map: &Map, key: &[u8], cpu: u32) -> Option<u32> {
        map.lookup_slot(key, cpu)
    }

    /// `map_update_elem`: returns the helper's `0 | -1` convention.
    #[inline]
    pub fn update(map: &Map, key: &[u8], value: &[u8], cpu: u32) -> u64 {
        match map.update(key, value, cpu) {
            Ok(()) => 0,
            Err(_) => (-1i64) as u64,
        }
    }

    /// `map_delete_elem`: returns the helper's `0 | -1` convention.
    #[inline]
    pub fn delete(map: &Map, key: &[u8]) -> u64 {
        match map.delete(key) {
            Ok(()) => 0,
            Err(_) => (-1i64) as u64,
        }
    }
}

/// Stable helper identifiers (the `call` immediate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u32)]
pub enum HelperId {
    /// `map_lookup_elem(map, key_ptr) -> value_ptr | null`
    MapLookup = 1,
    /// `map_update_elem(map, key_ptr, value_ptr, flags) -> 0 | -1`
    MapUpdate = 2,
    /// `map_delete_elem(map, key_ptr) -> 0 | -1`
    MapDelete = 3,
    /// `ktime_ns() -> u64` — current time.
    KtimeNs = 4,
    /// `cpu_id() -> u32` — CPU executing the hook.
    CpuId = 5,
    /// `numa_id() -> u32` — NUMA node of that CPU.
    NumaId = 6,
    /// `pid() -> u64` — task invoking the hook.
    Pid = 7,
    /// `prandom() -> u64` — environment-seeded pseudo-randomness.
    Prandom = 8,
    /// `trace_printk(buf_ptr, len) -> len` — append bytes to the trace.
    TracePrintk = 9,
    /// `task_priority(tid) -> i64` — scheduler priority of a task.
    TaskPriority = 10,
    /// `cpu_to_node(cpu) -> u32` — topology query.
    CpuToNode = 11,
    /// `cpu_online(cpu) -> 0|1` — scheduler context: is the vCPU running?
    /// (the §3.1.1 double-scheduling channel: the hypervisor exposes vCPU
    /// scheduling information to the shuffler).
    CpuOnline = 12,
    /// `trace_emit(buf_ptr, len) -> 0` — publish up to
    /// [`TRACE_EMIT_MAX_PAYLOAD`] bytes as a structured telemetry event.
    /// Unlike `trace_printk` this is cheap and decision-hook-safe: the
    /// payload is bounds-checked by the verifier, the cost is the fixed
    /// [`TRACE_EMIT_WEIGHT`] charged against the budget whether or not
    /// the trace plane is armed, and the bytes land in the per-CPU ring
    /// as an ordered `policy_emit` record rather than a printk string.
    TraceEmit = 13,
    /// `sched_hint(code) -> u64` — schedule-exploration channel: inside
    /// the explorer (`concord::explore`), a steering policy queries run
    /// state (points visited, injections made, per-point randomness) by
    /// code; outside the explorer every code returns 0.
    SchedHint = 14,
}

/// Largest payload `trace_emit` accepts, enforced statically by the
/// verifier and again at run time by both engines. Matches the trace
/// record's inline payload capacity (`telemetry::MAX_PAYLOAD`).
pub const TRACE_EMIT_MAX_PAYLOAD: usize = 16;

/// Fixed instruction-budget weight of one `trace_emit` call, charged
/// identically by the legacy interpreter and the prepared engine, and
/// identically whether the telemetry plane is armed or disarmed — so
/// `RunReport::insns` (and every figure CSV derived from it) is
/// byte-identical with tracing off.
pub const TRACE_EMIT_WEIGHT: u32 = 4;

impl HelperId {
    /// Looks an id up from the `call` immediate.
    pub fn from_u32(v: u32) -> Option<HelperId> {
        HELPERS.iter().find(|h| h.id as u32 == v).map(|h| h.id)
    }

    /// Looks an id up from its assembler name.
    pub fn from_name(name: &str) -> Option<HelperId> {
        HELPERS.iter().find(|h| h.name == name).map(|h| h.id)
    }

    /// Assembler name.
    pub fn name(self) -> &'static str {
        HELPERS
            .iter()
            .find(|h| h.id == self)
            .map(|h| h.name)
            .unwrap_or("?")
    }

    /// Signature for the verifier.
    pub fn sig(self) -> &'static HelperSig {
        HELPERS
            .iter()
            .find(|h| h.id == self)
            .expect("all ids in table")
    }
}

/// Argument type expected by a helper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArgSpec {
    /// Any initialized scalar.
    Scalar,
    /// A map reference produced by `ldmap`.
    MapRef,
    /// Pointer to initialized stack bytes of the referenced map's key size;
    /// the map is the helper's first argument.
    MapKeyPtr,
    /// Pointer to initialized stack bytes of the referenced map's value
    /// size; the map is the helper's first argument.
    MapValuePtr,
    /// Pointer to initialized stack bytes whose length is given by the next
    /// argument (which must be a known constant).
    StackBufWithLen,
}

/// Return type of a helper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetSpec {
    /// An ordinary scalar.
    Scalar,
    /// Pointer to the first argument map's value, or null — must be
    /// null-checked before dereferencing.
    MapValueOrNull,
}

/// Verifier-facing signature of a helper.
#[derive(Debug)]
pub struct HelperSig {
    /// Stable id.
    pub id: HelperId,
    /// Assembler name.
    pub name: &'static str,
    /// Argument specs for `r1..`.
    pub args: &'static [ArgSpec],
    /// Return spec for `r0`.
    pub ret: RetSpec,
}

/// The helper table.
pub static HELPERS: &[HelperSig] = &[
    HelperSig {
        id: HelperId::MapLookup,
        name: "map_lookup_elem",
        args: &[ArgSpec::MapRef, ArgSpec::MapKeyPtr],
        ret: RetSpec::MapValueOrNull,
    },
    HelperSig {
        id: HelperId::MapUpdate,
        name: "map_update_elem",
        args: &[
            ArgSpec::MapRef,
            ArgSpec::MapKeyPtr,
            ArgSpec::MapValuePtr,
            ArgSpec::Scalar,
        ],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::MapDelete,
        name: "map_delete_elem",
        args: &[ArgSpec::MapRef, ArgSpec::MapKeyPtr],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::KtimeNs,
        name: "ktime_ns",
        args: &[],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::CpuId,
        name: "cpu_id",
        args: &[],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::NumaId,
        name: "numa_id",
        args: &[],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::Pid,
        name: "pid",
        args: &[],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::Prandom,
        name: "prandom",
        args: &[],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::TracePrintk,
        name: "trace_printk",
        args: &[ArgSpec::StackBufWithLen, ArgSpec::Scalar],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::TaskPriority,
        name: "task_priority",
        args: &[ArgSpec::Scalar],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::CpuToNode,
        name: "cpu_to_node",
        args: &[ArgSpec::Scalar],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::CpuOnline,
        name: "cpu_online",
        args: &[ArgSpec::Scalar],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::TraceEmit,
        name: "trace_emit",
        args: &[ArgSpec::StackBufWithLen, ArgSpec::Scalar],
        ret: RetSpec::Scalar,
    },
    HelperSig {
        id: HelperId::SchedHint,
        name: "sched_hint",
        args: &[ArgSpec::Scalar],
        ret: RetSpec::Scalar,
    },
];

/// Execution environment a policy runs against.
///
/// Implementations exist for the real machine (Concord's hook sites) and
/// for the `ksim` virtual machine, plus [`FixedEnv`] for tests.
pub trait PolicyEnv {
    /// CPU executing the hook.
    fn cpu_id(&self) -> u32;
    /// NUMA node of that CPU.
    fn numa_id(&self) -> u32;
    /// Monotonic time in nanoseconds.
    fn ktime_ns(&self) -> u64;
    /// Task invoking the hook.
    fn pid(&self) -> u64;
    /// Seeded pseudo-randomness (0 is a valid implementation).
    fn prandom(&self) -> u64 {
        0
    }
    /// Scheduler priority of `tid` (higher = more important here).
    fn task_priority(&self, _tid: u64) -> i64 {
        0
    }
    /// Socket of `cpu`.
    fn cpu_to_node(&self, cpu: u32) -> u32 {
        let _ = cpu;
        0
    }
    /// Whether `cpu` is currently scheduled (vCPU running); bare metal
    /// is always online.
    fn cpu_online(&self, _cpu: u32) -> bool {
        true
    }
    /// Receives `trace_printk` bytes.
    fn trace(&self, _bytes: &[u8]) {}
    /// Receives `trace_emit` payloads. Real and simulated environments
    /// forward these into the telemetry plane as `policy_emit` records;
    /// the default discards them.
    fn trace_emit(&self, _payload: &[u8]) {}
    /// Answers a `sched_hint(code)` query. Only the schedule explorer's
    /// environment implements this; everywhere else the helper is inert.
    fn sched_hint(&self, _code: u64) -> u64 {
        0
    }
}

/// A [`PolicyEnv`] with fixed values, for tests and documentation.
///
/// # Examples
///
/// ```
/// use cbpf::helpers::{FixedEnv, PolicyEnv};
///
/// let env = FixedEnv::new().cpu(3).numa(1).time(99).with_pid(42);
/// assert_eq!(env.cpu_id(), 3);
/// assert_eq!(env.ktime_ns(), 99);
/// ```
#[derive(Default)]
pub struct FixedEnv {
    cpu: u32,
    numa: u32,
    time: u64,
    pid: u64,
    random: u64,
    priorities: Vec<(u64, i64)>,
    cores_per_node: u32,
    traces: Arc<Mutex<Vec<Vec<u8>>>>,
    emits: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl FixedEnv {
    /// Creates an all-zero environment.
    pub fn new() -> Self {
        FixedEnv {
            cores_per_node: 10,
            ..Default::default()
        }
    }

    /// Sets the CPU id.
    pub fn cpu(mut self, v: u32) -> Self {
        self.cpu = v;
        self
    }

    /// Sets the NUMA node id.
    pub fn numa(mut self, v: u32) -> Self {
        self.numa = v;
        self
    }

    /// Sets the clock.
    pub fn time(mut self, v: u64) -> Self {
        self.time = v;
        self
    }

    /// Sets the task id.
    pub fn with_pid(mut self, v: u64) -> Self {
        self.pid = v;
        self
    }

    /// Sets the value `prandom` returns.
    pub fn random(mut self, v: u64) -> Self {
        self.random = v;
        self
    }

    /// Registers a task priority.
    pub fn priority(mut self, tid: u64, prio: i64) -> Self {
        self.priorities.push((tid, prio));
        self
    }

    /// Sets the cores-per-node divisor used by `cpu_to_node`.
    pub fn cores_per_node(mut self, v: u32) -> Self {
        assert!(v > 0);
        self.cores_per_node = v;
        self
    }

    /// Bytes captured from `trace_printk` calls.
    pub fn traces(&self) -> Vec<Vec<u8>> {
        self.traces.lock().clone()
    }

    /// Payloads captured from `trace_emit` calls.
    pub fn emits(&self) -> Vec<Vec<u8>> {
        self.emits.lock().clone()
    }
}

impl PolicyEnv for FixedEnv {
    fn cpu_id(&self) -> u32 {
        self.cpu
    }

    fn numa_id(&self) -> u32 {
        self.numa
    }

    fn ktime_ns(&self) -> u64 {
        self.time
    }

    fn pid(&self) -> u64 {
        self.pid
    }

    fn prandom(&self) -> u64 {
        self.random
    }

    fn task_priority(&self, tid: u64) -> i64 {
        self.priorities
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, p)| *p)
            .unwrap_or(0)
    }

    fn cpu_to_node(&self, cpu: u32) -> u32 {
        cpu / self.cores_per_node
    }

    fn trace(&self, bytes: &[u8]) {
        self.traces.lock().push(bytes.to_vec());
    }

    fn trace_emit(&self, payload: &[u8]) {
        self.emits.lock().push(payload.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_names_and_codes() {
        for h in HELPERS {
            assert_eq!(HelperId::from_u32(h.id as u32), Some(h.id));
            assert_eq!(HelperId::from_name(h.name), Some(h.id));
            assert_eq!(h.id.name(), h.name);
            assert_eq!(h.id.sig().id, h.id);
        }
        assert_eq!(HelperId::from_u32(0), None);
        assert_eq!(HelperId::from_u32(999), None);
        assert_eq!(HelperId::from_name("bogus"), None);
    }

    #[test]
    fn map_helpers_take_map_first() {
        for id in [
            HelperId::MapLookup,
            HelperId::MapUpdate,
            HelperId::MapDelete,
        ] {
            assert_eq!(id.sig().args[0], ArgSpec::MapRef);
        }
        assert_eq!(HelperId::MapLookup.sig().ret, RetSpec::MapValueOrNull);
    }

    #[test]
    fn fixed_env_reports_configured_values() {
        let env = FixedEnv::new()
            .cpu(12)
            .numa(3)
            .time(1000)
            .with_pid(77)
            .random(5)
            .priority(77, -2)
            .cores_per_node(4);
        assert_eq!(env.cpu_id(), 12);
        assert_eq!(env.numa_id(), 3);
        assert_eq!(env.ktime_ns(), 1000);
        assert_eq!(env.pid(), 77);
        assert_eq!(env.prandom(), 5);
        assert_eq!(env.task_priority(77), -2);
        assert_eq!(env.task_priority(1), 0);
        assert_eq!(env.cpu_to_node(9), 2);
        env.trace(b"hello");
        assert_eq!(env.traces(), vec![b"hello".to_vec()]);
    }
}
