//! The prepared execution form: a one-time, verifier-trusted lowering of a
//! [`Program`] that the fast interpreter loop runs without per-step
//! re-decoding.
//!
//! [`Program::prepare`] resolves everything that is constant across runs:
//!
//! * operands are pre-decoded (immediates sign-extended once, registers as
//!   plain indices);
//! * jump targets become absolute instruction indices, validated once;
//! * map references are checked against the map table once, and the table
//!   itself is bound into the prepared form;
//! * helper ids are resolved to function pointers (for the pure
//!   environment helpers) or typed map/trace operations;
//! * context-field permissions are baked into an O(1) offset-indexed
//!   table instead of the per-access linear field scan.
//!
//! The prepared loop then drops the dynamic plumbing the verifier already
//! guarantees is unnecessary: no register/stack initialization tracking,
//! no alignment re-checks, no `Option` chasing on map ids. What it keeps,
//! bit-for-bit, are the semantics that define results: the instruction
//! budget, eBPF division/modulo-by-zero rules, tagged-pointer dispatch,
//! bounds checks (as clean faults), and helper clobbering.
//!
//! Faults can therefore still occur (e.g. budget exhaustion) and carry the
//! same [`RunError`] values the legacy interpreter produces. Lowering
//! itself is total: statically invalid instructions (frame-pointer
//! writes, out-of-range jump targets, unknown maps or helpers) become
//! trap instructions that fault when *reached* — the verifier accepts
//! such instructions in unreachable code, and only there. For programs
//! the verifier rejects, behavior may differ from [`crate::interp`] in
//! fault detail (uninitialized reads yield zero, traps fire at the start
//! of the offending instruction). Verified programs never observe any
//! difference, which is exactly the trust contract: prepare after
//! verification.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::ctx::{CtxLayout, FieldAccess};
use crate::error::RunError;
use crate::fault::FaultInjector;
use crate::helpers::{mapops, HelperId, PolicyEnv};
use crate::insn::{AluOp, Insn, JmpOp, MemSize, Operand, Reg, STACK_SIZE};
use crate::interp::{fold32, fold64, RunReport, DEFAULT_BUDGET};
use crate::map::Map;
use crate::opt::OptConfig;
use crate::program::Program;

pub(crate) const TAG_STACK: u64 = 1;
pub(crate) const TAG_CTX: u64 = 2;
pub(crate) const TAG_MAPVAL: u64 = 3;
pub(crate) const TAG_MAPREF: u64 = 4;

pub(crate) fn ptr(tag: u64, index: u64, off: u32) -> u64 {
    (tag << 60) | (index << 32) | u64::from(off)
}

pub(crate) fn ptr_tag(v: u64) -> u64 {
    v >> 60
}

pub(crate) fn ptr_index(v: u64) -> u64 {
    (v >> 32) & 0x0fff_ffff
}

pub(crate) fn ptr_off(v: u64) -> u32 {
    v as u32
}

/// Why a lowered [`PInsn::Trap`] faults when reached. Each kind maps to
/// the fault the legacy interpreter raises for the same instruction; the
/// verifier only accepts these instructions in unreachable code.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Trap {
    /// The instruction writes the frame pointer.
    WriteR10,
    /// A jump whose absolute target leaves `[0, len]`.
    Jump { target: i64 },
    /// `ldmap` names a map id outside the program's table.
    UnknownMap,
    /// `call` names an unknown helper.
    UnknownHelper { helper: u32 },
}

impl Trap {
    pub(crate) fn to_error(self, pc: usize) -> RunError {
        match self {
            // Legacy reports the written value as `addr`; statically we
            // only know the write is illegal, so report address zero.
            Trap::WriteR10 => RunError::BadAccess { pc, addr: 0 },
            Trap::Jump { target } => RunError::PcOutOfBounds { pc: target },
            Trap::UnknownMap => RunError::HelperFault {
                pc,
                helper: 0,
                msg: "unknown map id",
            },
            Trap::UnknownHelper { helper } => RunError::HelperFault {
                pc,
                helper,
                msg: "unknown helper",
            },
        }
    }
}

/// A pre-decoded operand: register index or sign-extended immediate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PSrc {
    Reg(u8),
    Imm(u64),
}

/// One lowered instruction. Jump targets are absolute indices into the
/// prepared code; a [`PInsn::Halt`] sentinel sits one past the last real
/// instruction so falling off the end is an ordinary dispatch.
///
/// The fused variants ([`PInsn::Alu2`], [`PInsn::Load2`],
/// [`PInsn::CallMapLookupBr`]) are produced only by [`crate::opt`] — raw
/// bytecode has no encoding for them, so a program can never name one
/// directly. Each occupies its source pair's first slot (the second slot
/// becomes a weight-0 [`PInsn::Nop`], preserving instruction numbering
/// for jump targets and fault attribution).
// PartialEq is for optimizer tests; the fn-pointer comparison in the
// CallEnv variants is fine there (same codegen unit, exact same item).
#[allow(unpredictable_function_pointer_comparisons)]
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum PInsn {
    Alu64 { op: AluOp, dst: u8, src: PSrc },
    Alu32 { op: AluOp, dst: u8, src: PSrc },
    // `mov` is by far the most common ALU op in compiled policies, so it
    // gets dedicated variants that skip the operand and opcode dispatch
    // (immediate moves lower to `LdImm64` with the extension pre-applied).
    Mov64R { dst: u8, src: u8 },
    Mov32R { dst: u8, src: u8 },
    LdImm64 { dst: u8, imm: u64 },
    LdMapRef { dst: u8, map_id: u32 },
    Load { size: MemSize, dst: u8, base: u8, off: u64 },
    Store { size: MemSize, base: u8, off: u64, src: PSrc },
    Ja { target: u32 },
    Jmp { op: JmpOp, dst: u8, src: PSrc, target: u32 },
    CallEnv0 { f: fn(&dyn PolicyEnv) -> u64 },
    CallEnv1 { f: fn(&dyn PolicyEnv, u64) -> u64 },
    CallTrace { helper: u32 },
    CallMap { op: MapOp, helper: u32 },
    Exit,
    Trap { kind: Trap },
    Halt,
    /// Executes nothing. Weight 1 when it replaces a folded/eliminated
    /// instruction (still counted, like the instruction it stands for);
    /// weight 0 in the dead second slot of a fused pair.
    Nop,
    /// Two back-to-back ALU-class instructions under one dispatch and one
    /// budget charge, executed strictly in sequence (`mov` canonicalizes
    /// to `AluOp::Mov`; immediates carry pre-extended values).
    Alu2 {
        w1: bool,
        op1: AluOp,
        dst1: u8,
        src1: PSrc,
        w2: bool,
        op2: AluOp,
        dst2: u8,
        src2: PSrc,
    },
    /// Two back-to-back loads. A fault in the second half is attributed
    /// to `pc + 1`, exactly as the unfused pair reports it.
    Load2 {
        s1: MemSize,
        d1: u8,
        b1: u8,
        o1: u64,
        s2: MemSize,
        d2: u8,
        b2: u8,
        o2: u64,
    },
    /// `call map_lookup` immediately followed by a conditional branch on
    /// the result — the hot "lookup then null-check" policy idiom.
    CallMapLookupBr {
        helper: u32,
        jop: JmpOp,
        jdst: u8,
        jsrc: PSrc,
        target: u32,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum MapOp {
    Lookup,
    Update,
    Delete,
}

// The pure environment helpers, as plain functions so `prepare` can bind
// `call` instructions to pointers instead of dispatching on ids per run.
fn env_ktime(env: &dyn PolicyEnv) -> u64 {
    env.ktime_ns()
}

fn env_cpu(env: &dyn PolicyEnv) -> u64 {
    u64::from(env.cpu_id())
}

fn env_numa(env: &dyn PolicyEnv) -> u64 {
    u64::from(env.numa_id())
}

fn env_pid(env: &dyn PolicyEnv) -> u64 {
    env.pid()
}

fn env_prandom(env: &dyn PolicyEnv) -> u64 {
    env.prandom()
}

fn env_task_priority(env: &dyn PolicyEnv, tid: u64) -> u64 {
    env.task_priority(tid) as u64
}

fn env_cpu_to_node(env: &dyn PolicyEnv, cpu: u64) -> u64 {
    u64::from(env.cpu_to_node(cpu as u32))
}

fn env_cpu_online(env: &dyn PolicyEnv, cpu: u64) -> u64 {
    u64::from(env.cpu_online(cpu as u32))
}

fn env_sched_hint(env: &dyn PolicyEnv, code: u64) -> u64 {
    env.sched_hint(code)
}

/// When [`PreparedProgram::run`] hands execution to the compiled
/// ([`crate::jit`]) tier instead of the prepared interpreter.
///
/// The two tiers are observationally identical — same [`RunReport`]
/// (including the executed-instruction count), same context and map side
/// effects, same faults at every budget — so tier selection is purely a
/// performance decision and never changes results.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JitMode {
    /// Never compile; every run uses the prepared interpreter.
    Off,
    /// Compile (once) after this many invocations; runs before the
    /// threshold use the interpreter. `Threshold(0)` compiles on first
    /// use.
    Threshold(u64),
    /// Compile on the first run.
    Eager,
}

impl Default for JitMode {
    /// [`JitMode::Threshold`] at [`default_jit_threshold`].
    fn default() -> Self {
        JitMode::Threshold(default_jit_threshold())
    }
}

/// Invocations before the auto tier compiles, when `C3_JIT_THRESHOLD` is
/// unset.
pub const DEFAULT_JIT_THRESHOLD: u64 = 64;

/// The hot-invocation threshold for [`JitMode::default`]: the value of
/// `C3_JIT_THRESHOLD` (read once per process), else
/// [`DEFAULT_JIT_THRESHOLD`].
pub fn default_jit_threshold() -> u64 {
    static THRESHOLD: OnceLock<u64> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("C3_JIT_THRESHOLD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_JIT_THRESHOLD)
    })
}

/// Pins one execution engine, bypassing [`JitMode`] selection — for
/// differential tests and benchmarks that compare the tiers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecTier {
    /// The prepared interpreter loop.
    Interp,
    /// The compiled tier (compiling it on first use if needed).
    Jit,
}

/// O(1) context access control: per byte offset, a bitmask of permitted
/// access widths (bit k ⇔ width `1 << k`), reads and writes separately.
/// Replaces the legacy per-access linear scan over the field list.
pub(crate) struct CtxPerm {
    read: Box<[u8]>,
    write: Box<[u8]>,
}

impl CtxPerm {
    fn build(layout: &CtxLayout) -> Self {
        let mut read = vec![0u8; layout.size()].into_boxed_slice();
        let mut write = vec![0u8; layout.size()].into_boxed_slice();
        for f in layout.fields() {
            let bit = 1u8 << f.size.trailing_zeros();
            read[f.offset] |= bit;
            if f.access == FieldAccess::ReadWrite {
                write[f.offset] |= bit;
            }
        }
        CtxPerm { read, write }
    }

    #[inline]
    fn read_ok(&self, off: usize, n: usize) -> bool {
        self.read.get(off).is_some_and(|m| m & (n as u8) != 0)
    }

    #[inline]
    fn write_ok(&self, off: usize, n: usize) -> bool {
        self.write.get(off).is_some_and(|m| m & (n as u8) != 0)
    }
}

/// The verifier-trusted execution form produced by [`Program::prepare`].
pub struct PreparedProgram {
    name: String,
    pub(crate) code: Box<[PInsn]>,
    /// Per-slot budget charge, parallel to `code`. Ordinary slots charge
    /// 1; a fused slot charges its whole source pair up front and the
    /// dead second slot charges 0, so the executed-instruction count (and
    /// with it the DES virtual-time accounting) is bit-identical to the
    /// unoptimized program on every path and at every budget.
    pub(crate) weights: Box<[u32]>,
    pub(crate) maps: Box<[Arc<Map>]>,
    pub(crate) perm: CtxPerm,
    /// Tier policy for [`PreparedProgram::run`].
    jit_mode: JitMode,
    /// Interpreter invocations so far, for [`JitMode::Threshold`]. Stops
    /// advancing once the compiled tier is built.
    invocations: AtomicU64,
    /// The compiled tier, built at most once per prepared program.
    jit: OnceLock<crate::jit::JitProgram>,
}

impl std::fmt::Debug for PreparedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedProgram")
            .field("name", &self.name)
            .field("insns", &(self.code.len() - 1))
            .field("maps", &self.maps.len())
            .finish()
    }
}

impl Program {
    /// Lowers the program to its prepared execution form against `layout`.
    ///
    /// Call after verification: the prepared interpreter trusts the
    /// verifier's guarantees (initialization, alignment, jump shape) and
    /// does not re-check them per step. Lowering is total — statically
    /// invalid instructions become traps that fault if ever reached (the
    /// verifier only accepts them in unreachable code).
    ///
    /// Runs the prepare-time optimizer ([`crate::opt`]) with its default
    /// configuration; use [`Program::prepare_with`] to tune or disable
    /// individual passes.
    pub fn prepare(&self, layout: &CtxLayout) -> PreparedProgram {
        self.prepare_with(layout, OptConfig::default())
    }

    /// Like [`Program::prepare`], with explicit control over the
    /// optimizer passes ([`OptConfig::none`] disables them all, which is
    /// what differential tests compare against).
    pub fn prepare_with(&self, layout: &CtxLayout, opt: OptConfig) -> PreparedProgram {
        self.prepare_with_jit(layout, opt, JitMode::default())
    }

    /// Like [`Program::prepare_with`], with an explicit tier-selection
    /// override: [`JitMode::Off`] pins the prepared interpreter,
    /// [`JitMode::Eager`] compiles on first run, and
    /// [`JitMode::Threshold`] tunes the hot-invocation crossover.
    pub fn prepare_with_jit(
        &self,
        layout: &CtxLayout,
        opt: OptConfig,
        jit_mode: JitMode,
    ) -> PreparedProgram {
        let insns = self.insns();
        let len = insns.len();
        let mut code = Vec::with_capacity(len + 1);
        // A jump target in [0, len] is sound (len hits the Halt
        // sentinel); anything else lowers the whole jump to a trap.
        let target_of = |pc: usize, off: i16| -> Result<u32, Trap> {
            let t = pc as i64 + 1 + i64::from(off);
            if t < 0 || t > len as i64 {
                Err(Trap::Jump { target: t })
            } else {
                Ok(t as u32)
            }
        };
        let no_fp = |dst: Reg| -> Result<u8, Trap> {
            if dst == Reg::R10 {
                Err(Trap::WriteR10)
            } else {
                Ok(dst.0)
            }
        };
        let lower_src = |src: Operand| match src {
            Operand::Reg(r) => PSrc::Reg(r.0),
            Operand::Imm(i) => PSrc::Imm(i as i64 as u64),
        };
        for (pc, insn) in insns.iter().enumerate() {
            let lowered = match *insn {
                Insn::Alu { wide, op, dst, src } => no_fp(dst).map(|dst| {
                    match (op, wide, src) {
                        // `mov` ignores the old dst value; pre-truncate
                        // immediates so the 32-bit form is a plain load.
                        (AluOp::Mov, true, Operand::Imm(i)) => PInsn::LdImm64 {
                            dst,
                            imm: i as i64 as u64,
                        },
                        (AluOp::Mov, false, Operand::Imm(i)) => PInsn::LdImm64 {
                            dst,
                            imm: u64::from(i as u32),
                        },
                        (AluOp::Mov, true, Operand::Reg(r)) => PInsn::Mov64R { dst, src: r.0 },
                        (AluOp::Mov, false, Operand::Reg(r)) => PInsn::Mov32R { dst, src: r.0 },
                        (op, true, src) => PInsn::Alu64 {
                            op,
                            dst,
                            src: lower_src(src),
                        },
                        (op, false, src) => PInsn::Alu32 {
                            op,
                            dst,
                            src: lower_src(src),
                        },
                    }
                }),
                Insn::LdImm64 { dst, imm } => no_fp(dst).map(|dst| PInsn::LdImm64 { dst, imm }),
                Insn::LdMapRef { dst, map_id } => {
                    if self.map(map_id).is_none() {
                        // Legacy checks the map table before the register
                        // write, so the map trap wins over WriteR10.
                        Err(Trap::UnknownMap)
                    } else {
                        no_fp(dst).map(|dst| PInsn::LdMapRef { dst, map_id })
                    }
                }
                Insn::Load {
                    size,
                    dst,
                    base,
                    off,
                } => no_fp(dst).map(|dst| PInsn::Load {
                    size,
                    dst,
                    base: base.0,
                    off: off as i64 as u64,
                }),
                Insn::Store {
                    size,
                    base,
                    off,
                    src,
                } => Ok(PInsn::Store {
                    size,
                    base: base.0,
                    off: off as i64 as u64,
                    src: lower_src(src),
                }),
                Insn::Ja { off } => target_of(pc, off).map(|target| PInsn::Ja { target }),
                Insn::Jmp { op, dst, src, off } => target_of(pc, off).map(|target| PInsn::Jmp {
                    op,
                    dst: dst.0,
                    src: lower_src(src),
                    target,
                }),
                Insn::Call { helper } => match HelperId::from_u32(helper) {
                    Some(HelperId::KtimeNs) => Ok(PInsn::CallEnv0 { f: env_ktime }),
                    Some(HelperId::CpuId) => Ok(PInsn::CallEnv0 { f: env_cpu }),
                    Some(HelperId::NumaId) => Ok(PInsn::CallEnv0 { f: env_numa }),
                    Some(HelperId::Pid) => Ok(PInsn::CallEnv0 { f: env_pid }),
                    Some(HelperId::Prandom) => Ok(PInsn::CallEnv0 { f: env_prandom }),
                    Some(HelperId::TaskPriority) => Ok(PInsn::CallEnv1 {
                        f: env_task_priority,
                    }),
                    Some(HelperId::CpuToNode) => Ok(PInsn::CallEnv1 { f: env_cpu_to_node }),
                    Some(HelperId::CpuOnline) => Ok(PInsn::CallEnv1 { f: env_cpu_online }),
                    Some(HelperId::SchedHint) => Ok(PInsn::CallEnv1 { f: env_sched_hint }),
                    Some(HelperId::TracePrintk) | Some(HelperId::TraceEmit) => {
                        Ok(PInsn::CallTrace { helper })
                    }
                    Some(HelperId::MapLookup) => Ok(PInsn::CallMap {
                        op: MapOp::Lookup,
                        helper,
                    }),
                    Some(HelperId::MapUpdate) => Ok(PInsn::CallMap {
                        op: MapOp::Update,
                        helper,
                    }),
                    Some(HelperId::MapDelete) => Ok(PInsn::CallMap {
                        op: MapOp::Delete,
                        helper,
                    }),
                    None => Err(Trap::UnknownHelper { helper }),
                },
                Insn::Exit => Ok(PInsn::Exit),
            };
            code.push(lowered.unwrap_or_else(|kind| PInsn::Trap { kind }));
        }
        // Every source instruction costs 1, except `trace_emit`, which
        // carries its fixed weight so the budget charge is identical to
        // the legacy interpreter's (1 at the loop top + the remainder in
        // the helper) and identical whether tracing is armed or not.
        let mut weights: Vec<u32> = insns
            .iter()
            .map(|i| match i {
                Insn::Call { helper }
                    if HelperId::from_u32(*helper) == Some(HelperId::TraceEmit) =>
                {
                    crate::helpers::TRACE_EMIT_WEIGHT
                }
                _ => 1,
            })
            .collect();
        debug_assert_eq!(weights.len(), code.len());
        crate::opt::optimize(&mut code, &mut weights, self.maps(), opt);
        // The sentinel charges like a real slot so exhausting the budget
        // exactly at the end still reports `BudgetExhausted`, not
        // `PcOutOfBounds` (legacy checks the budget before the fetch).
        code.push(PInsn::Halt);
        weights.push(1);
        PreparedProgram {
            name: self.name().to_string(),
            code: code.into_boxed_slice(),
            weights: weights.into_boxed_slice(),
            maps: self.maps().to_vec().into_boxed_slice(),
            perm: CtxPerm::build(layout),
            jit_mode,
            invocations: AtomicU64::new(0),
            jit: OnceLock::new(),
        }
    }
}

/// Map-value regions a run has handed out pointers into, as
/// `(map index, value slot)` pairs. Policies rarely hold more than a
/// couple of live lookups, so the first [`INLINE_REGIONS`] live inline —
/// the hot path never allocates; pathological programs spill to a `Vec`.
const INLINE_REGIONS: usize = 16;

pub(crate) struct Regions {
    inline: [(u32, u32); INLINE_REGIONS],
    len: usize,
    spill: Vec<(u32, u32)>,
}

impl Regions {
    #[inline]
    fn new() -> Regions {
        Regions {
            inline: [(0, 0); INLINE_REGIONS],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Registers a region, returning its index.
    #[inline]
    pub(crate) fn push(&mut self, map_idx: u32, slot: u32) -> u64 {
        let idx = self.len;
        if idx < INLINE_REGIONS {
            self.inline[idx] = (map_idx, slot);
        } else {
            self.spill.push((map_idx, slot));
        }
        self.len = idx + 1;
        idx as u64
    }

    #[inline]
    pub(crate) fn get(&self, idx: usize) -> Option<(u32, u32)> {
        if idx >= self.len {
            return None;
        }
        Some(if idx < INLINE_REGIONS {
            self.inline[idx]
        } else {
            self.spill[idx - INLINE_REGIONS]
        })
    }
}

/// Per-run machine state, shared between the prepared interpreter loop
/// and the [`crate::jit`] tier (which reuses the memory/helper methods so
/// the two tiers cannot drift in fault semantics).
pub(crate) struct Runner<'a> {
    pub(crate) regs: [u64; 11],
    pub(crate) stack: [u8; STACK_SIZE],
    pub(crate) ctx: &'a mut [u8],
    pub(crate) env: &'a dyn PolicyEnv,
    pub(crate) maps: &'a [Arc<Map>],
    pub(crate) perm: &'a CtxPerm,
    pub(crate) regions: Regions,
}

#[inline]
pub(crate) fn read_le(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(b)
}

impl<'a> Runner<'a> {
    /// Registers and stack at program-entry state: everything zero except
    /// the context pointer (`r1`, when a context exists) and the frame
    /// pointer (`r10`).
    pub(crate) fn new(
        ctx: &'a mut [u8],
        env: &'a dyn PolicyEnv,
        maps: &'a [Arc<Map>],
        perm: &'a CtxPerm,
    ) -> Runner<'a> {
        let mut m = Runner {
            regs: [0u64; 11],
            stack: [0; STACK_SIZE],
            ctx,
            env,
            maps,
            perm,
            regions: Regions::new(),
        };
        if !m.ctx.is_empty() {
            m.regs[1] = ptr(TAG_CTX, 0, 0);
        }
        m.regs[10] = ptr(TAG_STACK, 0, STACK_SIZE as u32);
        m
    }

    /// Reads register `r`.
    ///
    /// SAFETY contract: `prepare` only emits register indices `0..=10`,
    /// so the bound check is provably dead and elided.
    #[inline(always)]
    pub(crate) fn reg(&self, r: u8) -> u64 {
        debug_assert!(r <= 10);
        unsafe { *self.regs.get_unchecked(r as usize) }
    }

    /// Writes register `r`; same prepare-time bound contract as [`Self::reg`].
    #[inline(always)]
    pub(crate) fn set_reg(&mut self, r: u8, v: u64) {
        debug_assert!(r <= 10);
        unsafe { *self.regs.get_unchecked_mut(r as usize) = v }
    }

    #[inline(always)]
    pub(crate) fn src(&self, s: PSrc) -> u64 {
        match s {
            PSrc::Reg(r) => self.reg(r),
            PSrc::Imm(v) => v,
        }
    }

    pub(crate) fn load(&mut self, pc: usize, addr: u64, size: MemSize) -> Result<u64, RunError> {
        let n = size.bytes();
        let off = ptr_off(addr) as usize;
        match ptr_tag(addr) {
            TAG_STACK => self
                .stack
                .get(off..off.wrapping_add(n).min(STACK_SIZE + 1))
                .filter(|s| s.len() == n)
                .map(read_le)
                .ok_or(RunError::BadAccess { pc, addr }),
            TAG_CTX => {
                if self.perm.read_ok(off, n) && off + n <= self.ctx.len() {
                    Ok(read_le(&self.ctx[off..off + n]))
                } else {
                    Err(RunError::BadAccess { pc, addr })
                }
            }
            TAG_MAPVAL => {
                let (mi, slot) = self
                    .regions
                    .get(ptr_index(addr) as usize)
                    .ok_or(RunError::BadAccess { pc, addr })?;
                self.maps[mi as usize]
                    .value_load(slot, off, n)
                    .ok_or(RunError::BadAccess { pc, addr })
            }
            _ => Err(RunError::BadAccess { pc, addr }),
        }
    }

    pub(crate) fn store(
        &mut self,
        pc: usize,
        addr: u64,
        size: MemSize,
        val: u64,
    ) -> Result<(), RunError> {
        let n = size.bytes();
        let off = ptr_off(addr) as usize;
        match ptr_tag(addr) {
            TAG_STACK => {
                let dst = self
                    .stack
                    .get_mut(off..off.wrapping_add(n).min(STACK_SIZE + 1))
                    .filter(|s| s.len() == n)
                    .ok_or(RunError::BadAccess { pc, addr })?;
                dst.copy_from_slice(&val.to_le_bytes()[..n]);
                Ok(())
            }
            TAG_CTX => {
                if self.perm.write_ok(off, n) && off + n <= self.ctx.len() {
                    self.ctx[off..off + n].copy_from_slice(&val.to_le_bytes()[..n]);
                    Ok(())
                } else {
                    Err(RunError::BadAccess { pc, addr })
                }
            }
            TAG_MAPVAL => {
                let (mi, slot) = self
                    .regions
                    .get(ptr_index(addr) as usize)
                    .ok_or(RunError::BadAccess { pc, addr })?;
                if self.maps[mi as usize].value_store(slot, off, n, val) {
                    Ok(())
                } else {
                    Err(RunError::BadAccess { pc, addr })
                }
            }
            _ => Err(RunError::BadAccess { pc, addr }),
        }
    }

    /// `len` stack bytes at `addr` (no initialization tracking — the
    /// verifier guarantees helper buffers are written before use).
    pub(crate) fn stack_bytes(&self, pc: usize, addr: u64, len: usize) -> Result<&[u8], RunError> {
        if ptr_tag(addr) != TAG_STACK {
            return Err(RunError::BadAccess { pc, addr });
        }
        let off = ptr_off(addr) as usize;
        self.stack
            .get(off..off.wrapping_add(len).min(STACK_SIZE + 1))
            .filter(|s| s.len() == len)
            .ok_or(RunError::BadAccess { pc, addr })
    }

    /// Map helper dispatch, allocation-free: keys and values are stack
    /// borrows handed straight to the map, and a lookup hit registers a
    /// `(map, slot)` region in the inline table.
    pub(crate) fn call_map(&mut self, pc: usize, op: MapOp, helper: u32) -> Result<u64, RunError> {
        let fault = |msg: &'static str| RunError::HelperFault { pc, helper, msg };
        let mref = self.regs[1];
        if ptr_tag(mref) != TAG_MAPREF {
            return Err(fault("arg1 is not a map"));
        }
        let mi = ptr_index(mref) as usize;
        // Reborrow the slice (not through `&self`) so `map` stays usable
        // across the later `&mut self` region registration.
        let maps = self.maps;
        let map = maps.get(mi).ok_or(fault("unknown map id"))?;
        let cpu = self.env.cpu_id();
        Ok(match op {
            MapOp::Lookup => {
                let slot = {
                    let key = self.stack_bytes(pc, self.regs[2], map.def().key_size)?;
                    mapops::lookup(map, key, cpu)
                };
                match slot {
                    Some(slot) => ptr(TAG_MAPVAL, self.regions.push(mi as u32, slot), 0),
                    None => 0,
                }
            }
            MapOp::Update => {
                let key = self.stack_bytes(pc, self.regs[2], map.def().key_size)?;
                let val = self.stack_bytes(pc, self.regs[3], map.def().value_size)?;
                mapops::update(map, key, val, cpu)
            }
            MapOp::Delete => {
                let key = self.stack_bytes(pc, self.regs[2], map.def().key_size)?;
                mapops::delete(map, key)
            }
        })
    }
}

impl PreparedProgram {
    /// Program name (same as the source [`Program`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the prepared form with the default budget, returning `r0`.
    ///
    /// # Errors
    ///
    /// See [`PreparedProgram::run`].
    pub fn run_program(&self, ctx: &mut [u8], env: &dyn PolicyEnv) -> Result<u64, RunError> {
        self.run(ctx, env, DEFAULT_BUDGET).map(|r| r.ret)
    }

    /// Runs the prepared form, producing the same [`RunReport`] (value and
    /// executed-instruction count) the legacy interpreter reports for the
    /// source program.
    ///
    /// # Errors
    ///
    /// [`RunError::BudgetExhausted`] past the instruction budget, plus the
    /// legacy fault set for out-of-contract programs (a verified program
    /// only ever sees the budget error).
    pub fn run(
        &self,
        ctx: &mut [u8],
        env: &dyn PolicyEnv,
        budget: u64,
    ) -> Result<RunReport, RunError> {
        self.run_inner(ctx, env, budget, None)
    }

    /// Like [`PreparedProgram::run`], but consults a deterministic
    /// [`FaultInjector`] before the first instruction (invocation-trigger
    /// faults) and at every helper call site (per-helper rate faults).
    ///
    /// With `injector` `None` this is exactly `run`; the plain entry
    /// point never pays for injection, so differential tests against the
    /// legacy interpreter keep their meaning.
    ///
    /// # Errors
    ///
    /// The [`PreparedProgram::run`] fault set, plus whatever the injector
    /// schedules.
    pub fn run_with_faults(
        &self,
        ctx: &mut [u8],
        env: &dyn PolicyEnv,
        budget: u64,
        injector: Option<&FaultInjector>,
    ) -> Result<RunReport, RunError> {
        self.run_inner(ctx, env, budget, injector)
    }

    /// Runs a pinned tier regardless of [`JitMode`], with the default
    /// fault plumbing disabled — for tier-differential tests and benches.
    ///
    /// # Errors
    ///
    /// See [`PreparedProgram::run`]; the tiers produce identical faults.
    pub fn run_tier(
        &self,
        tier: ExecTier,
        ctx: &mut [u8],
        env: &dyn PolicyEnv,
        budget: u64,
    ) -> Result<RunReport, RunError> {
        self.run_tier_with_faults(tier, ctx, env, budget, None)
    }

    /// [`PreparedProgram::run_tier`] with a [`FaultInjector`], consulted
    /// at exactly the same points in both tiers.
    ///
    /// # Errors
    ///
    /// See [`PreparedProgram::run_with_faults`].
    pub fn run_tier_with_faults(
        &self,
        tier: ExecTier,
        ctx: &mut [u8],
        env: &dyn PolicyEnv,
        budget: u64,
        injector: Option<&FaultInjector>,
    ) -> Result<RunReport, RunError> {
        match tier {
            ExecTier::Interp => self.run_interp(ctx, env, budget, injector),
            ExecTier::Jit => {
                let jit = self.jit.get_or_init(|| crate::jit::compile(self));
                crate::jit::run(self, jit, ctx, env, budget, injector)
            }
        }
    }

    /// Compiles the [`crate::jit`] tier for this program, outside the
    /// cached auto-selection path — lets benchmarks measure the one-time
    /// compile cost repeatably.
    pub fn compile_jit(&self) -> crate::jit::JitProgram {
        crate::jit::compile(self)
    }

    /// Whether the compiled tier has been built (by auto selection or a
    /// pinned [`ExecTier::Jit`] run).
    pub fn jit_compiled(&self) -> bool {
        self.jit.get().is_some()
    }

    /// Tier selection for the auto entry points: the compiled tier once
    /// it exists or [`JitMode`] says to build it, the interpreter before
    /// that.
    #[inline]
    fn use_jit(&self) -> bool {
        match self.jit_mode {
            JitMode::Off => false,
            JitMode::Eager => true,
            JitMode::Threshold(t) => {
                self.jit.get().is_some()
                    || self.invocations.fetch_add(1, Ordering::Relaxed) + 1 >= t
            }
        }
    }

    fn run_inner(
        &self,
        ctx: &mut [u8],
        env: &dyn PolicyEnv,
        budget: u64,
        injector: Option<&FaultInjector>,
    ) -> Result<RunReport, RunError> {
        if self.use_jit() {
            let jit = self.jit.get_or_init(|| crate::jit::compile(self));
            return crate::jit::run(self, jit, ctx, env, budget, injector);
        }
        self.run_interp(ctx, env, budget, injector)
    }

    fn run_interp(
        &self,
        ctx: &mut [u8],
        env: &dyn PolicyEnv,
        budget: u64,
        injector: Option<&FaultInjector>,
    ) -> Result<RunReport, RunError> {
        if let Some(inj) = injector {
            if let Some(fault) = inj.invocation_fault() {
                return Err(fault);
            }
        }
        let mut m = Runner::new(ctx, env, &self.maps, &self.perm);
        let code = &self.code;
        let weights = &self.weights;
        debug_assert_eq!(code.len(), weights.len());
        let mut pc: usize = 0;
        let mut executed: u64 = 0;
        loop {
            // Weighted budget charge: a fused slot pays for its whole
            // source pair before executing (its first half has no
            // observable effect, so failing early is indistinguishable
            // from the legacy fail-between-halves), keeping budget
            // semantics and instruction counts exact at every budget.
            // The invariant `executed <= budget` makes the subtraction
            // safe.
            //
            // SAFETY: `prepare` validates every jump target into
            // `[0, len]` and appends the `Halt` sentinel at index `len`
            // (which returns), so `pc` never leaves either slice
            // (`weights` is built parallel to `code`).
            debug_assert!(pc < code.len());
            let w = u64::from(*unsafe { weights.get_unchecked(pc) });
            if w > budget - executed {
                return Err(RunError::BudgetExhausted);
            }
            executed += w;
            match *unsafe { code.get_unchecked(pc) } {
                PInsn::Alu64 { op, dst, src } => {
                    let rhs = m.src(src);
                    m.set_reg(dst, fold64(op, m.reg(dst), rhs));
                }
                PInsn::Alu32 { op, dst, src } => {
                    let rhs = m.src(src);
                    m.set_reg(dst, u64::from(fold32(op, m.reg(dst) as u32, rhs as u32)));
                }
                PInsn::Mov64R { dst, src } => {
                    let v = m.reg(src);
                    m.set_reg(dst, v);
                }
                PInsn::Mov32R { dst, src } => {
                    let v = u64::from(m.reg(src) as u32);
                    m.set_reg(dst, v);
                }
                PInsn::LdImm64 { dst, imm } => m.set_reg(dst, imm),
                PInsn::LdMapRef { dst, map_id } => {
                    m.set_reg(dst, ptr(TAG_MAPREF, u64::from(map_id), 0));
                }
                PInsn::Load {
                    size,
                    dst,
                    base,
                    off,
                } => {
                    let addr = m.reg(base).wrapping_add(off);
                    let v = m.load(pc, addr, size)?;
                    m.set_reg(dst, v);
                }
                PInsn::Store {
                    size,
                    base,
                    off,
                    src,
                } => {
                    let addr = m.reg(base).wrapping_add(off);
                    let v = m.src(src);
                    m.store(pc, addr, size, v)?;
                }
                PInsn::Ja { target } => {
                    pc = target as usize;
                    continue;
                }
                PInsn::Jmp {
                    op,
                    dst,
                    src,
                    target,
                } => {
                    let r = m.src(src);
                    if op.eval(m.reg(dst), r) {
                        pc = target as usize;
                        continue;
                    }
                }
                PInsn::CallEnv0 { f } => {
                    if let Some(inj) = injector {
                        if let Some(fault) = inj.helper_fault(pc, 0) {
                            return Err(fault);
                        }
                    }
                    let ret = f(m.env);
                    m.regs[1..6].fill(0);
                    m.regs[0] = ret;
                }
                PInsn::CallEnv1 { f } => {
                    if let Some(inj) = injector {
                        if let Some(fault) = inj.helper_fault(pc, 0) {
                            return Err(fault);
                        }
                    }
                    let ret = f(m.env, m.regs[1]);
                    m.regs[1..6].fill(0);
                    m.regs[0] = ret;
                }
                PInsn::CallTrace { helper } => {
                    if let Some(inj) = injector {
                        if let Some(fault) = inj.helper_fault(pc, helper) {
                            return Err(fault);
                        }
                    }
                    let len = m.regs[2] as usize;
                    if helper == HelperId::TraceEmit as u32 {
                        // Weight already charged at the loop top; only the
                        // bounds check and the emit itself live here.
                        if !(1..=crate::helpers::TRACE_EMIT_MAX_PAYLOAD).contains(&len) {
                            return Err(RunError::HelperFault {
                                pc,
                                helper,
                                msg: "trace_emit payload length out of bounds",
                            });
                        }
                        let bytes = m.stack_bytes(pc, m.regs[1], len)?;
                        m.env.trace_emit(bytes);
                        m.regs[1..6].fill(0);
                        m.regs[0] = 0;
                    } else {
                        if len > STACK_SIZE {
                            return Err(RunError::HelperFault {
                                pc,
                                helper,
                                msg: "trace length too large",
                            });
                        }
                        let bytes = m.stack_bytes(pc, m.regs[1], len)?;
                        m.env.trace(bytes);
                        m.regs[1..6].fill(0);
                        m.regs[0] = len as u64;
                    }
                }
                PInsn::CallMap { op, helper } => {
                    if let Some(inj) = injector {
                        if let Some(fault) = inj.helper_fault(pc, helper) {
                            return Err(fault);
                        }
                    }
                    let ret = m.call_map(pc, op, helper)?;
                    m.regs[1..6].fill(0);
                    m.regs[0] = ret;
                }
                PInsn::Exit => {
                    return Ok(RunReport {
                        ret: m.regs[0],
                        insns: executed,
                    });
                }
                PInsn::Trap { kind } => {
                    return Err(kind.to_error(pc));
                }
                PInsn::Halt => {
                    return Err(RunError::PcOutOfBounds { pc: pc as i64 });
                }
                PInsn::Nop => {}
                PInsn::Alu2 {
                    w1,
                    op1,
                    dst1,
                    src1,
                    w2,
                    op2,
                    dst2,
                    src2,
                } => {
                    // Strictly sequential: the second half reads whatever
                    // the first half wrote, exactly like the unfused pair.
                    let rhs = m.src(src1);
                    let v = if w1 {
                        fold64(op1, m.reg(dst1), rhs)
                    } else {
                        u64::from(fold32(op1, m.reg(dst1) as u32, rhs as u32))
                    };
                    m.set_reg(dst1, v);
                    let rhs = m.src(src2);
                    let v = if w2 {
                        fold64(op2, m.reg(dst2), rhs)
                    } else {
                        u64::from(fold32(op2, m.reg(dst2) as u32, rhs as u32))
                    };
                    m.set_reg(dst2, v);
                    pc += 2;
                    continue;
                }
                PInsn::Load2 {
                    s1,
                    d1,
                    b1,
                    o1,
                    s2,
                    d2,
                    b2,
                    o2,
                } => {
                    let addr = m.reg(b1).wrapping_add(o1);
                    let v = m.load(pc, addr, s1)?;
                    m.set_reg(d1, v);
                    let addr = m.reg(b2).wrapping_add(o2);
                    let v = m.load(pc + 1, addr, s2)?;
                    m.set_reg(d2, v);
                    pc += 2;
                    continue;
                }
                PInsn::CallMapLookupBr {
                    helper,
                    jop,
                    jdst,
                    jsrc,
                    target,
                } => {
                    if let Some(inj) = injector {
                        if let Some(fault) = inj.helper_fault(pc, helper) {
                            return Err(fault);
                        }
                    }
                    let ret = m.call_map(pc, MapOp::Lookup, helper)?;
                    m.regs[1..6].fill(0);
                    m.regs[0] = ret;
                    let rhs = m.src(jsrc);
                    if jop.eval(m.reg(jdst), rhs) {
                        pc = target as usize;
                    } else {
                        pc += 2;
                    }
                    continue;
                }
            }
            pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FieldAccess;
    use crate::helpers::FixedEnv;
    use crate::insn::JmpOp;
    use crate::interp::run_with_budget;
    use crate::map::{MapDef, MapKind};
    use crate::program::ProgramBuilder;

    fn both(prog: &Program) -> (Result<RunReport, RunError>, Result<RunReport, RunError>) {
        let layout = CtxLayout::empty();
        let legacy = run_with_budget(prog, &mut [], &layout, &FixedEnv::new(), DEFAULT_BUDGET);
        let prepared = prog
            .prepare(&layout)
            .run(&mut [], &FixedEnv::new(), DEFAULT_BUDGET);
        (legacy, prepared)
    }

    #[test]
    fn matches_legacy_on_arithmetic() {
        let mut b = ProgramBuilder::new("t");
        b.ld_imm64(Reg::R1, u64::MAX);
        b.mov(Reg::R0, Reg::R1);
        b.alu_imm(AluOp::Add, Reg::R0, 1);
        b.alu_imm(AluOp::Add, Reg::R0, 7);
        b.alu32_imm(AluOp::Sub, Reg::R0, 9);
        b.alu_imm(AluOp::Div, Reg::R0, 0); // div-by-zero → 0
        b.alu_imm(AluOp::Mod, Reg::R0, 0); // mod-by-zero → dividend
        b.exit();
        let prog = b.build().unwrap();
        let (l, p) = both(&prog);
        assert_eq!(l, p);
        assert!(l.is_ok());
    }

    #[test]
    fn matches_legacy_on_stack_and_jumps() {
        let mut b = ProgramBuilder::new("t");
        b.ld_imm64(Reg::R1, 0xaabb_ccdd_eeff_1122u64);
        b.store(MemSize::Dw, Reg::R10, -8, Reg::R1);
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -8);
        b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "zero");
        b.alu(AluOp::Sub, Reg::R0, Reg::R1);
        b.exit();
        b.label("zero");
        b.mov_imm(Reg::R0, 7);
        b.exit();
        let (l, p) = both(&b.build().unwrap());
        assert_eq!(l, p);
        assert_eq!(l.unwrap().ret, 0);
    }

    #[test]
    fn matches_legacy_on_ctx_access() {
        let layout = CtxLayout::builder()
            .field("in", 8, FieldAccess::ReadOnly)
            .field("out", 8, FieldAccess::ReadWrite)
            .build();
        let mut b = ProgramBuilder::new("t");
        b.load(MemSize::Dw, Reg::R0, Reg::R1, 0);
        b.alu_imm(AluOp::Mul, Reg::R0, 2);
        b.store(MemSize::Dw, Reg::R1, 8, Reg::R0);
        b.exit();
        let prog = b.build().unwrap();
        let env = FixedEnv::new();

        let mut ctx_a = vec![0u8; layout.size()];
        layout.write(&mut ctx_a, "in", 21);
        let legacy = run_with_budget(&prog, &mut ctx_a, &layout, &env, DEFAULT_BUDGET).unwrap();

        let mut ctx_b = vec![0u8; layout.size()];
        layout.write(&mut ctx_b, "in", 21);
        let prepared = prog
            .prepare(&layout)
            .run(&mut ctx_b, &env, DEFAULT_BUDGET)
            .unwrap();

        assert_eq!(legacy, prepared);
        assert_eq!(ctx_a, ctx_b, "context side effects must match");
        assert_eq!(layout.read(&ctx_b, "out"), 42);
    }

    #[test]
    fn ctx_write_to_readonly_field_faults() {
        let layout = CtxLayout::builder()
            .field("in", 8, FieldAccess::ReadOnly)
            .build();
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.store(MemSize::Dw, Reg::R1, 0, Reg::R0);
        b.exit();
        let prog = b.build().unwrap();
        let mut ctx = vec![0u8; layout.size()];
        let got = prog
            .prepare(&layout)
            .run(&mut ctx, &FixedEnv::new(), DEFAULT_BUDGET);
        assert!(matches!(got, Err(RunError::BadAccess { .. })));
    }

    #[test]
    fn matches_legacy_on_helpers_and_maps() {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 4,
        }));
        map.update(&1u32.to_le_bytes(), &10u64.to_le_bytes(), 0)
            .unwrap();
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(Arc::clone(&map));
        b.ldmap(Reg::R1, mid);
        b.store_imm(MemSize::W, Reg::R10, -4, 1);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4);
        b.call(HelperId::MapLookup);
        b.jmp_imm(JmpOp::Ne, Reg::R0, 0, "hit");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        b.label("hit");
        b.load(MemSize::Dw, Reg::R1, Reg::R0, 0);
        b.alu_imm(AluOp::Add, Reg::R1, 5);
        b.store(MemSize::Dw, Reg::R0, 0, Reg::R1);
        b.call(HelperId::CpuId);
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -4);
        b.exit();
        let prog = b.build().unwrap();
        let (l, p) = both(&prog);
        assert_eq!(l, p);
        // Both runs applied `+5` to the map value.
        assert_eq!(
            map.lookup_copy(&1u32.to_le_bytes(), 0),
            Some(20u64.to_le_bytes().to_vec())
        );
    }

    #[test]
    fn trace_printk_reaches_env() {
        let env = FixedEnv::new();
        let mut b = ProgramBuilder::new("t");
        b.store_imm(MemSize::B, Reg::R10, -2, b'h' as i32);
        b.store_imm(MemSize::B, Reg::R10, -1, b'i' as i32);
        b.mov(Reg::R1, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R1, -2);
        b.mov_imm(Reg::R2, 2);
        b.call(HelperId::TracePrintk);
        b.exit();
        let prog = b.build().unwrap();
        let prepared = prog.prepare(&CtxLayout::empty());
        let ret = prepared.run_program(&mut [], &env).unwrap();
        assert_eq!(ret, 2);
        assert_eq!(env.traces(), vec![b"hi".to_vec()]);
    }

    #[test]
    fn budget_exhaustion_matches_legacy() {
        let prog = Program::new("spin", vec![Insn::Ja { off: -1 }, Insn::Exit], Vec::new());
        let prepared = prog.prepare(&CtxLayout::empty());
        let got = prepared.run(&mut [], &FixedEnv::new(), 1000);
        assert_eq!(got.unwrap_err(), RunError::BudgetExhausted);
    }

    #[test]
    fn fall_off_end_faults_like_legacy() {
        let prog = Program::new(
            "nop",
            vec![Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(0),
            }],
            Vec::new(),
        );
        let prepared = prog.prepare(&CtxLayout::empty());
        let got = prepared.run(&mut [], &FixedEnv::new(), DEFAULT_BUDGET);
        assert!(matches!(got, Err(RunError::PcOutOfBounds { pc: 1 })));
    }

    /// Statically invalid instructions lower to traps that fault when
    /// reached (the verifier accepts them only in unreachable code).
    #[test]
    fn invalid_instructions_trap_when_reached() {
        let run = |insns: Vec<Insn>| {
            Program::new("trap", insns, Vec::new())
                .prepare(&CtxLayout::empty())
                .run(&mut [], &FixedEnv::new(), DEFAULT_BUDGET)
        };

        // Frame-pointer write.
        let got = run(vec![
            Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R10,
                src: Operand::Imm(0),
            },
            Insn::Exit,
        ]);
        assert!(matches!(got, Err(RunError::BadAccess { pc: 0, .. })));

        // Jump far outside the program.
        let got = run(vec![Insn::Ja { off: 100 }, Insn::Exit]);
        assert_eq!(got.unwrap_err(), RunError::PcOutOfBounds { pc: 101 });

        // Unknown helper and unknown map.
        let got = run(vec![Insn::Call { helper: 999 }, Insn::Exit]);
        assert_eq!(
            got.unwrap_err(),
            RunError::HelperFault {
                pc: 0,
                helper: 999,
                msg: "unknown helper",
            }
        );
        let got = run(vec![
            Insn::LdMapRef {
                dst: Reg::R1,
                map_id: 3,
            },
            Insn::Exit,
        ]);
        assert_eq!(
            got.unwrap_err(),
            RunError::HelperFault {
                pc: 0,
                helper: 0,
                msg: "unknown map id",
            }
        );

        // An unreachable trap is harmless.
        let prog = Program::new(
            "dead",
            vec![
                Insn::Alu {
                    wide: true,
                    op: AluOp::Mov,
                    dst: Reg::R0,
                    src: Operand::Imm(3),
                },
                Insn::Exit,
                Insn::Alu {
                    wide: true,
                    op: AluOp::Mov,
                    dst: Reg::R10,
                    src: Operand::Imm(0),
                },
            ],
            Vec::new(),
        );
        let got = prog
            .prepare(&CtxLayout::empty())
            .run(&mut [], &FixedEnv::new(), DEFAULT_BUDGET)
            .unwrap();
        assert_eq!(got.ret, 3);
    }

    #[test]
    fn injected_faults_are_deterministic_and_isolated() {
        use crate::error::FaultKind;
        use crate::fault::{FaultInjector, FaultPlan};

        let mut b = ProgramBuilder::new("ok");
        b.call(HelperId::CpuId);
        b.exit();
        let prog = b.build().unwrap();
        let prepared = prog.prepare(&CtxLayout::empty());
        let env = FixedEnv::new().cpu(3);

        // Invocation trigger: runs 1 and 2 succeed, run 3 faults, run 4
        // succeeds again.
        let inj = FaultInjector::new(FaultPlan::on_invocation(3, FaultKind::Budget));
        for i in 1..=4u64 {
            let got = prepared.run_with_faults(&mut [], &env, DEFAULT_BUDGET, Some(&inj));
            if i == 3 {
                assert_eq!(got.unwrap_err(), RunError::BudgetExhausted);
            } else {
                assert_eq!(got.unwrap().ret, 3);
            }
        }

        // Helper-site injection faults at the call pc with the helper id.
        let always = FaultInjector::new(FaultPlan {
            helper_fault_per_mille: 1000,
            ..FaultPlan::inert(9)
        });
        let got = prepared.run_with_faults(&mut [], &env, DEFAULT_BUDGET, Some(&always));
        assert_eq!(got.unwrap_err().fault_kind(), FaultKind::Helper);

        // `run` (no injector) is untouched by an armed plan elsewhere.
        assert_eq!(prepared.run(&mut [], &env, DEFAULT_BUDGET).unwrap().ret, 3);
    }

    #[test]
    fn insn_counts_match_legacy() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R6, 0);
        b.call(HelperId::CpuId);
        b.alu_imm(AluOp::Add, Reg::R6, 1);
        b.mov(Reg::R0, Reg::R6);
        b.exit();
        let (l, p) = both(&b.build().unwrap());
        assert_eq!(l.unwrap().insns, p.unwrap().insns);
    }
}
