//! The compiled execution tier: a prepare-time translation of the
//! prepared ([`crate::prepare`]) instruction stream into direct-threaded
//! steps, in pure Rust — no external backend and no `unsafe` codegen.
//!
//! # Dispatch technique
//!
//! The prepared interpreter pays one dispatch, one budget compare and one
//! budget add per slot. The compiled tier folds every maximal run of
//! *pure* instructions (ALU ops, register moves, and stack accesses whose
//! address resolves at compile time to an in-bounds frame offset) into
//! the `pre` micro-op prefix of the next non-pure step: one dispatch and
//! one budget charge cover the whole group. Non-pure instructions —
//! context and map-value memory, helpers, traces, jumps, exit — each
//! become one [`JStep`], mirroring the prepared arm one-for-one and
//! reusing the shared [`Runner`] methods so the two tiers cannot drift
//! in fault semantics. A pure run whose successor is a jump target
//! cannot merge into it (other paths enter there without the prefix), so
//! it closes as a standalone [`JOp::Nop`] step.
//!
//! On top of the group structure the compiler runs a local constant
//! lattice (registers plus frame bytes, reset at every join point):
//! fully constant ALU results fold to immediate moves, constant frame
//! stores forward to later loads, and dead register/frame writes ahead
//! of an exit are dropped. Registers and the frame are run-local state —
//! a program can only observe them through the instructions that
//! survive — so these rewrites are invisible.
//!
//! Two map specializations ride on the lattice:
//!
//! * **Constant-key lookup caching.** When a `map_lookup`'s map ref and
//!   key window are compile-time constants *and every key byte is too*,
//!   the step carries the key bytes and a per-site cache word; hot runs
//!   revalidate with one generation load instead of hashing, locking and
//!   probing the shard (see [`cached_lookup`]).
//! * **Region-tracked value access.** Along the straight line from
//!   entry, the compiler counts map-value regions a run has provably
//!   registered. Falling through `r0 == 0` / jumping on `r0 != 0` after
//!   a lookup proves a hit, so `r0` becomes a compile-time-constant
//!   region pointer and subsequent loads/stores through it compile to
//!   [`JOp::MapValLd`]/[`JOp::MapValSt`] — no tag dispatch, with the
//!   bounds proven at compile time (the fault paths remain, mirroring
//!   `Runner::load`/`store` exactly, but are never taken).
//!
//! # Weight-table equivalence
//!
//! Budget accounting must be bit-identical to the interpreter: the same
//! `RunReport::insns` on success and `BudgetExhausted` at exactly the
//! same budgets. Every step's `weight` is the sum of the prepared
//! per-slot weights of its pure prefix plus its own slot, charged up
//! front. This is sound because a pure prefix has no observable effect:
//! wherever inside the group the interpreter's budget dies — at a
//! prefix slot or at the step's own loop-top charge — it reports
//! `BudgetExhausted` with identical context/map/trace state (none of
//! the prefix's register or frame writes are observable), and on every
//! surviving path the total charged is the same sum. Faulting steps
//! charge before executing, exactly like the interpreter's loop-top
//! charge, so budget exhaustion still wins over the fault the slot
//! itself would raise.
//!
//! Fault-injection parity follows the same rule: the injector is
//! consulted at helper steps only, keyed by the original program counter
//! and helper id, and pure prefixes contain no helpers — so the
//! injector's deterministic draw sequence is identical across tiers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::RunError;
use crate::fault::FaultInjector;
use crate::helpers::{mapops, HelperId, PolicyEnv};
use crate::insn::{AluOp, JmpOp, MemSize, STACK_SIZE};
use crate::interp::{fold32, fold64, RunReport};
use crate::map::Map;
use crate::prepare::{
    ptr, ptr_index, ptr_off, ptr_tag, read_le, MapOp, PInsn, PSrc, PreparedProgram, Runner, Trap,
    TAG_MAPREF, TAG_MAPVAL, TAG_STACK,
};

/// A pure micro-op inside a step's `pre` prefix: no fault path, no
/// observable effect — registers and compile-time-bounded frame bytes
/// only.
#[derive(Clone, Copy, Debug)]
enum Micro {
    MovI { dst: u8, imm: u64 },
    Mov64R { dst: u8, src: u8 },
    Mov32R { dst: u8, src: u8 },
    Alu64I { op: AluOp, dst: u8, imm: u64 },
    Alu64R { op: AluOp, dst: u8, src: u8 },
    Alu32I { op: AluOp, dst: u8, imm: u32 },
    Alu32R { op: AluOp, dst: u8, src: u8 },
    StackLd { size: MemSize, dst: u8, off: u16 },
    StackStR { size: MemSize, off: u16, src: u8 },
    StackStI { size: MemSize, off: u16, imm: u64 },
}

/// A compile-time-proven in-bounds frame window (`off + len <= 512`).
#[derive(Clone, Copy, Debug)]
struct StackWin {
    off: u16,
    len: u16,
}

impl StackWin {
    #[inline(always)]
    fn range(self) -> std::ops::Range<usize> {
        self.off as usize..self.off as usize + self.len as usize
    }
}

/// Compile-time-resolved `map_lookup` operands: map index from a
/// constant `r1` map ref, key window from a constant `r2` frame
/// pointer. When on top of that every key *byte* is a compile-time
/// constant and the map is a hash map, `cached` carries the key bytes
/// and a slot-cache index so hot runs skip the hash/lock/probe
/// entirely (see [`cached_lookup`]).
#[derive(Debug)]
struct FastLookup {
    map: u32,
    key: StackWin,
    cached: Option<ConstKey>,
}

#[derive(Debug)]
struct ConstKey {
    cache: u32,
    bytes: Box<[u8]>,
}

/// One direct-threaded step: a pure micro-op prefix plus one non-pure
/// operation, charged as a single group. `weight` is the summed
/// prepared-slot charge of prefix and operation.
#[derive(Debug)]
struct JStep {
    weight: u64,
    pre: Box<[Micro]>,
    op: JOp,
}

/// The non-pure operation of a step. `pc` is the original slot index
/// for fault attribution and injector keying. Jump targets are step
/// indices (patched from slot indices after the walk).
#[derive(Debug)]
enum JOp {
    /// A pure run whose successor is a jump target: prefix only.
    Nop,
    Load {
        pc: u32,
        size: MemSize,
        dst: u8,
        base: u8,
        off: u64,
    },
    Store {
        pc: u32,
        size: MemSize,
        base: u8,
        off: u64,
        src: PSrc,
    },
    /// Load through a compile-time-constant map-value region pointer,
    /// bounds proven against the value size at compile time.
    MapValLd {
        pc: u32,
        size: MemSize,
        dst: u8,
        region: u32,
        off: u32,
        addr: u64,
    },
    MapValSt {
        pc: u32,
        size: MemSize,
        region: u32,
        off: u32,
        addr: u64,
        src: PSrc,
    },
    /// A fused read-modify-write on one map-value region: region-tracked
    /// load, pure micro-ops, region-tracked store, one charge group.
    /// Sound to charge up front because every part is compile-time
    /// proven unfaultable (the fault arms mirror the split steps and are
    /// unreachable) and the intermediate state is registers only.
    MapValRmw {
        pc: u32,
        ld_size: MemSize,
        dst: u8,
        region: u32,
        ld_off: u32,
        ld_addr: u64,
        mid: Box<[Micro]>,
        st_pc: u32,
        st_size: MemSize,
        st_off: u32,
        st_addr: u64,
        src: PSrc,
    },
    /// [`JOp::MapValRmw`] further narrowed to an aligned 8-byte load and
    /// store of the *same* value word: one bounds check resolves a slab
    /// word handle that serves both halves.
    MapValRmw8 {
        pc: u32,
        dst: u8,
        region: u32,
        /// `off / 8`, to add to `slot * stride`.
        word: u32,
        stride: u32,
        ld_addr: u64,
        mid: Box<[Micro]>,
        src: PSrc,
    },
    Ja {
        target: u32,
    },
    Jmp {
        op: JmpOp,
        dst: u8,
        src: PSrc,
        target: u32,
    },
    CallEnv0 {
        pc: u32,
        f: fn(&dyn PolicyEnv) -> u64,
    },
    CallEnv1 {
        pc: u32,
        f: fn(&dyn PolicyEnv, u64) -> u64,
    },
    CallTrace {
        pc: u32,
        helper: u32,
    },
    CallMap {
        pc: u32,
        op: MapOp,
        helper: u32,
    },
    /// `map_lookup` whose map index and key window are compile-time
    /// constants: no argument re-validation, no map-def chasing.
    MapLookupFast {
        pc: u32,
        helper: u32,
        fast: FastLookup,
    },
    MapUpdateFast {
        pc: u32,
        helper: u32,
        map: u32,
        key: StackWin,
        val: StackWin,
    },
    /// The fused lookup-then-branch idiom, with the fast-path operands
    /// when they resolve at compile time.
    MapLookupBr {
        pc: u32,
        helper: u32,
        fast: Option<FastLookup>,
        jop: JmpOp,
        jdst: u8,
        jsrc: PSrc,
        target: u32,
    },
    Exit,
    Trap {
        pc: u32,
        kind: Trap,
    },
    Halt {
        pc: u32,
    },
}

/// A compiled program: the direct-threaded step array
/// [`crate::prepare::PreparedProgram`] runs when the JIT tier is
/// selected. Built at most once per prepared program and shared across
/// runs (steps are immutable; the slot caches are atomics, and all
/// other per-run state lives in the [`Runner`]).
pub struct JitProgram {
    steps: Box<[JStep]>,
    /// Constant-key lookup caches, one word per [`ConstKey`] site; see
    /// [`cached_lookup`] for the encoding and revalidation discipline.
    caches: Box<[AtomicU64]>,
}

impl JitProgram {
    /// Number of direct-threaded steps (a pure prefix and its operation
    /// count as one).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

impl std::fmt::Debug for JitProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let micros: usize = self.steps.iter().map(|s| s.pre.len()).sum();
        f.debug_struct("JitProgram")
            .field("steps", &self.steps.len())
            .field("micros", &micros)
            .field("lookup_caches", &self.caches.len())
            .finish()
    }
}

/// Compile-time facts: per-register and per-frame-byte constants since
/// the last join point, plus the provable count of map-value regions
/// the run has registered. Reset to the boundary state at every leader
/// (jump target), which keeps the analysis sound even for the cyclic
/// programs `prepare`'s totality contract admits.
struct Consts {
    regs: [Option<u64>; 11],
    stack: [Option<u8>; STACK_SIZE],
    /// `Some(k)` ⇔ on every execution reaching this point, exactly `k`
    /// map-value regions have been registered. Known only along the
    /// uninterrupted straight line from entry: leaders reset to `None`
    /// (a jump may arrive with a different count), and any step that
    /// *may* register a region without the compiler knowing (an
    /// un-branched lookup) forces `None`.
    pushes: Option<u64>,
}

impl Consts {
    fn boundary() -> Consts {
        let mut c = Consts {
            regs: [None; 11],
            stack: [None; STACK_SIZE],
            pushes: None,
        };
        // The frame pointer is the only register with a cross-block
        // constant value (it can never be written).
        c.regs[10] = Some(ptr(TAG_STACK, 0, STACK_SIZE as u32));
        c
    }

    #[inline]
    fn reg(&self, r: u8) -> Option<u64> {
        self.regs[r as usize]
    }

    #[inline]
    fn set(&mut self, r: u8, v: Option<u64>) {
        self.regs[r as usize] = v;
    }

    #[inline]
    fn src(&self, s: PSrc) -> Option<u64> {
        match s {
            PSrc::Reg(r) => self.reg(r),
            PSrc::Imm(v) => Some(v),
        }
    }

    /// Helper-call clobber: `r0` unknown, `r1..r5` zeroed.
    fn clobber_helper(&mut self) {
        self.regs[0] = None;
        for r in &mut self.regs[1..6] {
            *r = Some(0);
        }
    }

    /// The constant value of `n` frame bytes at `off`, if all are known.
    fn stack_read(&self, off: usize, n: usize) -> Option<u64> {
        let mut b = [0u8; 8];
        for (dst, src) in b.iter_mut().zip(&self.stack[off..off + n]) {
            *dst = (*src)?;
        }
        Some(u64::from_le_bytes(b))
    }

    fn stack_write_const(&mut self, off: usize, n: usize, v: u64) {
        for (dst, src) in self.stack[off..off + n].iter_mut().zip(v.to_le_bytes()) {
            *dst = Some(src);
        }
    }

    fn stack_write_unknown(&mut self, off: usize, n: usize) {
        for b in &mut self.stack[off..off + n] {
            *b = None;
        }
    }

    fn stack_forget(&mut self) {
        self.stack = [None; STACK_SIZE];
    }

    /// Resolves `base + off` as a compile-time in-bounds frame window of
    /// `n` bytes. `None` means "not provably a pure frame access" — the
    /// slot then compiles to a generic step with the interpreter's exact
    /// runtime checks.
    fn stack_win(&self, base: Option<u64>, off: u64, n: usize) -> Option<u16> {
        let addr = base?.wrapping_add(off);
        if ptr_tag(addr) != TAG_STACK {
            return None;
        }
        let o = ptr_off(addr) as usize;
        if o + n <= STACK_SIZE {
            Some(o as u16)
        } else {
            None
        }
    }
}

/// Backward liveness over a step's `pre` micro-ops; drops writes no
/// later reader (inside the prefix or live-out) can see. With
/// `exit_next` (the step's operation is `Exit`) only `r0` is live out;
/// otherwise every register and frame byte is.
fn dead_strip(ops: &mut Vec<Micro>, exit_next: bool) {
    let mut reg_live = [true; 11];
    let mut stack_live = [true; STACK_SIZE];
    if exit_next {
        reg_live = [false; 11];
        reg_live[0] = true;
        stack_live = [false; STACK_SIZE];
    }
    let mut keep = vec![true; ops.len()];
    for i in (0..ops.len()).rev() {
        match ops[i] {
            Micro::MovI { dst, .. } => {
                if reg_live[dst as usize] {
                    reg_live[dst as usize] = false;
                } else {
                    keep[i] = false;
                }
            }
            Micro::Mov64R { dst, src } | Micro::Mov32R { dst, src } => {
                if reg_live[dst as usize] {
                    reg_live[dst as usize] = false;
                    reg_live[src as usize] = true;
                } else {
                    keep[i] = false;
                }
            }
            // ALU ops read their destination, which therefore stays live.
            Micro::Alu64I { dst, .. } | Micro::Alu32I { dst, .. } => {
                if !reg_live[dst as usize] {
                    keep[i] = false;
                }
            }
            Micro::Alu64R { dst, src, .. } | Micro::Alu32R { dst, src, .. } => {
                if reg_live[dst as usize] {
                    reg_live[src as usize] = true;
                } else {
                    keep[i] = false;
                }
            }
            Micro::StackLd { size, dst, off } => {
                if reg_live[dst as usize] {
                    reg_live[dst as usize] = false;
                    for b in &mut stack_live[off as usize..off as usize + size.bytes()] {
                        *b = true;
                    }
                } else {
                    keep[i] = false;
                }
            }
            Micro::StackStR { size, off, src } => {
                let r = off as usize..off as usize + size.bytes();
                if stack_live[r.clone()].iter().any(|&l| l) {
                    for b in &mut stack_live[r] {
                        *b = false;
                    }
                    reg_live[src as usize] = true;
                } else {
                    keep[i] = false;
                }
            }
            Micro::StackStI { size, off, .. } => {
                let r = off as usize..off as usize + size.bytes();
                if stack_live[r.clone()].iter().any(|&l| l) {
                    for b in &mut stack_live[r] {
                        *b = false;
                    }
                } else {
                    keep[i] = false;
                }
            }
        }
    }
    let mut it = keep.iter();
    ops.retain(|_| *it.next().unwrap());
}

/// Whole-program dead-write elimination over the finished step stream.
/// A register or frame write whose value no step anywhere can read at
/// runtime is unobservable (registers and the frame die with the run;
/// reports expose `r0` and the charge total only, faults expose
/// `pc`/`addr`), so it can be dropped — position-insensitively, which
/// makes a coarse global read-set sound. This catches what the
/// per-prefix [`dead_strip`] cannot: operand setup made redundant by a
/// specialization in a *later* step, e.g. the map-ref and key-pointer
/// moves ahead of a compile-time-resolved lookup. Stripping a write can
/// kill the reads feeding it, so iterate to a fixpoint.
fn global_strip(steps: &mut [JStep]) {
    fn scan_micro(m: &Micro, reg_read: &mut [bool; 11], stack_read: &mut bool) {
        match *m {
            Micro::MovI { .. } | Micro::StackStI { .. } => {}
            Micro::Mov64R { src, .. } | Micro::Mov32R { src, .. } => {
                reg_read[src as usize] = true;
            }
            Micro::Alu64I { dst, .. } | Micro::Alu32I { dst, .. } => {
                reg_read[dst as usize] = true;
            }
            Micro::Alu64R { dst, src, .. } | Micro::Alu32R { dst, src, .. } => {
                reg_read[dst as usize] = true;
                reg_read[src as usize] = true;
            }
            Micro::StackLd { .. } => *stack_read = true,
            Micro::StackStR { src, .. } => reg_read[src as usize] = true,
        }
    }
    fn scan_src(s: PSrc, reg_read: &mut [bool; 11]) {
        if let PSrc::Reg(r) = s {
            reg_read[r as usize] = true;
        }
    }
    loop {
        let mut reg_read = [false; 11];
        // The run report returns `r0`.
        reg_read[0] = true;
        let mut stack_read = false;
        for s in steps.iter() {
            for m in s.pre.iter() {
                scan_micro(m, &mut reg_read, &mut stack_read);
            }
            match &s.op {
                JOp::Nop | JOp::Exit | JOp::Trap { .. } | JOp::Halt { .. } | JOp::Ja { .. } => {}
                // A generic load may resolve to any frame byte.
                &JOp::Load { base, .. } => {
                    reg_read[base as usize] = true;
                    stack_read = true;
                }
                &JOp::Store { base, src, .. } => {
                    reg_read[base as usize] = true;
                    scan_src(src, &mut reg_read);
                }
                JOp::MapValLd { .. } => {}
                &JOp::MapValSt { src, .. } => scan_src(src, &mut reg_read),
                JOp::MapValRmw { mid, src, .. } | JOp::MapValRmw8 { mid, src, .. } => {
                    for m in mid.iter() {
                        scan_micro(m, &mut reg_read, &mut stack_read);
                    }
                    scan_src(*src, &mut reg_read);
                }
                &JOp::Jmp { dst, src, .. } => {
                    reg_read[dst as usize] = true;
                    scan_src(src, &mut reg_read);
                }
                JOp::CallEnv0 { .. } => {}
                JOp::CallEnv1 { .. } => reg_read[1] = true,
                JOp::CallTrace { .. } => {
                    reg_read[1] = true;
                    reg_read[2] = true;
                    stack_read = true;
                }
                // The generic map call re-reads its argument registers
                // and key/value windows at runtime.
                JOp::CallMap { .. } => {
                    for r in &mut reg_read[1..6] {
                        *r = true;
                    }
                    stack_read = true;
                }
                JOp::MapLookupFast { fast, .. } => {
                    if fast.cached.is_none() {
                        stack_read = true;
                    }
                }
                JOp::MapUpdateFast { .. } => stack_read = true,
                JOp::MapLookupBr {
                    fast, jdst, jsrc, ..
                } => {
                    match fast {
                        Some(f) => {
                            if f.cached.is_none() {
                                stack_read = true;
                            }
                        }
                        None => {
                            for r in &mut reg_read[1..6] {
                                *r = true;
                            }
                            stack_read = true;
                        }
                    }
                    reg_read[*jdst as usize] = true;
                    scan_src(*jsrc, &mut reg_read);
                }
            }
        }
        let keep = |m: &Micro| -> bool {
            match *m {
                Micro::MovI { dst, .. }
                | Micro::Mov64R { dst, .. }
                | Micro::Mov32R { dst, .. }
                | Micro::Alu64I { dst, .. }
                | Micro::Alu64R { dst, .. }
                | Micro::Alu32I { dst, .. }
                | Micro::Alu32R { dst, .. }
                | Micro::StackLd { dst, .. } => reg_read[dst as usize],
                Micro::StackStR { .. } | Micro::StackStI { .. } => stack_read,
            }
        };
        let mut changed = false;
        let mut strip = |ops: &mut Box<[Micro]>| {
            if ops.iter().all(&keep) {
                return;
            }
            changed = true;
            let kept: Vec<Micro> = ops.iter().copied().filter(&keep).collect();
            *ops = kept.into_boxed_slice();
        };
        for s in steps.iter_mut() {
            strip(&mut s.pre);
            if let JOp::MapValRmw { mid, .. } | JOp::MapValRmw8 { mid, .. } = &mut s.op {
                strip(mid);
            }
        }
        if !changed {
            break;
        }
    }
}

/// Compiler state: the step stream, the pending pure prefix and its
/// accumulated weight, the constant lattice, and the map index each
/// provably-registered region came from (parallel to `Consts::pushes` —
/// entry `k` is only ever read while `pushes` has stayed known, which
/// pins it to the same straight line that wrote it).
struct Cc<'a> {
    steps: Vec<JStep>,
    blk: Vec<Micro>,
    blk_w: u64,
    c: Consts,
    caches: u32,
    region_maps: Vec<u32>,
    maps: &'a [Arc<Map>],
}

impl Cc<'_> {
    /// Closes the pending prefix into a step carrying `op`, which also
    /// covers `w` (the op's own slot weight).
    fn emit(&mut self, w: u64, op: JOp) {
        let mut pre = std::mem::take(&mut self.blk);
        if !pre.is_empty() {
            dead_strip(&mut pre, matches!(op, JOp::Exit));
        }
        self.steps.push(JStep {
            weight: self.blk_w + w,
            pre: pre.into_boxed_slice(),
            op,
        });
        self.blk_w = 0;
    }

    /// Closes the pending prefix as a standalone [`JOp::Nop`] step —
    /// used ahead of a leader, which other paths enter without it.
    fn flush(&mut self) {
        if !self.blk.is_empty() || self.blk_w > 0 {
            self.emit(0, JOp::Nop);
        }
    }

    /// Resolves `base + off` as a load/store through a compile-time
    /// constant map-value region pointer with a compile-time in-bounds
    /// window: `(region, byte offset, full address)`.
    fn mapval_win(&self, base: Option<u64>, off: u64, n: usize) -> Option<(u32, u32, u64)> {
        let addr = base?.wrapping_add(off);
        if ptr_tag(addr) != TAG_MAPVAL {
            return None;
        }
        let k = ptr_index(addr) as usize;
        let mi = *self.region_maps.get(k)? as usize;
        let o = ptr_off(addr) as usize;
        if o + n <= self.maps[mi].def().value_size {
            Some((k as u32, o as u32, addr))
        } else {
            None
        }
    }
}

/// Emits one ALU-class micro-op, folding through the constant lattice.
fn emit_alu(blk: &mut Vec<Micro>, c: &mut Consts, wide: bool, op: AluOp, dst: u8, src: PSrc) {
    if op == AluOp::Mov {
        match c.src(src) {
            Some(v) => {
                let v = if wide { v } else { u64::from(v as u32) };
                blk.push(Micro::MovI { dst, imm: v });
                c.set(dst, Some(v));
            }
            None => {
                let PSrc::Reg(r) = src else { unreachable!() };
                blk.push(if wide {
                    Micro::Mov64R { dst, src: r }
                } else {
                    Micro::Mov32R { dst, src: r }
                });
                c.set(dst, None);
            }
        }
        return;
    }
    match (c.reg(dst), c.src(src)) {
        (Some(a), Some(b)) => {
            let v = if wide {
                fold64(op, a, b)
            } else {
                u64::from(fold32(op, a as u32, b as u32))
            };
            blk.push(Micro::MovI { dst, imm: v });
            c.set(dst, Some(v));
        }
        (None, Some(b)) => {
            blk.push(if wide {
                Micro::Alu64I { op, dst, imm: b }
            } else {
                Micro::Alu32I {
                    op,
                    dst,
                    imm: b as u32,
                }
            });
            c.set(dst, None);
        }
        _ => {
            let PSrc::Reg(r) = src else { unreachable!() };
            blk.push(if wide {
                Micro::Alu64R { op, dst, src: r }
            } else {
                Micro::Alu32R { op, dst, src: r }
            });
            c.set(dst, None);
        }
    }
}

/// A lowered memory operand: access width plus the base register and
/// constant offset it dereferences.
#[derive(Clone, Copy)]
struct MemRef {
    size: MemSize,
    base: u8,
    off: u64,
}

/// One load (or `Load2` half): a pure frame micro-op when the address
/// resolves to the frame, a region-tracked map-value step when it
/// resolves to a registered region, else a generic step with the
/// interpreter's runtime checks.
fn emit_load(cc: &mut Cc<'_>, slot: &mut u32, pc: u32, w: u64, m: MemRef, dst: u8) {
    let MemRef { size, base, off } = m;
    let nb = size.bytes();
    let bv = cc.c.reg(base);
    if let Some(so) = cc.c.stack_win(bv, off, nb) {
        *slot = cc.steps.len() as u32;
        cc.blk_w += w;
        if let Some(v) = cc.c.stack_read(so as usize, nb) {
            // Store-to-load forwarding: the frame bytes are known.
            cc.blk.push(Micro::MovI { dst, imm: v });
            cc.c.set(dst, Some(v));
        } else {
            cc.blk.push(Micro::StackLd { size, dst, off: so });
            cc.c.set(dst, None);
        }
    } else if let Some((region, mo, addr)) = cc.mapval_win(bv, off, nb) {
        *slot = cc.steps.len() as u32;
        cc.emit(
            w,
            JOp::MapValLd {
                pc,
                size,
                dst,
                region,
                off: mo,
                addr,
            },
        );
        cc.c.set(dst, None);
    } else {
        *slot = cc.steps.len() as u32;
        cc.emit(
            w,
            JOp::Load {
                pc,
                size,
                dst,
                base,
                off,
            },
        );
        cc.c.set(dst, None);
    }
}

fn emit_store(cc: &mut Cc<'_>, slot: &mut u32, pc: u32, w: u64, m: MemRef, src: PSrc) {
    let MemRef { size, base, off } = m;
    let nb = size.bytes();
    let bv = cc.c.reg(base);
    if let Some(so) = cc.c.stack_win(bv, off, nb) {
        *slot = cc.steps.len() as u32;
        cc.blk_w += w;
        match cc.c.src(src) {
            Some(v) => {
                cc.blk.push(Micro::StackStI {
                    size,
                    off: so,
                    imm: v,
                });
                cc.c.stack_write_const(so as usize, nb, v);
            }
            None => {
                let PSrc::Reg(r) = src else { unreachable!() };
                cc.blk.push(Micro::StackStR {
                    size,
                    off: so,
                    src: r,
                });
                cc.c.stack_write_unknown(so as usize, nb);
            }
        }
    } else if let Some((region, mo, addr)) = cc.mapval_win(bv, off, nb) {
        // Fuse with an immediately preceding region-tracked load into a
        // single RMW group. The lattice proving `base` a region pointer
        // guarantees no join point since that load (leaders reset it),
        // so no path enters between the two.
        let fuse = matches!(
            cc.steps.last(),
            Some(JStep {
                op: JOp::MapValLd { region: lr, .. },
                ..
            }) if *lr == region
        );
        if fuse {
            let ld = cc.steps.pop().unwrap();
            let JOp::MapValLd {
                pc: ld_pc,
                size: ld_size,
                dst,
                region,
                off: ld_off,
                addr: ld_addr,
            } = ld.op
            else {
                unreachable!()
            };
            let mut mid = std::mem::take(&mut cc.blk);
            if !mid.is_empty() {
                dead_strip(&mut mid, false);
            }
            let mid = mid.into_boxed_slice();
            let op = if ld_size == MemSize::Dw && size == MemSize::Dw && ld_off == mo && mo % 8 == 0
            {
                let mi = cc.region_maps[region as usize] as usize;
                JOp::MapValRmw8 {
                    pc: ld_pc,
                    dst,
                    region,
                    word: mo / 8,
                    stride: cc.maps[mi].value_stride() as u32,
                    ld_addr,
                    mid,
                    src,
                }
            } else {
                JOp::MapValRmw {
                    pc: ld_pc,
                    ld_size,
                    dst,
                    region,
                    ld_off,
                    ld_addr,
                    mid,
                    st_pc: pc,
                    st_size: size,
                    st_off: mo,
                    st_addr: addr,
                    src,
                }
            };
            *slot = cc.steps.len() as u32;
            cc.steps.push(JStep {
                weight: ld.weight + cc.blk_w + w,
                pre: ld.pre,
                op,
            });
            cc.blk_w = 0;
        } else {
            *slot = cc.steps.len() as u32;
            cc.emit(
                w,
                JOp::MapValSt {
                    pc,
                    size,
                    region,
                    off: mo,
                    addr,
                    src,
                },
            );
        }
    } else {
        *slot = cc.steps.len() as u32;
        cc.emit(
            w,
            JOp::Store {
                pc,
                size,
                base,
                off,
                src,
            },
        );
        // A store through an unresolved base may alias the frame.
        match bv.map(|b| ptr_tag(b.wrapping_add(off))) {
            Some(t) if t != TAG_STACK => {}
            _ => cc.c.stack_forget(),
        }
    }
}

/// Compile-time fast-path operands for a `map_lookup`-shaped call site:
/// map index from a constant `r1` map ref, key window from a constant
/// `r2` frame pointer. `None` falls back to the generic (re-validating)
/// step.
fn fast_map_args(c: &Consts, maps: &[Arc<Map>]) -> Option<(u32, StackWin)> {
    let mref = c.reg(1)?;
    if ptr_tag(mref) != TAG_MAPREF {
        return None;
    }
    let mi = ptr_index(mref) as usize;
    let def = maps.get(mi)?.def();
    let key = c.stack_win(c.reg(2), 0, def.key_size)?;
    Some((
        mi as u32,
        StackWin {
            off: key,
            len: def.key_size as u16,
        },
    ))
}

/// `fast_map_args` plus the constant-key slot cache when every key byte
/// is known at compile time and the map kind benefits (hash maps only —
/// array-kind slot resolution is already lock- and hash-free).
/// `caches` allocates one cache word per qualifying site.
fn fast_lookup(c: &Consts, maps: &[Arc<Map>], caches: &mut u32) -> Option<FastLookup> {
    let (map, key) = fast_map_args(c, maps)?;
    let cached = if maps[map as usize].probe_generation().is_some() {
        let bytes: Option<Box<[u8]>> = c.stack[key.range()].iter().copied().collect();
        bytes.map(|bytes| {
            let cache = *caches;
            *caches += 1;
            ConstKey { cache, bytes }
        })
    } else {
        None
    };
    Some(FastLookup { map, key, cached })
}

fn fast_update(c: &Consts, maps: &[Arc<Map>]) -> Option<(u32, StackWin, StackWin)> {
    let (mi, key) = fast_map_args(c, maps)?;
    let def = maps[mi as usize].def();
    let val = c.stack_win(c.reg(3), 0, def.value_size)?;
    Some((
        mi,
        key,
        StackWin {
            off: val,
            len: def.value_size as u16,
        },
    ))
}

/// Lowers a prepared program to its direct-threaded compiled form.
/// Total, like `prepare` itself: every prepared slot has an
/// always-correct generic mirror, and specialization only narrows how a
/// slot executes, never whether it can.
pub(crate) fn compile(p: &PreparedProgram) -> JitProgram {
    let code = &p.code;
    let weights = &p.weights;
    let n = code.len();
    // Leaders (jump targets and the entry) begin fresh steps and reset
    // the constant lattice.
    let mut lead = vec![false; n];
    lead[0] = true;
    for insn in code.iter() {
        match *insn {
            PInsn::Ja { target }
            | PInsn::Jmp { target, .. }
            | PInsn::CallMapLookupBr { target, .. } => lead[target as usize] = true,
            _ => {}
        }
    }
    let mut cc = Cc {
        steps: Vec::new(),
        blk: Vec::new(),
        blk_w: 0,
        c: Consts::boundary(),
        caches: 0,
        region_maps: Vec::new(),
        maps: &p.maps,
    };
    // Step index each slot landed at, for jump-target patching. Only
    // leader entries are ever read.
    let mut slot_step: Vec<u32> = vec![0; n];
    for pc in 0..n {
        if lead[pc] {
            cc.flush();
            cc.c = Consts::boundary();
            if pc == 0 {
                // Program entry: provably zero regions registered.
                cc.c.pushes = Some(0);
            }
        }
        let w = u64::from(weights[pc]);
        match code[pc] {
            PInsn::Nop => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
            }
            PInsn::Alu64 { op, dst, src } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                emit_alu(&mut cc.blk, &mut cc.c, true, op, dst, src);
            }
            PInsn::Alu32 { op, dst, src } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                emit_alu(&mut cc.blk, &mut cc.c, false, op, dst, src);
            }
            PInsn::Mov64R { dst, src } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                emit_alu(&mut cc.blk, &mut cc.c, true, AluOp::Mov, dst, PSrc::Reg(src));
            }
            PInsn::Mov32R { dst, src } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                emit_alu(&mut cc.blk, &mut cc.c, false, AluOp::Mov, dst, PSrc::Reg(src));
            }
            PInsn::LdImm64 { dst, imm } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                cc.blk.push(Micro::MovI { dst, imm });
                cc.c.set(dst, Some(imm));
            }
            PInsn::LdMapRef { dst, map_id } => {
                let v = ptr(TAG_MAPREF, u64::from(map_id), 0);
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                cc.blk.push(Micro::MovI { dst, imm: v });
                cc.c.set(dst, Some(v));
            }
            PInsn::Alu2 {
                w1,
                op1,
                dst1,
                src1,
                w2,
                op2,
                dst2,
                src2,
            } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.blk_w += w;
                emit_alu(&mut cc.blk, &mut cc.c, w1, op1, dst1, src1);
                emit_alu(&mut cc.blk, &mut cc.c, w2, op2, dst2, src2);
            }
            PInsn::Load {
                size,
                dst,
                base,
                off,
            } => {
                let mut slot = 0u32;
                emit_load(&mut cc, &mut slot, pc as u32, w, MemRef { size, base, off }, dst);
                slot_step[pc] = slot;
            }
            PInsn::Load2 {
                s1,
                d1,
                b1,
                o1,
                s2,
                d2,
                b2,
                o2,
            } => {
                // The fused slot's weight covers both halves; the second
                // half charges 0 and faults at `pc + 1`, exactly like the
                // prepared arm.
                let mut slot = 0u32;
                let m1 = MemRef { size: s1, base: b1, off: o1 };
                emit_load(&mut cc, &mut slot, pc as u32, w, m1, d1);
                slot_step[pc] = slot;
                let mut dead = 0u32;
                let m2 = MemRef { size: s2, base: b2, off: o2 };
                emit_load(&mut cc, &mut dead, (pc + 1) as u32, 0, m2, d2);
            }
            PInsn::Store {
                size,
                base,
                off,
                src,
            } => {
                let mut slot = 0u32;
                emit_store(&mut cc, &mut slot, pc as u32, w, MemRef { size, base, off }, src);
                slot_step[pc] = slot;
            }
            PInsn::Ja { target } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(w, JOp::Ja { target });
            }
            PInsn::Jmp {
                op,
                dst,
                src,
                target,
            } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(
                    w,
                    JOp::Jmp {
                        op,
                        dst,
                        src,
                        target,
                    },
                );
                // Fall-through keeps the lattice: the branch writes
                // nothing.
            }
            PInsn::CallEnv0 { f } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(w, JOp::CallEnv0 { pc: pc as u32, f });
                cc.c.clobber_helper();
            }
            PInsn::CallEnv1 { f } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(w, JOp::CallEnv1 { pc: pc as u32, f });
                cc.c.clobber_helper();
            }
            PInsn::CallTrace { helper } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(
                    w,
                    JOp::CallTrace {
                        pc: pc as u32,
                        helper,
                    },
                );
                cc.c.clobber_helper();
            }
            PInsn::CallMap { op, helper } => {
                slot_step[pc] = cc.steps.len() as u32;
                let step = match op {
                    MapOp::Lookup => {
                        fast_lookup(&cc.c, cc.maps, &mut cc.caches).map(|fast| JOp::MapLookupFast {
                            pc: pc as u32,
                            helper,
                            fast,
                        })
                    }
                    MapOp::Update => {
                        fast_update(&cc.c, cc.maps).map(|(map, key, val)| JOp::MapUpdateFast {
                            pc: pc as u32,
                            helper,
                            map,
                            key,
                            val,
                        })
                    }
                    MapOp::Delete => None,
                };
                cc.emit(
                    w,
                    step.unwrap_or(JOp::CallMap {
                        pc: pc as u32,
                        op,
                        helper,
                    }),
                );
                cc.c.clobber_helper();
                if op == MapOp::Lookup {
                    // A hit registers a region; whether it hit is unknown.
                    cc.c.pushes = None;
                }
            }
            PInsn::CallMapLookupBr {
                helper,
                jop,
                jdst,
                jsrc,
                target,
            } => {
                slot_step[pc] = cc.steps.len() as u32;
                let fast = fast_lookup(&cc.c, cc.maps, &mut cc.caches);
                let known_map = fast.as_ref().map(|f| f.map);
                cc.emit(
                    w,
                    JOp::MapLookupBr {
                        pc: pc as u32,
                        helper,
                        fast,
                        jop,
                        jdst,
                        jsrc,
                        target,
                    },
                );
                cc.c.clobber_helper();
                // The branch reads the post-clobber registers. Testing
                // `r0` against zero decides hit-ness on the fall-through
                // path, which keeps the region count — and on a proven
                // hit makes `r0` a compile-time-constant region pointer.
                match (jdst, jsrc, jop) {
                    (0, PSrc::Imm(0), JmpOp::Eq) => {
                        // Fall-through ⇒ r0 ≠ 0 ⇒ hit ⇒ one region
                        // registered.
                        match (cc.c.pushes, known_map) {
                            (Some(k), Some(mi)) => {
                                cc.c.set(0, Some(ptr(TAG_MAPVAL, k, 0)));
                                debug_assert_eq!(cc.region_maps.len() as u64, k);
                                cc.region_maps.push(mi);
                                cc.c.pushes = Some(k + 1);
                            }
                            _ => cc.c.pushes = None,
                        }
                    }
                    (0, PSrc::Imm(0), JmpOp::Ne) => {
                        // Fall-through ⇒ r0 = 0 ⇒ miss ⇒ no region.
                        cc.c.set(0, Some(0));
                    }
                    _ => cc.c.pushes = None,
                }
            }
            PInsn::Exit => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(w, JOp::Exit);
            }
            PInsn::Trap { kind } => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(w, JOp::Trap { pc: pc as u32, kind });
            }
            PInsn::Halt => {
                slot_step[pc] = cc.steps.len() as u32;
                cc.emit(w, JOp::Halt { pc: pc as u32 });
            }
        }
    }
    cc.flush();
    let mut steps = cc.steps;
    global_strip(&mut steps);
    // Retarget jumps from slot indices to step indices. Targets are
    // always leaders, and every leader starts its own step.
    for s in steps.iter_mut() {
        match &mut s.op {
            JOp::Ja { target }
            | JOp::Jmp { target, .. }
            | JOp::MapLookupBr { target, .. } => *target = slot_step[*target as usize],
            _ => {}
        }
    }
    JitProgram {
        steps: steps.into_boxed_slice(),
        caches: (0..cc.caches).map(|_| AtomicU64::new(0)).collect(),
    }
}

#[inline(always)]
fn exec_micro(m: &mut Runner<'_>, op: Micro) {
    match op {
        Micro::MovI { dst, imm } => m.set_reg(dst, imm),
        Micro::Mov64R { dst, src } => {
            let v = m.reg(src);
            m.set_reg(dst, v);
        }
        Micro::Mov32R { dst, src } => {
            let v = u64::from(m.reg(src) as u32);
            m.set_reg(dst, v);
        }
        Micro::Alu64I { op, dst, imm } => {
            let v = fold64(op, m.reg(dst), imm);
            m.set_reg(dst, v);
        }
        Micro::Alu64R { op, dst, src } => {
            let rhs = m.reg(src);
            let v = fold64(op, m.reg(dst), rhs);
            m.set_reg(dst, v);
        }
        Micro::Alu32I { op, dst, imm } => {
            let v = u64::from(fold32(op, m.reg(dst) as u32, imm));
            m.set_reg(dst, v);
        }
        Micro::Alu32R { op, dst, src } => {
            let rhs = m.reg(src) as u32;
            let v = u64::from(fold32(op, m.reg(dst) as u32, rhs));
            m.set_reg(dst, v);
        }
        Micro::StackLd { size, dst, off } => {
            let o = off as usize;
            let v = read_le(&m.stack[o..o + size.bytes()]);
            m.set_reg(dst, v);
        }
        Micro::StackStR { size, off, src } => {
            let n = size.bytes();
            let v = m.reg(src).to_le_bytes();
            let o = off as usize;
            m.stack[o..o + n].copy_from_slice(&v[..n]);
        }
        Micro::StackStI { size, off, imm } => {
            let n = size.bytes();
            let o = off as usize;
            m.stack[o..o + n].copy_from_slice(&imm.to_le_bytes()[..n]);
        }
    }
}

/// Cache word layout: bit 63 = valid, bits 62..24 = low 39 bits of the
/// map's probe generation, bits 23..0 = slot + 1 (0 encodes a miss).
/// Slot counts are bounded by shards × shard capacity, far below 2²⁴.
const CACHE_VALID: u64 = 1 << 63;
const CACHE_SLOT_BITS: u32 = 24;
const CACHE_SLOT_MASK: u64 = (1 << CACHE_SLOT_BITS) - 1;
const CACHE_GEN_MASK: u64 = (1 << 39) - 1;

/// Constant-key slot resolution through the per-site cache: one
/// generation load and one compare on a hit, a real probe (tagged with
/// the pre-probe generation, so a concurrent layout change invalidates
/// conservatively) on a miss.
///
/// Concurrency: the cached slot is exactly what a [`Map::lookup_slot`]
/// racing the same inserts/deletes could have returned — a stale-by-one
/// generation read linearizes the lookup just before the layout change,
/// and the map's bytes-stable-until-reuse discipline covers the value
/// accesses that follow, same as for the uncached tiers.
#[inline(always)]
fn cached_lookup(map: &Map, cache: &AtomicU64, key: &[u8], env: &dyn PolicyEnv) -> Option<u32> {
    // `cpu_id` is a pure environment read, so it is only queried when a
    // probe actually runs — a cache hit elides it along with the probe.
    let Some(gen) = map.probe_generation() else {
        return mapops::lookup(map, key, env.cpu_id());
    };
    let tag = CACHE_VALID | ((gen & CACHE_GEN_MASK) << CACHE_SLOT_BITS);
    let word = cache.load(Ordering::Relaxed);
    if word & !CACHE_SLOT_MASK == tag {
        let enc = word & CACHE_SLOT_MASK;
        return if enc == 0 { None } else { Some((enc - 1) as u32) };
    }
    let slot = mapops::lookup(map, key, env.cpu_id());
    let enc = slot.map_or(0, |s| u64::from(s) + 1);
    cache.store(tag | enc, Ordering::Relaxed);
    slot
}

#[inline(always)]
fn run_fast_lookup(m: &mut Runner<'_>, jit: &JitProgram, f: &FastLookup) -> u64 {
    // Reborrow the slice (not through `m`) so the map stays usable
    // across the `&mut` region registration, as in `Runner::call_map`.
    let maps = m.maps;
    let map = &maps[f.map as usize];
    let slot = match &f.cached {
        Some(ck) => cached_lookup(map, &jit.caches[ck.cache as usize], &ck.bytes, m.env),
        None => mapops::lookup(map, &m.stack[f.key.range()], m.env.cpu_id()),
    };
    match slot {
        Some(slot) => ptr(TAG_MAPVAL, m.regions.push(f.map, slot), 0),
        None => 0,
    }
}

/// Runs a compiled program. Observationally identical to
/// [`PreparedProgram::run`]'s interpreter at every budget and with every
/// injector plan: same reports, side effects, faults and fault order.
pub(crate) fn run(
    p: &PreparedProgram,
    jit: &JitProgram,
    ctx: &mut [u8],
    env: &dyn PolicyEnv,
    budget: u64,
    injector: Option<&FaultInjector>,
) -> Result<RunReport, RunError> {
    if let Some(inj) = injector {
        if let Some(fault) = inj.invocation_fault() {
            return Err(fault);
        }
    }
    let mut m = Runner::new(ctx, env, &p.maps, &p.perm);
    let steps = &jit.steps;
    let mut si: usize = 0;
    let mut executed: u64 = 0;
    loop {
        // SAFETY: `compile` patches every jump target to a valid step
        // index and the final step is `Halt` (which returns), so `si`
        // never leaves the array — the same contract the prepared loop
        // holds for `pc`.
        debug_assert!(si < steps.len());
        let step = unsafe { steps.get_unchecked(si) };
        if step.weight > budget - executed {
            return Err(RunError::BudgetExhausted);
        }
        executed += step.weight;
        for op in step.pre.iter() {
            exec_micro(&mut m, *op);
        }
        match &step.op {
            JOp::Nop => {}
            &JOp::Load {
                pc,
                size,
                dst,
                base,
                off,
            } => {
                let addr = m.reg(base).wrapping_add(off);
                let v = m.load(pc as usize, addr, size)?;
                m.set_reg(dst, v);
            }
            &JOp::Store {
                pc,
                size,
                base,
                off,
                src,
            } => {
                let addr = m.reg(base).wrapping_add(off);
                let v = m.src(src);
                m.store(pc as usize, addr, size, v)?;
            }
            &JOp::MapValLd {
                pc,
                size,
                dst,
                region,
                off,
                addr,
            } => {
                // The fault arms mirror `Runner::load`'s `TAG_MAPVAL`
                // path exactly; compile-time region/bounds proofs make
                // them unreachable.
                let Some((mi, slot)) = m.regions.get(region as usize) else {
                    return Err(RunError::BadAccess {
                        pc: pc as usize,
                        addr,
                    });
                };
                let Some(v) = m.maps[mi as usize].value_load(slot, off as usize, size.bytes())
                else {
                    return Err(RunError::BadAccess {
                        pc: pc as usize,
                        addr,
                    });
                };
                m.set_reg(dst, v);
            }
            &JOp::MapValSt {
                pc,
                size,
                region,
                off,
                addr,
                src,
            } => {
                let v = m.src(src);
                let Some((mi, slot)) = m.regions.get(region as usize) else {
                    return Err(RunError::BadAccess {
                        pc: pc as usize,
                        addr,
                    });
                };
                if !m.maps[mi as usize].value_store(slot, off as usize, size.bytes(), v) {
                    return Err(RunError::BadAccess {
                        pc: pc as usize,
                        addr,
                    });
                }
            }
            JOp::MapValRmw {
                pc,
                ld_size,
                dst,
                region,
                ld_off,
                ld_addr,
                mid,
                st_pc,
                st_size,
                st_off,
                st_addr,
                src,
            } => {
                // Both halves mirror the split MapValLd/MapValSt arms;
                // the shared region resolution is why the fusion
                // requires matching regions.
                let Some((mi, slot)) = m.regions.get(*region as usize) else {
                    return Err(RunError::BadAccess {
                        pc: *pc as usize,
                        addr: *ld_addr,
                    });
                };
                let maps = m.maps;
                let map = &maps[mi as usize];
                let Some(v) = map.value_load(slot, *ld_off as usize, ld_size.bytes()) else {
                    return Err(RunError::BadAccess {
                        pc: *pc as usize,
                        addr: *ld_addr,
                    });
                };
                m.set_reg(*dst, v);
                for op in mid.iter() {
                    exec_micro(&mut m, *op);
                }
                let v = m.src(*src);
                if !map.value_store(slot, *st_off as usize, st_size.bytes(), v) {
                    return Err(RunError::BadAccess {
                        pc: *st_pc as usize,
                        addr: *st_addr,
                    });
                }
            }
            JOp::MapValRmw8 {
                pc,
                dst,
                region,
                word,
                stride,
                ld_addr,
                mid,
                src,
            } => {
                let Some((mi, slot)) = m.regions.get(*region as usize) else {
                    return Err(RunError::BadAccess {
                        pc: *pc as usize,
                        addr: *ld_addr,
                    });
                };
                let maps = m.maps;
                let idx = slot as usize * *stride as usize + *word as usize;
                let Some(w) = maps[mi as usize].value_word(idx) else {
                    return Err(RunError::BadAccess {
                        pc: *pc as usize,
                        addr: *ld_addr,
                    });
                };
                let v = w.load(Ordering::Relaxed);
                m.set_reg(*dst, v);
                for op in mid.iter() {
                    exec_micro(&mut m, *op);
                }
                // The shared in-bounds word handle makes the store
                // infallible (`value_store`'s full-mask path is a plain
                // relaxed store), so no store-side fault arm is needed.
                let v = m.src(*src);
                w.store(v, Ordering::Relaxed);
            }
            &JOp::Ja { target } => {
                si = target as usize;
                continue;
            }
            &JOp::Jmp {
                op,
                dst,
                src,
                target,
            } => {
                let r = m.src(src);
                if op.eval(m.reg(dst), r) {
                    si = target as usize;
                    continue;
                }
            }
            &JOp::CallEnv0 { pc, f } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(pc as usize, 0) {
                        return Err(fault);
                    }
                }
                let ret = f(m.env);
                m.regs[1..6].fill(0);
                m.regs[0] = ret;
            }
            &JOp::CallEnv1 { pc, f } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(pc as usize, 0) {
                        return Err(fault);
                    }
                }
                let ret = f(m.env, m.regs[1]);
                m.regs[1..6].fill(0);
                m.regs[0] = ret;
            }
            &JOp::CallTrace { pc, helper } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(pc as usize, helper) {
                        return Err(fault);
                    }
                }
                let pc = pc as usize;
                let len = m.regs[2] as usize;
                if helper == HelperId::TraceEmit as u32 {
                    if !(1..=crate::helpers::TRACE_EMIT_MAX_PAYLOAD).contains(&len) {
                        return Err(RunError::HelperFault {
                            pc,
                            helper,
                            msg: "trace_emit payload length out of bounds",
                        });
                    }
                    let bytes = m.stack_bytes(pc, m.regs[1], len)?;
                    m.env.trace_emit(bytes);
                    m.regs[1..6].fill(0);
                    m.regs[0] = 0;
                } else {
                    if len > STACK_SIZE {
                        return Err(RunError::HelperFault {
                            pc,
                            helper,
                            msg: "trace length too large",
                        });
                    }
                    let bytes = m.stack_bytes(pc, m.regs[1], len)?;
                    m.env.trace(bytes);
                    m.regs[1..6].fill(0);
                    m.regs[0] = len as u64;
                }
            }
            &JOp::CallMap { pc, op, helper } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(pc as usize, helper) {
                        return Err(fault);
                    }
                }
                let ret = m.call_map(pc as usize, op, helper)?;
                m.regs[1..6].fill(0);
                m.regs[0] = ret;
            }
            JOp::MapLookupFast { pc, helper, fast } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(*pc as usize, *helper) {
                        return Err(fault);
                    }
                }
                let ret = run_fast_lookup(&mut m, jit, fast);
                m.regs[1..6].fill(0);
                m.regs[0] = ret;
            }
            &JOp::MapUpdateFast {
                pc,
                helper,
                map,
                key,
                val,
            } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(pc as usize, helper) {
                        return Err(fault);
                    }
                }
                let ret = {
                    let mref = &m.maps[map as usize];
                    let cpu = m.env.cpu_id();
                    mapops::update(mref, &m.stack[key.range()], &m.stack[val.range()], cpu)
                };
                m.regs[1..6].fill(0);
                m.regs[0] = ret;
            }
            JOp::MapLookupBr {
                pc,
                helper,
                fast,
                jop,
                jdst,
                jsrc,
                target,
            } => {
                if let Some(inj) = injector {
                    if let Some(fault) = inj.helper_fault(*pc as usize, *helper) {
                        return Err(fault);
                    }
                }
                let ret = match fast {
                    Some(f) => run_fast_lookup(&mut m, jit, f),
                    None => m.call_map(*pc as usize, MapOp::Lookup, *helper)?,
                };
                m.regs[1..6].fill(0);
                m.regs[0] = ret;
                let rhs = m.src(*jsrc);
                if jop.eval(m.reg(*jdst), rhs) {
                    si = *target as usize;
                    continue;
                }
            }
            JOp::Exit => {
                return Ok(RunReport {
                    ret: m.regs[0],
                    insns: executed,
                });
            }
            // Terminal faulting steps: the group charge already ran
            // (budget exhaustion wins, as at the interpreter's loop
            // top), so just fault.
            &JOp::Trap { pc, kind } => {
                return Err(kind.to_error(pc as usize));
            }
            &JOp::Halt { pc } => {
                return Err(RunError::PcOutOfBounds { pc: i64::from(pc) });
            }
        }
        si += 1;
    }
}
