//! Instruction set: an eBPF-shaped 64-bit register machine.
//!
//! Eleven registers (`r0`–`r10`), of which `r0` carries return values,
//! `r1`–`r5` carry helper/program arguments, `r6`–`r9` are callee-saved
//! across helper calls and `r10` is the read-only frame pointer addressing a
//! 512-byte stack that grows downwards. Instructions encode to the same
//! 8-byte slot format as eBPF (`op:8 dst:4 src:4 off:16 imm:32`), with
//! `ldimm64` occupying two slots.

use crate::error::DecodeError;

/// Number of general-purpose registers (`r0`–`r10`).
pub const NUM_REGS: u8 = 11;

/// Stack size in bytes addressed downward from `r10`.
pub const STACK_SIZE: usize = 512;

/// Maximum number of instructions a single program may contain.
pub const MAX_INSNS: usize = 4096;

/// A machine register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Reg(pub u8);

impl Reg {
    /// Return-value / scratch register.
    pub const R0: Reg = Reg(0);
    /// First argument register (holds the context pointer on entry).
    pub const R1: Reg = Reg(1);
    /// Second argument register.
    pub const R2: Reg = Reg(2);
    /// Third argument register.
    pub const R3: Reg = Reg(3);
    /// Fourth argument register.
    pub const R4: Reg = Reg(4);
    /// Fifth argument register.
    pub const R5: Reg = Reg(5);
    /// First callee-saved register.
    pub const R6: Reg = Reg(6);
    /// Second callee-saved register.
    pub const R7: Reg = Reg(7);
    /// Third callee-saved register.
    pub const R8: Reg = Reg(8);
    /// Fourth callee-saved register.
    pub const R9: Reg = Reg(9);
    /// Read-only frame pointer.
    pub const R10: Reg = Reg(10);
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Arithmetic/logic operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields 0 (eBPF semantics).
    Div,
    /// Unsigned remainder; modulo zero yields the dividend (eBPF semantics).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to width).
    Lsh,
    /// Logical shift right.
    Rsh,
    /// Arithmetic shift right.
    Arsh,
    /// Two's-complement negation (unary; source operand ignored).
    Neg,
    /// Register/immediate move.
    Mov,
}

impl AluOp {
    /// All operations, for exhaustive tests.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Arsh,
        AluOp::Neg,
        AluOp::Mov,
    ];

    pub(crate) fn code(self) -> u8 {
        match self {
            AluOp::Add => 0x0,
            AluOp::Sub => 0x1,
            AluOp::Mul => 0x2,
            AluOp::Div => 0x3,
            AluOp::Mod => 0x4,
            AluOp::And => 0x5,
            AluOp::Or => 0x6,
            AluOp::Xor => 0x7,
            AluOp::Lsh => 0x8,
            AluOp::Rsh => 0x9,
            AluOp::Arsh => 0xa,
            AluOp::Neg => 0xb,
            AluOp::Mov => 0xc,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<AluOp> {
        AluOp::ALL.iter().copied().find(|op| op.code() == c)
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Mod => "mod",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Lsh => "lsh",
            AluOp::Rsh => "rsh",
            AluOp::Arsh => "arsh",
            AluOp::Neg => "neg",
            AluOp::Mov => "mov",
        }
    }
}

/// Conditional-jump predicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// `dst & src != 0`.
    Set,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

impl JmpOp {
    /// All predicates, for exhaustive tests.
    pub const ALL: [JmpOp; 11] = [
        JmpOp::Eq,
        JmpOp::Ne,
        JmpOp::Gt,
        JmpOp::Ge,
        JmpOp::Lt,
        JmpOp::Le,
        JmpOp::Set,
        JmpOp::Sgt,
        JmpOp::Sge,
        JmpOp::Slt,
        JmpOp::Sle,
    ];

    pub(crate) fn code(self) -> u8 {
        match self {
            JmpOp::Eq => 0x1,
            JmpOp::Ne => 0x2,
            JmpOp::Gt => 0x3,
            JmpOp::Ge => 0x4,
            JmpOp::Lt => 0x5,
            JmpOp::Le => 0x6,
            JmpOp::Set => 0x7,
            JmpOp::Sgt => 0x8,
            JmpOp::Sge => 0x9,
            JmpOp::Slt => 0xa,
            JmpOp::Sle => 0xb,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<JmpOp> {
        JmpOp::ALL.iter().copied().find(|op| op.code() == c)
    }

    /// Assembler mnemonic (`jeq`, `jne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            JmpOp::Eq => "jeq",
            JmpOp::Ne => "jne",
            JmpOp::Gt => "jgt",
            JmpOp::Ge => "jge",
            JmpOp::Lt => "jlt",
            JmpOp::Le => "jle",
            JmpOp::Set => "jset",
            JmpOp::Sgt => "jsgt",
            JmpOp::Sge => "jsge",
            JmpOp::Slt => "jslt",
            JmpOp::Sle => "jsle",
        }
    }

    /// Evaluates the predicate on 64-bit operands.
    pub fn eval(self, dst: u64, src: u64) -> bool {
        match self {
            JmpOp::Eq => dst == src,
            JmpOp::Ne => dst != src,
            JmpOp::Gt => dst > src,
            JmpOp::Ge => dst >= src,
            JmpOp::Lt => dst < src,
            JmpOp::Le => dst <= src,
            JmpOp::Set => dst & src != 0,
            JmpOp::Sgt => (dst as i64) > (src as i64),
            JmpOp::Sge => (dst as i64) >= (src as i64),
            JmpOp::Slt => (dst as i64) < (src as i64),
            JmpOp::Sle => (dst as i64) <= (src as i64),
        }
    }
}

/// Access width of a memory instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemSize {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    Dw,
}

impl MemSize {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            MemSize::B => 1,
            MemSize::H => 2,
            MemSize::W => 4,
            MemSize::Dw => 8,
        }
    }

    pub(crate) fn code(self) -> u8 {
        match self {
            MemSize::B => 0,
            MemSize::H => 1,
            MemSize::W => 2,
            MemSize::Dw => 3,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<MemSize> {
        match c {
            0 => Some(MemSize::B),
            1 => Some(MemSize::H),
            2 => Some(MemSize::W),
            3 => Some(MemSize::Dw),
            _ => None,
        }
    }

    /// Assembler suffix (`b`, `h`, `w`, `dw`).
    pub fn suffix(self) -> &'static str {
        match self {
            MemSize::B => "b",
            MemSize::H => "h",
            MemSize::W => "w",
            MemSize::Dw => "dw",
        }
    }
}

/// Second operand of ALU, store and jump instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// Register source.
    Reg(Reg),
    /// 32-bit immediate, sign-extended to 64 bits where applicable.
    Imm(i32),
}

/// One decoded instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insn {
    /// `dst = dst op src` (64-bit when `wide`, else 32-bit with zero
    /// extension of the result, as in eBPF).
    Alu {
        /// 64-bit operation when true; 32-bit otherwise.
        wide: bool,
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Second operand.
        src: Operand,
    },
    /// `dst = imm` (full 64-bit immediate; occupies two encoded slots).
    LdImm64 {
        /// Destination register.
        dst: Reg,
        /// The immediate.
        imm: u64,
    },
    /// `dst = &map[map_id]` — pseudo load of a map reference, the analog of
    /// eBPF's `ldimm64` with `BPF_PSEUDO_MAP_FD`.
    LdMapRef {
        /// Destination register.
        dst: Reg,
        /// Index into the program's map table.
        map_id: u32,
    },
    /// `dst = *(size*)(base + off)`.
    Load {
        /// Access width.
        size: MemSize,
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i16,
    },
    /// `*(size*)(base + off) = src`.
    Store {
        /// Access width.
        size: MemSize,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        off: i16,
        /// Value to store.
        src: Operand,
    },
    /// Unconditional jump by `off` instructions (relative to the next one).
    Ja {
        /// Signed instruction offset.
        off: i16,
    },
    /// Conditional jump: `if dst op src goto pc + 1 + off`.
    Jmp {
        /// Predicate.
        op: JmpOp,
        /// Left operand register.
        dst: Reg,
        /// Right operand.
        src: Operand,
        /// Signed instruction offset.
        off: i16,
    },
    /// Helper call; arguments in `r1`–`r5`, result in `r0`.
    Call {
        /// Helper identifier.
        helper: u32,
    },
    /// Return from the program with the value in `r0`.
    Exit,
}

// Encoding: op byte layout mirrors eBPF classes.
const CLASS_ALU64: u8 = 0x07;
const CLASS_ALU32: u8 = 0x04;
const CLASS_LD: u8 = 0x00; // ldimm64 / ldmapref
const CLASS_LDX: u8 = 0x01;
const CLASS_ST: u8 = 0x02; // store immediate
const CLASS_STX: u8 = 0x03; // store register
const CLASS_JMP: u8 = 0x05;

const SRC_IMM: u8 = 0x0;
const SRC_REG: u8 = 0x8;

/// One encoded instruction slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RawInsn {
    /// Opcode byte: `class | src_flag | (sub_op << 4)`.
    pub op: u8,
    /// Destination register number.
    pub dst: u8,
    /// Source register number.
    pub src: u8,
    /// Signed 16-bit offset.
    pub off: i16,
    /// 32-bit immediate.
    pub imm: i32,
}

impl RawInsn {
    /// Serializes to the 8-byte on-disk format.
    pub fn to_bytes(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.op;
        b[1] = self.dst | (self.src << 4);
        b[2..4].copy_from_slice(&self.off.to_le_bytes());
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Deserializes from the 8-byte on-disk format.
    pub fn from_bytes(b: [u8; 8]) -> RawInsn {
        RawInsn {
            op: b[0],
            dst: b[1] & 0x0f,
            src: b[1] >> 4,
            off: i16::from_le_bytes([b[2], b[3]]),
            imm: i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        }
    }
}

fn slots_of(insn: &Insn) -> usize {
    match insn {
        Insn::LdImm64 { .. } | Insn::LdMapRef { .. } => 2,
        _ => 1,
    }
}

/// Encodes a sequence of instructions into raw slots (`ldimm64` and
/// `ldmapref` take two).
///
/// Jump offsets at the [`Insn`] level count decoded instructions; this
/// translates them to raw-slot units as eBPF does, so a jump across an
/// `ldimm64` encodes with a larger raw offset.
///
/// # Panics
///
/// Panics if a translated jump offset does not fit in 16 bits or targets a
/// position outside `[0, len]` (the verifier rejects such programs; callers
/// encode only verified or builder-produced programs).
pub fn encode(insns: &[Insn]) -> Vec<RawInsn> {
    // Raw slot position of each decoded instruction (plus the end position).
    let mut rawpos = Vec::with_capacity(insns.len() + 1);
    let mut pos = 0usize;
    for insn in insns {
        rawpos.push(pos);
        pos += slots_of(insn);
    }
    rawpos.push(pos);
    let raw_jump_off = |i: usize, off: i16| -> i16 {
        let target = i as i64 + 1 + i64::from(off);
        assert!(
            target >= 0 && target <= insns.len() as i64,
            "jump target {target} outside program"
        );
        let raw = rawpos[target as usize] as i64 - rawpos[i] as i64 - 1;
        i16::try_from(raw).expect("raw jump offset fits i16")
    };

    let mut out = Vec::with_capacity(insns.len());
    for (i, insn) in insns.iter().enumerate() {
        match *insn {
            Insn::Alu { wide, op, dst, src } => {
                let class = if wide { CLASS_ALU64 } else { CLASS_ALU32 };
                let (flag, srcreg, imm) = operand_parts(src);
                out.push(RawInsn {
                    op: class | flag | (op.code() << 4),
                    dst: dst.0,
                    src: srcreg,
                    off: 0,
                    imm,
                });
            }
            Insn::LdImm64 { dst, imm } => {
                out.push(RawInsn {
                    op: CLASS_LD | SRC_IMM,
                    dst: dst.0,
                    src: 0,
                    off: 0,
                    imm: imm as u32 as i32,
                });
                out.push(RawInsn {
                    op: 0,
                    dst: 0,
                    src: 0,
                    off: 0,
                    imm: (imm >> 32) as u32 as i32,
                });
            }
            Insn::LdMapRef { dst, map_id } => {
                // src nibble 1 marks the pseudo map reference, like
                // BPF_PSEUDO_MAP_FD.
                out.push(RawInsn {
                    op: CLASS_LD | SRC_IMM,
                    dst: dst.0,
                    src: 1,
                    off: 0,
                    imm: map_id as i32,
                });
                out.push(RawInsn::default());
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                out.push(RawInsn {
                    op: CLASS_LDX | (size.code() << 4),
                    dst: dst.0,
                    src: base.0,
                    off,
                    imm: 0,
                });
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => match src {
                Operand::Reg(r) => out.push(RawInsn {
                    op: CLASS_STX | (size.code() << 4),
                    dst: base.0,
                    src: r.0,
                    off,
                    imm: 0,
                }),
                Operand::Imm(imm) => out.push(RawInsn {
                    op: CLASS_ST | (size.code() << 4),
                    dst: base.0,
                    src: 0,
                    off,
                    imm,
                }),
            },
            Insn::Ja { off } => out.push(RawInsn {
                op: CLASS_JMP | SRC_IMM,
                dst: 0,
                src: 0,
                off: raw_jump_off(i, off),
                imm: 0,
            }),
            Insn::Jmp { op, dst, src, off } => {
                let (flag, srcreg, imm) = operand_parts(src);
                out.push(RawInsn {
                    op: CLASS_JMP | flag | (op.code() << 4),
                    dst: dst.0,
                    src: srcreg,
                    off: raw_jump_off(i, off),
                    imm,
                });
            }
            Insn::Call { helper } => out.push(RawInsn {
                op: CLASS_JMP | (0xc << 4),
                dst: 0,
                src: 0,
                off: 0,
                imm: helper as i32,
            }),
            Insn::Exit => out.push(RawInsn {
                op: CLASS_JMP | (0xd << 4),
                dst: 0,
                src: 0,
                off: 0,
                imm: 0,
            }),
        }
    }
    out
}

fn operand_parts(src: Operand) -> (u8, u8, i32) {
    match src {
        Operand::Reg(r) => (SRC_REG, r.0, 0),
        Operand::Imm(i) => (SRC_IMM, 0, i),
    }
}

/// Decodes raw slots back into instructions.
///
/// Jump offsets are translated from raw-slot units back to decoded
/// instruction units (the inverse of [`encode`]).
///
/// # Errors
///
/// Returns [`DecodeError`] on unknown opcodes, bad register numbers, a
/// truncated two-slot immediate, or a jump landing inside a two-slot
/// instruction or outside the program.
pub fn decode(raw: &[RawInsn]) -> Result<Vec<Insn>, DecodeError> {
    // First pass: decoded index of every raw slot (`None` for second halves
    // of two-slot instructions), for jump retargeting.
    let mut slot_to_decoded: Vec<Option<usize>> = Vec::with_capacity(raw.len() + 1);
    {
        let mut i = 0;
        let mut d = 0;
        while i < raw.len() {
            slot_to_decoded.push(Some(d));
            if raw[i].op & 0x07 == CLASS_LD {
                slot_to_decoded.push(None);
                i += 1;
            }
            i += 1;
            d += 1;
        }
        // One-past-the-end is a valid jump target during decoding; the
        // verifier rejects fall-through separately.
        slot_to_decoded.push(Some(d));
    }
    let retarget = |slot: usize, off: i16, out_len: usize| -> Result<i16, DecodeError> {
        let target = slot as i64 + 1 + i64::from(off);
        let decoded = (target >= 0)
            .then(|| slot_to_decoded.get(target as usize).copied().flatten())
            .flatten()
            .ok_or(DecodeError::BadJumpTarget { pc: slot })?;
        i16::try_from(decoded as i64 - out_len as i64 - 1)
            .map_err(|_| DecodeError::BadJumpTarget { pc: slot })
    };

    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        let r = raw[i];
        let class = r.op & 0x07;
        let sub = r.op >> 4;
        let has_src_reg = r.op & 0x08 != 0;
        let insn = match class {
            CLASS_ALU64 | CLASS_ALU32 => {
                let op = AluOp::from_code(sub).ok_or(DecodeError::BadOpcode { pc: i, op: r.op })?;
                Insn::Alu {
                    wide: class == CLASS_ALU64,
                    op,
                    dst: check_reg(r.dst, i)?,
                    src: if has_src_reg {
                        Operand::Reg(check_reg(r.src, i)?)
                    } else {
                        Operand::Imm(r.imm)
                    },
                }
            }
            CLASS_LD => {
                let next = raw
                    .get(i + 1)
                    .ok_or(DecodeError::TruncatedImm64 { pc: i })?;
                let insn = if r.src == 1 {
                    Insn::LdMapRef {
                        dst: check_reg(r.dst, i)?,
                        map_id: r.imm as u32,
                    }
                } else {
                    let lo = r.imm as u32 as u64;
                    let hi = next.imm as u32 as u64;
                    Insn::LdImm64 {
                        dst: check_reg(r.dst, i)?,
                        imm: lo | (hi << 32),
                    }
                };
                i += 1; // Consume the second slot.
                insn
            }
            CLASS_LDX => Insn::Load {
                size: MemSize::from_code(sub).ok_or(DecodeError::BadOpcode { pc: i, op: r.op })?,
                dst: check_reg(r.dst, i)?,
                base: check_reg(r.src, i)?,
                off: r.off,
            },
            CLASS_ST => Insn::Store {
                size: MemSize::from_code(sub).ok_or(DecodeError::BadOpcode { pc: i, op: r.op })?,
                base: check_reg(r.dst, i)?,
                off: r.off,
                src: Operand::Imm(r.imm),
            },
            CLASS_STX => Insn::Store {
                size: MemSize::from_code(sub).ok_or(DecodeError::BadOpcode { pc: i, op: r.op })?,
                base: check_reg(r.dst, i)?,
                off: r.off,
                src: Operand::Reg(check_reg(r.src, i)?),
            },
            CLASS_JMP => match sub {
                0x0 if !has_src_reg => Insn::Ja {
                    off: retarget(i, r.off, out.len())?,
                },
                0xc => Insn::Call {
                    helper: r.imm as u32,
                },
                0xd => Insn::Exit,
                _ => {
                    let op =
                        JmpOp::from_code(sub).ok_or(DecodeError::BadOpcode { pc: i, op: r.op })?;
                    Insn::Jmp {
                        op,
                        dst: check_reg(r.dst, i)?,
                        src: if has_src_reg {
                            Operand::Reg(check_reg(r.src, i)?)
                        } else {
                            Operand::Imm(r.imm)
                        },
                        off: retarget(i, r.off, out.len())?,
                    }
                }
            },
            _ => return Err(DecodeError::BadOpcode { pc: i, op: r.op }),
        };
        out.push(insn);
        i += 1;
    }
    Ok(out)
}

fn check_reg(n: u8, pc: usize) -> Result<Reg, DecodeError> {
    if n < NUM_REGS {
        Ok(Reg(n))
    } else {
        Err(DecodeError::BadRegister { pc, reg: n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(insns: &[Insn]) {
        let raw = encode(insns);
        let back = decode(&raw).expect("decode");
        assert_eq!(insns, back.as_slice());
        // And through bytes.
        let bytes: Vec<[u8; 8]> = raw.iter().map(|r| r.to_bytes()).collect();
        let raw2: Vec<RawInsn> = bytes.into_iter().map(RawInsn::from_bytes).collect();
        assert_eq!(raw, raw2);
    }

    #[test]
    fn alu_roundtrip_all_ops() {
        for wide in [false, true] {
            for op in AluOp::ALL {
                roundtrip(&[
                    Insn::Alu {
                        wide,
                        op,
                        dst: Reg::R3,
                        src: Operand::Reg(Reg::R7),
                    },
                    Insn::Alu {
                        wide,
                        op,
                        dst: Reg::R0,
                        src: Operand::Imm(-42),
                    },
                    Insn::Exit,
                ]);
            }
        }
    }

    #[test]
    fn jmp_roundtrip_all_ops() {
        for op in JmpOp::ALL {
            roundtrip(&[
                Insn::Jmp {
                    op,
                    dst: Reg::R1,
                    src: Operand::Imm(5),
                    off: 1,
                },
                Insn::Jmp {
                    op,
                    dst: Reg::R2,
                    src: Operand::Reg(Reg::R9),
                    off: -1,
                },
                Insn::Exit,
            ]);
        }
    }

    #[test]
    fn mem_roundtrip_all_sizes() {
        for size in [MemSize::B, MemSize::H, MemSize::W, MemSize::Dw] {
            roundtrip(&[
                Insn::Load {
                    size,
                    dst: Reg::R4,
                    base: Reg::R10,
                    off: -16,
                },
                Insn::Store {
                    size,
                    base: Reg::R10,
                    off: -8,
                    src: Operand::Reg(Reg::R4),
                },
                Insn::Store {
                    size,
                    base: Reg::R10,
                    off: -24,
                    src: Operand::Imm(77),
                },
                Insn::Exit,
            ]);
        }
    }

    #[test]
    fn ldimm64_roundtrip_extremes() {
        for imm in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d, 1 << 63] {
            roundtrip(&[Insn::LdImm64 { dst: Reg::R6, imm }, Insn::Exit]);
        }
    }

    #[test]
    fn map_ref_and_call_roundtrip() {
        roundtrip(&[
            Insn::LdMapRef {
                dst: Reg::R1,
                map_id: 3,
            },
            Insn::Call { helper: 12 },
            Insn::Ja { off: 0 },
            Insn::Exit,
        ]);
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let raw = [RawInsn {
            op: 0xff,
            ..Default::default()
        }];
        assert!(matches!(
            decode(&raw),
            Err(DecodeError::BadOpcode { pc: 0, op: 0xff })
        ));
    }

    #[test]
    fn decode_rejects_truncated_ldimm64() {
        let raw = encode(&[Insn::LdImm64 {
            dst: Reg::R0,
            imm: 7,
        }]);
        assert!(matches!(
            decode(&raw[..1]),
            Err(DecodeError::TruncatedImm64 { pc: 0 })
        ));
    }

    #[test]
    fn decode_rejects_bad_register() {
        let mut raw = encode(&[Insn::Alu {
            wide: true,
            op: AluOp::Mov,
            dst: Reg::R0,
            src: Operand::Imm(0),
        }]);
        raw[0].dst = 12;
        assert!(matches!(
            decode(&raw),
            Err(DecodeError::BadRegister { pc: 0, reg: 12 })
        ));
    }

    #[test]
    fn jump_across_ldimm64_roundtrips() {
        // Decoded offset of 2 spans an ldimm64 (3 raw slots); encode must
        // widen the raw offset and decode must narrow it back.
        let insns = [
            Insn::Jmp {
                op: JmpOp::Eq,
                dst: Reg::R1,
                src: Operand::Imm(0),
                off: 2,
            },
            Insn::LdImm64 {
                dst: Reg::R0,
                imm: u64::MAX,
            },
            Insn::Exit,
            Insn::Exit,
        ];
        let raw = encode(&insns);
        assert_eq!(raw.len(), 5);
        assert_eq!(raw[0].off, 3, "raw offset counts slots");
        let back = decode(&raw).expect("decode");
        assert_eq!(&insns[..], back.as_slice());
    }

    #[test]
    fn decode_rejects_jump_into_ldimm64() {
        let insns = [
            Insn::Ja { off: 0 },
            Insn::LdImm64 {
                dst: Reg::R0,
                imm: 1,
            },
            Insn::Exit,
        ];
        let mut raw = encode(&insns);
        raw[0].off = 1; // Lands on the second slot of the ldimm64.
        assert!(matches!(
            decode(&raw),
            Err(DecodeError::BadJumpTarget { pc: 0 })
        ));
    }

    #[test]
    fn jmp_eval_signed_vs_unsigned() {
        let minus_one = -1i64 as u64;
        assert!(JmpOp::Gt.eval(minus_one, 1)); // Unsigned: huge > 1.
        assert!(!JmpOp::Sgt.eval(minus_one, 1)); // Signed: -1 < 1.
        assert!(JmpOp::Slt.eval(minus_one, 0));
        assert!(!JmpOp::Lt.eval(minus_one, 0));
        assert!(JmpOp::Set.eval(0b1010, 0b0010));
        assert!(!JmpOp::Set.eval(0b1010, 0b0101));
    }
}
