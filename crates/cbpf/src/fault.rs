//! Deterministic fault injection for the prepared interpreter.
//!
//! The verifier makes genuine runtime faults unreachable for accepted
//! programs, so exercising Concord's containment path (fail-safe
//! dispatch, breaker trip, quarantine, revert) requires *injecting*
//! faults. The injector is fully deterministic: a [`FaultPlan`] fixes a
//! seed, an optional Nth-invocation trigger and per-helper failure rates,
//! and every replay of the same plan against the same program sequence
//! produces bit-identical fault positions — which is what lets the DES
//! containment tests compare trace hashes across runs.
//!
//! Injection happens inside [`crate::PreparedProgram::run_with_faults`]:
//! the invocation trigger fires before the first instruction, helper-rate
//! faults fire at helper call sites. The plain `run` entry point never
//! consults an injector, so differential tests against the legacy
//! interpreter are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{FaultKind, RunError};

/// A deterministic fault-injection schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the per-helper failure-rate stream.
    pub seed: u64,
    /// Fault the Nth program invocation (1-based); `None` disables the
    /// invocation trigger.
    pub fault_on_invocation: Option<u64>,
    /// After the first triggered invocation, also fault every subsequent
    /// invocation (drives a breaker to its threshold deterministically).
    pub repeat: bool,
    /// Per-mille probability that any individual helper call faults.
    pub helper_fault_per_mille: u16,
    /// The kind of fault injected by the invocation trigger.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// A plan that never injects anything (armed-but-idle baseline).
    pub fn inert(seed: u64) -> Self {
        FaultPlan {
            seed,
            fault_on_invocation: None,
            repeat: false,
            helper_fault_per_mille: 0,
            kind: FaultKind::Trap,
        }
    }

    /// A plan faulting invocation `n` (1-based) with `kind`, once.
    pub fn on_invocation(n: u64, kind: FaultKind) -> Self {
        FaultPlan {
            seed: 1,
            fault_on_invocation: Some(n.max(1)),
            repeat: false,
            helper_fault_per_mille: 0,
            kind,
        }
    }

    /// Like [`FaultPlan::on_invocation`] but every invocation from `n`
    /// onward faults — the breaker-trip driver.
    pub fn from_invocation(n: u64, kind: FaultKind) -> Self {
        FaultPlan {
            repeat: true,
            ..FaultPlan::on_invocation(n, kind)
        }
    }
}

/// Shared, thread-safe injector state evaluating a [`FaultPlan`].
///
/// Counters are atomics so the same injector arms policies on real
/// (multi-threaded) locks and on the single-threaded simulator alike.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    invocations: AtomicU64,
    injected: AtomicU64,
    rng: AtomicU64,
}

// xorshift64* step, applied atomically so concurrent helper calls each
// consume exactly one draw from the stream.
fn xorshift(state: &AtomicU64) -> u64 {
    let mut next = 0;
    state
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            next = x;
            Some(x)
        })
        .ok();
    next.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            invocations: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            // Spread the seed (adjacent seeds must not collide) and keep
            // it nonzero — xorshift has a zero fixed point.
            rng: AtomicU64::new(plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            plan,
        }
    }

    /// The plan being evaluated.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Invocations observed so far.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }

    /// Faults injected so far (both triggers combined).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Called once per program invocation; returns the fault to inject
    /// for this invocation, if the plan schedules one.
    pub fn invocation_fault(&self) -> Option<RunError> {
        let n = self.invocations.fetch_add(1, Ordering::Relaxed) + 1;
        let at = self.plan.fault_on_invocation?;
        let hit = if self.plan.repeat { n >= at } else { n == at };
        if hit {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Some(synthesize(self.plan.kind))
        } else {
            None
        }
    }

    /// Called at a helper call site; returns a fault with probability
    /// `helper_fault_per_mille / 1000` per call.
    pub fn helper_fault(&self, pc: usize, helper: u32) -> Option<RunError> {
        if self.plan.helper_fault_per_mille == 0 {
            return None;
        }
        if xorshift(&self.rng) % 1000 < u64::from(self.plan.helper_fault_per_mille) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Some(RunError::HelperFault {
                pc,
                helper,
                msg: "injected helper fault",
            })
        } else {
            None
        }
    }
}

/// A representative [`RunError`] for each fault kind (injected faults
/// carry the same shape real ones would).
fn synthesize(kind: FaultKind) -> RunError {
    match kind {
        FaultKind::Budget => RunError::BudgetExhausted,
        FaultKind::Trap => RunError::BadAccess { pc: 0, addr: 0 },
        FaultKind::Helper => RunError::HelperFault {
            pc: 0,
            helper: 4,
            msg: "injected helper fault",
        },
        FaultKind::Map => RunError::HelperFault {
            pc: 0,
            helper: 1,
            msg: "injected map fault",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_trigger_fires_exactly_once() {
        let inj = FaultInjector::new(FaultPlan::on_invocation(3, FaultKind::Budget));
        assert!(inj.invocation_fault().is_none());
        assert!(inj.invocation_fault().is_none());
        assert_eq!(inj.invocation_fault(), Some(RunError::BudgetExhausted));
        assert!(inj.invocation_fault().is_none());
        assert_eq!(inj.invocations(), 4);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn repeating_trigger_faults_every_invocation_from_n() {
        let inj = FaultInjector::new(FaultPlan::from_invocation(2, FaultKind::Trap));
        assert!(inj.invocation_fault().is_none());
        for _ in 0..5 {
            assert!(inj.invocation_fault().is_some());
        }
        assert_eq!(inj.injected(), 5);
    }

    #[test]
    fn helper_rate_is_deterministic_per_seed() {
        let draws = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultPlan {
                helper_fault_per_mille: 250,
                ..FaultPlan::inert(seed)
            });
            (0..64).map(|_| inj.helper_fault(0, 4).is_some()).collect()
        };
        assert_eq!(draws(42), draws(42), "same seed, same stream");
        assert_ne!(draws(42), draws(43), "different seeds diverge");
        let hits = draws(42).iter().filter(|h| **h).count();
        assert!(hits > 0 && hits < 64, "rate is neither 0 nor 1");
    }

    #[test]
    fn inert_plan_never_injects() {
        let inj = FaultInjector::new(FaultPlan::inert(7));
        for _ in 0..100 {
            assert!(inj.invocation_fault().is_none());
            assert!(inj.helper_fault(0, 4).is_none());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn fault_kinds_classify_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(synthesize(kind).fault_kind(), kind);
        }
    }
}
