//! The policy verifier: a path-sensitive abstract interpreter.
//!
//! This is the safety core of the Concord workflow (Fig. 1, steps 2–4):
//! a policy is only ever patched into a lock after this pass proves, for
//! every execution path, that it
//!
//! * terminates — backward jumps are rejected, so the CFG is a DAG and
//!   every path is finite (classic-BPF discipline);
//! * never reads an uninitialized register or stack byte;
//! * only dereferences well-typed pointers within their region — the
//!   512-byte stack, the hook context (with per-field permissions from
//!   [`CtxLayout`]), or a map value after an explicit null check;
//! * calls only known helpers with correctly-typed arguments;
//! * returns an initialized scalar.
//!
//! On top of the eBPF-style rules, per-hook [`HookRules`] add Concord's
//! lock-safety restrictions (§4.2 of the paper): tighter instruction
//! budgets for hooks on the critical path, helper allowlists for decision
//! hooks, and a ban on context writes where a hook's contract is
//! decision-only.

use std::collections::HashSet;

use crate::ctx::CtxLayout;
use crate::error::VerifyError;
use crate::helpers::{ArgSpec, HelperId, RetSpec};
use crate::insn::{AluOp, Insn, JmpOp, Operand, Reg, MAX_INSNS, STACK_SIZE};
use crate::program::Program;

/// Maximum number of abstract states explored before giving up.
pub const STATE_BUDGET: usize = 100_000;

const NUM_SLOTS: usize = STACK_SIZE / 8;

/// Abstract type of a register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum RType {
    Uninit,
    /// Scalar; `Some` when the exact value is known.
    Scalar(Option<u64>),
    /// Pointer into the stack region; `off` is absolute in `[0, 512]`.
    PtrStack {
        off: i64,
    },
    /// Pointer into the context; `off` relative to context start.
    PtrCtx {
        off: i64,
    },
    /// Pointer into a map value.
    PtrMapVal {
        map: u32,
        off: i64,
    },
    /// Result of `map_lookup_elem`: map value pointer or null.
    NullOrMapVal {
        map: u32,
    },
    /// A map reference from `ldmap`.
    MapRef {
        map: u32,
    },
}

impl RType {
    fn is_pointer(self) -> bool {
        matches!(
            self,
            RType::PtrStack { .. }
                | RType::PtrCtx { .. }
                | RType::PtrMapVal { .. }
                | RType::NullOrMapVal { .. }
                | RType::MapRef { .. }
        )
    }
}

/// Abstract state of one 8-byte stack slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Slot {
    /// Bitmask of initialized bytes holding scalar data.
    Bytes(u8),
    /// A full 8-byte register spill (possibly a pointer).
    Spill(RType),
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct VState {
    regs: [RType; 11],
    stack: [Slot; NUM_SLOTS],
}

impl VState {
    fn entry(has_ctx: bool) -> VState {
        let mut regs = [RType::Uninit; 11];
        if has_ctx {
            regs[1] = RType::PtrCtx { off: 0 };
        }
        regs[10] = RType::PtrStack {
            off: STACK_SIZE as i64,
        };
        VState {
            regs,
            stack: [Slot::Bytes(0); NUM_SLOTS],
        }
    }

    fn read(&self, pc: usize, r: Reg) -> Result<RType, VerifyError> {
        let t = self.regs[r.0 as usize];
        if t == RType::Uninit {
            Err(VerifyError::UninitRegister { pc, reg: r.0 })
        } else {
            Ok(t)
        }
    }

    fn write(&mut self, pc: usize, r: Reg, t: RType) -> Result<(), VerifyError> {
        if r == Reg::R10 {
            return Err(VerifyError::FramePointerWrite { pc });
        }
        self.regs[r.0 as usize] = t;
        Ok(())
    }

    /// Checks that stack bytes `[off, off + len)` are initialized.
    fn stack_readable(&self, pc: usize, off: i64, len: usize) -> Result<(), VerifyError> {
        if off < 0 || off as usize + len > STACK_SIZE {
            return Err(VerifyError::OutOfBounds { pc, off, size: len });
        }
        for b in off as usize..off as usize + len {
            let ok = match self.stack[b / 8] {
                Slot::Bytes(mask) => mask & (1 << (b % 8)) != 0,
                Slot::Spill(_) => true,
            };
            if !ok {
                return Err(VerifyError::UninitStack { pc, off: b as i64 });
            }
        }
        Ok(())
    }

    /// Marks stack bytes `[off, off + len)` initialized with scalar data,
    /// degrading any overlapped spill to opaque bytes.
    fn stack_write_bytes(&mut self, pc: usize, off: i64, len: usize) -> Result<(), VerifyError> {
        if off < 0 || off as usize + len > STACK_SIZE {
            return Err(VerifyError::OutOfBounds { pc, off, size: len });
        }
        for b in off as usize..off as usize + len {
            let slot = &mut self.stack[b / 8];
            match slot {
                Slot::Bytes(mask) => *mask |= 1 << (b % 8),
                Slot::Spill(_) => {
                    // A partial overwrite of a spill leaves the remaining
                    // bytes initialized but untyped.
                    *slot = Slot::Bytes(0xff);
                    if let Slot::Bytes(mask) = slot {
                        *mask |= 1 << (b % 8);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Hook-specific safety rules layered on top of the core checks.
///
/// Concord instantiates these per Table 1 hook; see the crate-level docs.
#[derive(Clone, Debug, Default)]
pub struct HookRules {
    /// Tighter instruction-count limit (e.g. for hooks on the critical
    /// path), checked against the static program length.
    pub max_insns: Option<usize>,
    /// When set, only these helpers may be called.
    pub allowed_helpers: Option<Vec<HelperId>>,
    /// When false, any context write is rejected even if the layout field
    /// is read-write.
    pub allow_ctx_writes: bool,
}

impl HookRules {
    /// Rules that allow everything (pure eBPF-style verification).
    pub fn permissive() -> Self {
        HookRules {
            max_insns: None,
            allowed_helpers: None,
            allow_ctx_writes: true,
        }
    }
}

/// Verifies `prog` against a context layout with permissive hook rules.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found on any path.
pub fn verify(prog: &Program, layout: &CtxLayout) -> Result<(), VerifyError> {
    verify_with_rules(prog, layout, &HookRules::permissive())
}

/// Verifies `prog` against a context layout and hook rules.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found on any path.
pub fn verify_with_rules(
    prog: &Program,
    layout: &CtxLayout,
    rules: &HookRules,
) -> Result<(), VerifyError> {
    let insns = prog.insns();
    let len = insns.len();
    if len == 0 || len > MAX_INSNS {
        return Err(VerifyError::BadProgramSize { len });
    }
    if let Some(max) = rules.max_insns {
        if len > max {
            return Err(VerifyError::HookRule {
                rule: "program exceeds the hook's instruction limit",
            });
        }
    }

    // Static CFG checks: every jump lands in-bounds and forward.
    for (pc, insn) in insns.iter().enumerate() {
        let off = match insn {
            Insn::Ja { off } => Some(*off),
            Insn::Jmp { off, .. } => Some(*off),
            _ => None,
        };
        if let Some(off) = off {
            let t = pc as i64 + 1 + i64::from(off);
            if t < 0 || t >= len as i64 {
                return Err(VerifyError::JumpOutOfBounds { pc });
            }
            if t <= pc as i64 {
                return Err(VerifyError::BackEdge { pc });
            }
        }
    }

    let mut worklist: Vec<(usize, VState)> = vec![(0, VState::entry(layout.size() > 0))];
    let mut visited: HashSet<(usize, VState)> = HashSet::new();
    let mut states = 0usize;

    while let Some((pc, state)) = worklist.pop() {
        if !visited.insert((pc, state.clone())) {
            continue;
        }
        states += 1;
        if states > STATE_BUDGET {
            return Err(VerifyError::TooComplex { states });
        }
        if pc >= len {
            return Err(VerifyError::FallOffEnd);
        }
        step(
            prog,
            layout,
            rules,
            pc,
            state,
            &mut |next_pc, next_state| worklist.push((next_pc, next_state)),
        )?;
    }
    Ok(())
}

/// Executes one instruction abstractly, pushing successor states.
fn step(
    prog: &Program,
    layout: &CtxLayout,
    rules: &HookRules,
    pc: usize,
    mut st: VState,
    push: &mut dyn FnMut(usize, VState),
) -> Result<(), VerifyError> {
    match prog.insns()[pc] {
        Insn::Alu { wide, op, dst, src } => {
            let res = abstract_alu(pc, &st, wide, op, dst, src)?;
            st.write(pc, dst, res)?;
            push(pc + 1, st);
        }
        Insn::LdImm64 { dst, imm } => {
            st.write(pc, dst, RType::Scalar(Some(imm)))?;
            push(pc + 1, st);
        }
        Insn::LdMapRef { dst, map_id } => {
            if prog.map(map_id).is_none() {
                return Err(VerifyError::UnknownMap { pc, map_id });
            }
            st.write(pc, dst, RType::MapRef { map: map_id })?;
            push(pc + 1, st);
        }
        Insn::Load {
            size,
            dst,
            base,
            off,
        } => {
            let bt = st.read(pc, base)?;
            let n = size.bytes();
            let loaded = match bt {
                RType::PtrStack { off: base_off } => {
                    let a = base_off + i64::from(off);
                    check_align(pc, a, n)?;
                    // An aligned 8-byte load of a spill restores its type.
                    if n == 8 && a >= 0 && (a as usize) < STACK_SIZE {
                        if let Slot::Spill(t) = st.stack[a as usize / 8] {
                            st.write(pc, dst, t)?;
                            push(pc + 1, st);
                            return Ok(());
                        }
                    }
                    st.stack_readable(pc, a, n)?;
                    RType::Scalar(None)
                }
                RType::PtrCtx { off: base_off } => {
                    let a = base_off + i64::from(off);
                    layout.check_access(pc, a, n, false)?;
                    RType::Scalar(None)
                }
                RType::PtrMapVal { map, off: base_off } => {
                    let a = base_off + i64::from(off);
                    let vsize = prog.map(map).map(|m| m.def().value_size).unwrap_or(0);
                    if a < 0 || a as usize + n > vsize {
                        return Err(VerifyError::OutOfBounds {
                            pc,
                            off: a,
                            size: n,
                        });
                    }
                    check_align(pc, a, n)?;
                    RType::Scalar(None)
                }
                RType::NullOrMapVal { .. } => {
                    return Err(VerifyError::PossiblyNullDeref { pc, reg: base.0 })
                }
                _ => return Err(VerifyError::NotAPointer { pc, reg: base.0 }),
            };
            st.write(pc, dst, loaded)?;
            push(pc + 1, st);
        }
        Insn::Store {
            size,
            base,
            off,
            src,
        } => {
            let bt = st.read(pc, base)?;
            let n = size.bytes();
            let val_t = match src {
                Operand::Reg(r) => st.read(pc, r)?,
                Operand::Imm(i) => RType::Scalar(Some(i as i64 as u64)),
            };
            match bt {
                RType::PtrStack { off: base_off } => {
                    let a = base_off + i64::from(off);
                    check_align(pc, a, n)?;
                    if val_t.is_pointer() {
                        // Pointer spills must be full slots.
                        if n != 8 || a % 8 != 0 {
                            return Err(VerifyError::BadPointerArithmetic { pc });
                        }
                        if a < 0 || a as usize + 8 > STACK_SIZE {
                            return Err(VerifyError::OutOfBounds {
                                pc,
                                off: a,
                                size: n,
                            });
                        }
                        st.stack[a as usize / 8] = Slot::Spill(val_t);
                    } else {
                        st.stack_write_bytes(pc, a, n)?;
                    }
                }
                RType::PtrCtx { off: base_off } => {
                    if !rules.allow_ctx_writes {
                        return Err(VerifyError::HookRule {
                            rule: "this hook forbids context writes",
                        });
                    }
                    if val_t.is_pointer() {
                        return Err(VerifyError::BadPointerArithmetic { pc });
                    }
                    let a = base_off + i64::from(off);
                    layout.check_access(pc, a, n, true)?;
                }
                RType::PtrMapVal { map, off: base_off } => {
                    if val_t.is_pointer() {
                        return Err(VerifyError::BadPointerArithmetic { pc });
                    }
                    let a = base_off + i64::from(off);
                    let vsize = prog.map(map).map(|m| m.def().value_size).unwrap_or(0);
                    if a < 0 || a as usize + n > vsize {
                        return Err(VerifyError::OutOfBounds {
                            pc,
                            off: a,
                            size: n,
                        });
                    }
                    check_align(pc, a, n)?;
                }
                RType::NullOrMapVal { .. } => {
                    return Err(VerifyError::PossiblyNullDeref { pc, reg: base.0 })
                }
                _ => return Err(VerifyError::NotAPointer { pc, reg: base.0 }),
            }
            push(pc + 1, st);
        }
        Insn::Ja { off } => {
            push((pc as i64 + 1 + i64::from(off)) as usize, st);
        }
        Insn::Jmp { op, dst, src, off } => {
            branch(pc, &st, op, dst, src, off, push)?;
        }
        Insn::Call { helper } => {
            call_helper(prog, rules, pc, &mut st, helper)?;
            push(pc + 1, st);
        }
        Insn::Exit => {
            match st.regs[0] {
                RType::Scalar(_) => {}
                _ => return Err(VerifyError::BadReturnValue { pc }),
            }
            // Path ends; nothing pushed.
        }
    }
    Ok(())
}

fn check_align(pc: usize, off: i64, n: usize) -> Result<(), VerifyError> {
    if off < 0 {
        return Err(VerifyError::OutOfBounds { pc, off, size: n });
    }
    if off % n as i64 != 0 {
        Err(VerifyError::Unaligned { pc, off })
    } else {
        Ok(())
    }
}

fn abstract_alu(
    pc: usize,
    st: &VState,
    wide: bool,
    op: AluOp,
    dst: Reg,
    src: Operand,
) -> Result<RType, VerifyError> {
    let src_t = match src {
        Operand::Reg(r) => st.read(pc, r)?,
        Operand::Imm(i) => RType::Scalar(Some(if wide {
            i as i64 as u64
        } else {
            u64::from(i as u32)
        })),
    };

    if op == AluOp::Mov {
        if !wide {
            // A 32-bit move truncates; a truncated pointer is a scalar.
            return match src_t {
                RType::Scalar(Some(v)) => Ok(RType::Scalar(Some(u64::from(v as u32)))),
                RType::Scalar(None) => Ok(RType::Scalar(None)),
                _ => Err(VerifyError::BadPointerArithmetic { pc }),
            };
        }
        return Ok(src_t);
    }

    let dst_t = st.read(pc, dst)?;

    // Pointer arithmetic: only wide add/sub of a known-constant scalar.
    if dst_t.is_pointer() {
        if !wide || !matches!(op, AluOp::Add | AluOp::Sub) {
            return Err(VerifyError::BadPointerArithmetic { pc });
        }
        let k = match src_t {
            RType::Scalar(Some(v)) => v as i64,
            _ => return Err(VerifyError::BadPointerArithmetic { pc }),
        };
        let delta = if op == AluOp::Add { k } else { -k };
        return match dst_t {
            RType::PtrStack { off } => Ok(RType::PtrStack { off: off + delta }),
            RType::PtrCtx { off } => Ok(RType::PtrCtx { off: off + delta }),
            RType::PtrMapVal { map, off } => Ok(RType::PtrMapVal {
                map,
                off: off + delta,
            }),
            // Offsetting a maybe-null or map-ref pointer is meaningless.
            _ => Err(VerifyError::BadPointerArithmetic { pc }),
        };
    }
    if src_t.is_pointer() {
        return Err(VerifyError::BadPointerArithmetic { pc });
    }

    // Scalar ⊗ scalar.
    let (dk, sk) = match (dst_t, src_t) {
        (RType::Scalar(d), RType::Scalar(s)) => (d, s),
        _ => unreachable!("pointers handled above"),
    };
    if matches!(op, AluOp::Div | AluOp::Mod) {
        if let Some(s) = sk {
            let zero = if wide { s == 0 } else { s as u32 == 0 };
            if zero {
                return Err(VerifyError::DivByZero { pc });
            }
        }
    }
    let known = match (dk, sk) {
        (Some(a), Some(b)) => Some(if wide {
            crate::interp::fold64(op, a, b)
        } else {
            u64::from(crate::interp::fold32(op, a as u32, b as u32))
        }),
        (Some(a), None) if op == AluOp::Neg => Some(if wide {
            crate::interp::fold64(op, a, 0)
        } else {
            u64::from(crate::interp::fold32(op, a as u32, 0))
        }),
        _ => None,
    };
    Ok(RType::Scalar(known))
}

#[allow(clippy::too_many_arguments)]
fn branch(
    pc: usize,
    st: &VState,
    op: JmpOp,
    dst: Reg,
    src: Operand,
    off: i16,
    push: &mut dyn FnMut(usize, VState),
) -> Result<(), VerifyError> {
    let taken_pc = (pc as i64 + 1 + i64::from(off)) as usize;
    let fall_pc = pc + 1;
    let dst_t = st.read(pc, dst)?;
    let src_t = match src {
        Operand::Reg(r) => st.read(pc, r)?,
        Operand::Imm(i) => RType::Scalar(Some(i as i64 as u64)),
    };

    match (dst_t, src_t) {
        // Null check of a lookup result: the only pointer comparison we
        // accept, and the one that refines the type.
        (RType::NullOrMapVal { map }, RType::Scalar(Some(0)))
            if matches!(op, JmpOp::Eq | JmpOp::Ne) =>
        {
            let mut null_st = st.clone();
            null_st.regs[dst.0 as usize] = RType::Scalar(Some(0));
            let mut ptr_st = st.clone();
            ptr_st.regs[dst.0 as usize] = RType::PtrMapVal { map, off: 0 };
            if op == JmpOp::Eq {
                push(taken_pc, null_st);
                push(fall_pc, ptr_st);
            } else {
                push(taken_pc, ptr_st);
                push(fall_pc, null_st);
            }
            Ok(())
        }
        (RType::Scalar(dk), RType::Scalar(sk)) => {
            if let (Some(a), Some(b)) = (dk, sk) {
                // Constant fold: only one successor is feasible.
                if op.eval(a, b) {
                    push(taken_pc, st.clone());
                } else {
                    push(fall_pc, st.clone());
                }
                return Ok(());
            }
            // Equality against a constant pins the value on one edge.
            let mut taken = st.clone();
            let mut fall = st.clone();
            if let (JmpOp::Eq, None, Some(b)) = (op, dk, sk) {
                taken.regs[dst.0 as usize] = RType::Scalar(Some(b));
            }
            if let (JmpOp::Ne, None, Some(b)) = (op, dk, sk) {
                fall.regs[dst.0 as usize] = RType::Scalar(Some(b));
            }
            push(taken_pc, taken);
            push(fall_pc, fall);
            Ok(())
        }
        _ => Err(VerifyError::BadPointerArithmetic { pc }),
    }
}

fn call_helper(
    prog: &Program,
    rules: &HookRules,
    pc: usize,
    st: &mut VState,
    helper: u32,
) -> Result<(), VerifyError> {
    let id = HelperId::from_u32(helper).ok_or(VerifyError::UnknownHelper { pc, helper })?;
    if let Some(allowed) = &rules.allowed_helpers {
        if !allowed.contains(&id) {
            return Err(VerifyError::HookRule {
                rule: "helper not allowed in this hook",
            });
        }
    }
    let sig = id.sig();
    let mut map_ctx: Option<u32> = None;
    for (i, spec) in sig.args.iter().enumerate() {
        let reg = Reg(1 + i as u8);
        let t = st.read(pc, reg).map_err(|_| VerifyError::BadHelperArg {
            pc,
            helper,
            arg: (i + 1) as u8,
            expected: "an initialized value",
        })?;
        match spec {
            ArgSpec::Scalar => {
                if !matches!(t, RType::Scalar(_)) {
                    return Err(VerifyError::BadHelperArg {
                        pc,
                        helper,
                        arg: (i + 1) as u8,
                        expected: "a scalar",
                    });
                }
            }
            ArgSpec::MapRef => match t {
                RType::MapRef { map } => {
                    if prog.map(map).is_none() {
                        return Err(VerifyError::UnknownMap { pc, map_id: map });
                    }
                    map_ctx = Some(map);
                }
                _ => {
                    return Err(VerifyError::BadHelperArg {
                        pc,
                        helper,
                        arg: (i + 1) as u8,
                        expected: "a map reference",
                    })
                }
            },
            ArgSpec::MapKeyPtr | ArgSpec::MapValuePtr => {
                let map = map_ctx.ok_or(VerifyError::BadHelperArg {
                    pc,
                    helper,
                    arg: (i + 1) as u8,
                    expected: "a map argument before this pointer",
                })?;
                let need = match spec {
                    ArgSpec::MapKeyPtr => prog.map(map).unwrap().def().key_size,
                    _ => prog.map(map).unwrap().def().value_size,
                };
                match t {
                    RType::PtrStack { off } => st.stack_readable(pc, off, need)?,
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            helper,
                            arg: (i + 1) as u8,
                            expected: "a stack pointer",
                        })
                    }
                }
            }
            ArgSpec::StackBufWithLen => {
                let len_reg = Reg(1 + i as u8 + 1);
                let len = match st.read(pc, len_reg) {
                    Ok(RType::Scalar(Some(v))) => v,
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            helper,
                            arg: (i + 2) as u8,
                            expected: "a known-constant length",
                        })
                    }
                };
                if len as usize > STACK_SIZE {
                    return Err(VerifyError::BadHelperArg {
                        pc,
                        helper,
                        arg: (i + 2) as u8,
                        expected: "a length within the stack",
                    });
                }
                // `trace_emit` payloads are bounded by the trace record's
                // inline capacity, and an empty emit is meaningless —
                // reject both ends statically so the runtime check can
                // never fire on a verified program.
                if id == HelperId::TraceEmit
                    && !(1..=crate::helpers::TRACE_EMIT_MAX_PAYLOAD as u64).contains(&len)
                {
                    return Err(VerifyError::BadHelperArg {
                        pc,
                        helper,
                        arg: (i + 2) as u8,
                        expected: "a trace_emit payload length in 1..=16",
                    });
                }
                match t {
                    RType::PtrStack { off } => st.stack_readable(pc, off, len as usize)?,
                    _ => {
                        return Err(VerifyError::BadHelperArg {
                            pc,
                            helper,
                            arg: (i + 1) as u8,
                            expected: "a stack pointer",
                        })
                    }
                }
            }
        }
    }
    // Clobber caller-saved registers; set the return type.
    for r in 1..=5 {
        st.regs[r] = RType::Uninit;
    }
    st.regs[0] = match sig.ret {
        RetSpec::Scalar => RType::Scalar(None),
        RetSpec::MapValueOrNull => RType::NullOrMapVal {
            map: map_ctx.expect("map helpers always take a map first"),
        },
    };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FieldAccess;
    use crate::insn::MemSize;
    use crate::map::{Map, MapDef, MapKind};
    use crate::program::ProgramBuilder;
    use std::sync::Arc;

    fn ok(prog: &Program) {
        verify(prog, &CtxLayout::empty()).expect("should verify");
    }

    fn rejects(prog: &Program) -> VerifyError {
        verify(prog, &CtxLayout::empty()).expect_err("should reject")
    }

    fn trivial() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn accepts_trivial_program() {
        ok(&trivial());
    }

    #[test]
    fn rejects_empty_program() {
        let p = Program::new("e", vec![], vec![]);
        assert!(matches!(
            rejects(&p),
            VerifyError::BadProgramSize { len: 0 }
        ));
    }

    #[test]
    fn rejects_back_edge() {
        let p = Program::new(
            "loop",
            vec![
                Insn::Alu {
                    wide: true,
                    op: AluOp::Mov,
                    dst: Reg::R0,
                    src: Operand::Imm(0),
                },
                Insn::Ja { off: -2 },
                Insn::Exit,
            ],
            vec![],
        );
        assert!(matches!(rejects(&p), VerifyError::BackEdge { pc: 1 }));
    }

    #[test]
    fn rejects_jump_out_of_bounds() {
        let p = Program::new("j", vec![Insn::Ja { off: 5 }, Insn::Exit], vec![]);
        assert!(matches!(
            rejects(&p),
            VerifyError::JumpOutOfBounds { pc: 0 }
        ));
    }

    #[test]
    fn rejects_fall_off_end() {
        let p = Program::new(
            "f",
            vec![Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(0),
            }],
            vec![],
        );
        assert!(matches!(rejects(&p), VerifyError::FallOffEnd));
    }

    #[test]
    fn rejects_uninit_register() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R0, Reg::R5);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::UninitRegister { reg: 5, .. }
        ));
    }

    #[test]
    fn rejects_uninit_return() {
        let p = Program::new("r", vec![Insn::Exit], vec![]);
        assert!(matches!(rejects(&p), VerifyError::BadReturnValue { .. }));
    }

    #[test]
    fn rejects_frame_pointer_write() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R10, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::FramePointerWrite { .. }
        ));
    }

    #[test]
    fn rejects_uninit_stack_read() {
        let mut b = ProgramBuilder::new("t");
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -8);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::UninitStack { .. }
        ));
    }

    #[test]
    fn rejects_stack_out_of_bounds() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 1);
        b.store(MemSize::Dw, Reg::R10, -520, Reg::R1);
        b.mov_imm(Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn rejects_unaligned_stack_access() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 1);
        b.store(MemSize::Dw, Reg::R10, -12, Reg::R1);
        b.mov_imm(Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::Unaligned { .. }
        ));
    }

    #[test]
    fn accepts_stack_roundtrip() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 7);
        b.store(MemSize::Dw, Reg::R10, -8, Reg::R1);
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -8);
        b.exit();
        ok(&b.build().unwrap());
    }

    #[test]
    fn pointer_spill_and_fill_preserves_type() {
        let layout = CtxLayout::builder()
            .field("x", 8, FieldAccess::ReadOnly)
            .build();
        let mut b = ProgramBuilder::new("t");
        // Spill the ctx pointer, fill it back, then load through it.
        b.store(MemSize::Dw, Reg::R10, -8, Reg::R1);
        b.load(MemSize::Dw, Reg::R2, Reg::R10, -8);
        b.load(MemSize::Dw, Reg::R0, Reg::R2, 0);
        b.exit();
        verify(&b.build().unwrap(), &layout).expect("spill/fill should verify");
    }

    #[test]
    fn rejects_partial_pointer_spill() {
        let mut b = ProgramBuilder::new("t");
        b.store(MemSize::W, Reg::R10, -4, Reg::R10); // 4-byte pointer store.
        b.mov_imm(Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::BadPointerArithmetic { .. }
        ));
    }

    #[test]
    fn ctx_rules_enforced() {
        let layout = CtxLayout::builder()
            .field("ro", 8, FieldAccess::ReadOnly)
            .field("rw", 8, FieldAccess::ReadWrite)
            .build();
        // Read-only field write rejected.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.store(MemSize::Dw, Reg::R1, 0, Reg::R0);
        b.exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &layout),
            Err(VerifyError::ReadOnlyCtxField { field: "ro", .. })
        ));
        // Read-write field write accepted.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.store(MemSize::Dw, Reg::R1, 8, Reg::R0);
        b.exit();
        verify(&b.build().unwrap(), &layout).unwrap();
        // Unknown offset rejected.
        let mut b = ProgramBuilder::new("t");
        b.load(MemSize::W, Reg::R0, Reg::R1, 4);
        b.exit();
        assert!(matches!(
            verify(&b.build().unwrap(), &layout),
            Err(VerifyError::BadCtxAccess { .. })
        ));
    }

    #[test]
    fn hook_rules_ctx_write_ban() {
        let layout = CtxLayout::builder()
            .field("rw", 8, FieldAccess::ReadWrite)
            .build();
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.store(MemSize::Dw, Reg::R1, 0, Reg::R0);
        b.exit();
        let rules = HookRules {
            allow_ctx_writes: false,
            ..HookRules::permissive()
        };
        assert!(matches!(
            verify_with_rules(&b.build().unwrap(), &layout, &rules),
            Err(VerifyError::HookRule { .. })
        ));
    }

    #[test]
    fn hook_rules_helper_allowlist() {
        let mut b = ProgramBuilder::new("t");
        b.call(HelperId::KtimeNs);
        b.exit();
        let rules = HookRules {
            allowed_helpers: Some(vec![HelperId::CpuId]),
            ..HookRules::permissive()
        };
        assert!(matches!(
            verify_with_rules(&b.build().unwrap(), &CtxLayout::empty(), &rules),
            Err(VerifyError::HookRule { .. })
        ));
    }

    #[test]
    fn hook_rules_insn_limit() {
        let rules = HookRules {
            max_insns: Some(1),
            ..HookRules::permissive()
        };
        assert!(matches!(
            verify_with_rules(&trivial(), &CtxLayout::empty(), &rules),
            Err(VerifyError::HookRule { .. })
        ));
    }

    #[test]
    fn rejects_div_by_constant_zero() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 5);
        b.alu_imm(AluOp::Div, Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::DivByZero { .. }
        ));
        // Unknown divisor is fine (runtime yields 0).
        let mut b = ProgramBuilder::new("t");
        b.call(HelperId::CpuId);
        b.mov(Reg::R1, Reg::R0);
        b.mov_imm(Reg::R0, 5);
        b.alu(AluOp::Div, Reg::R0, Reg::R1);
        b.exit();
        ok(&b.build().unwrap());
    }

    #[test]
    fn map_lookup_requires_null_check() {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 1,
        }));
        // Without a null check: rejected.
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(Arc::clone(&map));
        b.ldmap(Reg::R1, mid);
        b.store_imm(MemSize::W, Reg::R10, -4, 0);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4);
        b.call(HelperId::MapLookup);
        b.load(MemSize::Dw, Reg::R0, Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::PossiblyNullDeref { .. }
        ));

        // With a null check: accepted.
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(map);
        b.ldmap(Reg::R1, mid);
        b.store_imm(MemSize::W, Reg::R10, -4, 0);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4);
        b.call(HelperId::MapLookup);
        b.jmp_imm(JmpOp::Ne, Reg::R0, 0, "hit");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        b.label("hit");
        b.load(MemSize::Dw, Reg::R0, Reg::R0, 0);
        b.exit();
        ok(&b.build().unwrap());
    }

    #[test]
    fn map_value_bounds_checked() {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 1,
        }));
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(map);
        b.ldmap(Reg::R1, mid);
        b.store_imm(MemSize::W, Reg::R10, -4, 0);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4);
        b.call(HelperId::MapLookup);
        b.jmp_imm(JmpOp::Ne, Reg::R0, 0, "hit");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        b.label("hit");
        b.load(MemSize::Dw, Reg::R0, Reg::R0, 8); // One past the end.
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn helper_arg_type_checked() {
        // map_lookup with a scalar instead of a map.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 0);
        b.mov(Reg::R2, Reg::R10);
        b.call(HelperId::MapLookup);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::BadHelperArg { arg: 1, .. }
        ));
    }

    #[test]
    fn helper_key_must_be_initialized() {
        let map = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 1,
        }));
        let mut b = ProgramBuilder::new("t");
        let mid = b.register_map(map);
        b.ldmap(Reg::R1, mid);
        b.mov(Reg::R2, Reg::R10);
        b.alu_imm(AluOp::Add, Reg::R2, -4); // Key bytes never written.
        b.call(HelperId::MapLookup);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::UninitStack { .. }
        ));
    }

    #[test]
    fn unknown_helper_rejected() {
        let p = Program::new("u", vec![Insn::Call { helper: 999 }, Insn::Exit], vec![]);
        assert!(matches!(
            rejects(&p),
            VerifyError::UnknownHelper { helper: 999, .. }
        ));
    }

    #[test]
    fn unknown_map_rejected() {
        let p = Program::new(
            "u",
            vec![
                Insn::LdMapRef {
                    dst: Reg::R1,
                    map_id: 3,
                },
                Insn::Alu {
                    wide: true,
                    op: AluOp::Mov,
                    dst: Reg::R0,
                    src: Operand::Imm(0),
                },
                Insn::Exit,
            ],
            vec![],
        );
        assert!(matches!(
            rejects(&p),
            VerifyError::UnknownMap { map_id: 3, .. }
        ));
    }

    #[test]
    fn clobbered_registers_uninit_after_call() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R3, 1);
        b.call(HelperId::CpuId);
        b.mov(Reg::R0, Reg::R3);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::UninitRegister { reg: 3, .. }
        ));
        // Callee-saved survives.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R6, 1);
        b.call(HelperId::CpuId);
        b.mov(Reg::R0, Reg::R6);
        b.exit();
        ok(&b.build().unwrap());
    }

    #[test]
    fn both_branches_explored() {
        // The bad store only happens on one branch; it must still be found.
        let mut b = ProgramBuilder::new("t");
        b.call(HelperId::CpuId);
        b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "skip");
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -8); // Uninit read.
        b.label("skip");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::UninitStack { .. }
        ));
    }

    #[test]
    fn constant_branches_fold() {
        // `if 1 == 1 goto` — the dead edge contains invalid code that must
        // NOT be reported because it is unreachable.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R1, 1);
        b.jmp_imm(JmpOp::Eq, Reg::R1, 1, "good");
        b.load(MemSize::Dw, Reg::R0, Reg::R10, -8); // Dead.
        b.label("good");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        ok(&b.build().unwrap());
    }

    #[test]
    fn rejects_pointer_multiplication() {
        let mut b = ProgramBuilder::new("t");
        b.mov(Reg::R1, Reg::R10);
        b.alu_imm(AluOp::Mul, Reg::R1, 2);
        b.mov_imm(Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::BadPointerArithmetic { .. }
        ));
    }

    #[test]
    fn rejects_variable_pointer_offset() {
        let mut b = ProgramBuilder::new("t");
        b.call(HelperId::CpuId);
        b.mov(Reg::R1, Reg::R10);
        b.alu(AluOp::Add, Reg::R1, Reg::R0); // Unknown offset.
        b.mov_imm(Reg::R0, 0);
        b.exit();
        assert!(matches!(
            rejects(&b.build().unwrap()),
            VerifyError::BadPointerArithmetic { .. }
        ));
    }

    #[test]
    fn accepts_numa_policy_shape() {
        // The shape of Concord's NUMA-aware cmp_node policy: compare two
        // ctx fields, return 1 when equal.
        let layout = CtxLayout::builder()
            .field("lock_id", 8, FieldAccess::ReadOnly)
            .field("shuffler_numa", 4, FieldAccess::ReadOnly)
            .field("curr_numa", 4, FieldAccess::ReadOnly)
            .build();
        let mut b = ProgramBuilder::new("numa");
        b.load(MemSize::W, Reg::R2, Reg::R1, 8);
        b.load(MemSize::W, Reg::R3, Reg::R1, 12);
        b.mov_imm(Reg::R0, 0);
        b.jmp(JmpOp::Ne, Reg::R2, Reg::R3, "out");
        b.mov_imm(Reg::R0, 1);
        b.label("out");
        b.exit();
        verify(&b.build().unwrap(), &layout).unwrap();
    }
}
