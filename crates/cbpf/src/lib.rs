//! An eBPF-analog policy engine: ISA, assembler, verifier, interpreter,
//! maps, helpers and an object store.
//!
//! The Concord framework of *Contextual Concurrency Control* (HotOS '21)
//! lets a privileged userspace process express lock policies as eBPF
//! programs that the kernel verifies before patching them into lock slow
//! paths. This crate reproduces that machinery:
//!
//! * [`insn`] — a 64-bit register ISA closely modeled on eBPF (eleven
//!   registers, 512-byte stack, ALU32/64, sized loads/stores, conditional
//!   jumps, helper calls), with a binary encoding and round-trip decoding;
//! * [`asm`] — a textual assembler/disassembler so policies can be written
//!   the way the paper's users would write restricted C;
//! * [`verifier`] — a path-sensitive abstract interpreter enforcing the
//!   safety rules the paper leans on (§4.2): bounded programs (no back
//!   edges), typed registers, in-bounds and initialized memory access,
//!   helper signature checking, per-field context access control so a
//!   policy can never corrupt lock state it was not granted;
//! * [`interp`] — the runtime, with an instruction budget as a second
//!   guard and eBPF division semantics;
//! * [`map`] — array / hash / per-CPU-array maps shared between userspace
//!   and policies;
//! * [`helpers`] — the helper registry (`cpu_id`, `numa_id`, `ktime_ns`,
//!   map operations, `trace_printk`, …) behind the [`PolicyEnv`] trait so
//!   the same policy runs against real hardware or the `ksim` machine;
//! * [`store`] — an in-memory analog of the BPF filesystem where verified
//!   programs are pinned (Fig. 1 step 5).
//!
//! # Examples
//!
//! Assemble, verify and run a trivial policy that returns the CPU id:
//!
//! ```
//! use cbpf::asm::assemble;
//! use cbpf::ctx::CtxLayout;
//! use cbpf::helpers::FixedEnv;
//! use cbpf::interp::run_program;
//! use cbpf::verifier::verify;
//!
//! let prog = assemble(
//!     r#"
//!     call cpu_id
//!     exit
//!     "#,
//! )
//! .unwrap();
//! let layout = CtxLayout::empty();
//! verify(&prog, &layout).unwrap();
//! let env = FixedEnv::new().cpu(7);
//! let ret = run_program(&prog, &mut [], &layout, &env).unwrap();
//! assert_eq!(ret, 7);
//! ```

pub mod asm;
pub mod ctx;
pub mod dsl;
pub mod error;
pub mod fault;
pub mod helpers;
pub mod insn;
pub mod interp;
pub mod jit;
pub mod map;
pub mod opt;
pub mod prepare;
pub mod program;
pub mod store;
pub mod verifier;
pub mod wire;

pub use ctx::{CtxLayout, FieldAccess, FieldDef};
pub use dsl::compile as compile_dsl;
pub use error::{AsmError, FaultKind, RunError, VerifyError};
pub use fault::{FaultInjector, FaultPlan};
pub use helpers::{FixedEnv, HelperId, PolicyEnv};
pub use error::MapError;
pub use insn::{AluOp, Insn, JmpOp, MemSize, Operand, Reg};
pub use interp::run_program;
pub use jit::JitProgram;
pub use map::{Map, MapDef, MapKind, MAX_MAP_ENTRIES};
pub use opt::OptConfig;
pub use prepare::{
    default_jit_threshold, ExecTier, JitMode, PreparedProgram, DEFAULT_JIT_THRESHOLD,
};
pub use program::{Program, ProgramBuilder};
pub use store::{ObjectStore, VerifiedProgram};
pub use error::WireError;
pub use verifier::verify;
