//! The compiled-policy wire format: a versioned, checksummed byte
//! encoding of a verified policy, for shipping between the compile host
//! and the load host (the `c3ctl policy compile` / `policy load` pair).
//!
//! # Trust model
//!
//! The artifact is **evidence, not authority**. [`seal`] records the
//! program alongside a digest of the exact verification context it
//! passed (context-layout ABI, hook rules, map definitions, instruction
//! stream); [`open`] recomputes that digest against the *load host's*
//! layout and rules, rejects on any mismatch — and then re-runs the
//! verifier anyway via [`VerifiedProgram::new`]. A wire artifact can
//! therefore never make an unverified program runnable: tampering is
//! caught by the whole-artifact checksum, a stale or cross-hook artifact
//! by the verification digest, and a hostile-but-consistent artifact by
//! re-verification. What the format buys is *provenance* (fail loudly on
//! mismatch instead of verifying something other than what was
//! compiled) and a stable on-disk/on-wire encoding.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! magic      4  b"C3PW"
//! version    u16  (currently 1)
//! flags      u16  (reserved, must be zero)
//! name       u16 length + bytes (UTF-8)
//! maps       u16 count, then per map:
//!              kind u8, key_size u32, value_size u32,
//!              max_entries u32, name (u16 length + bytes)
//! insns      u32 raw-slot count, then 9 bytes per slot:
//!              op u8, dst u8, src u8, off i16, imm i32
//! digest     16  verification-context digest (see [`verify_digest`])
//! checksum   16  whole-artifact digest of every byte above
//! ```
//!
//! Map *definitions* travel; map *contents* do not — a loaded policy
//! starts with fresh, empty (or zero-initialized, for array kinds) maps,
//! exactly like a freshly built program.

use std::sync::Arc;

use crate::ctx::{CtxLayout, FieldAccess};
use crate::error::WireError;
use crate::insn::{self, RawInsn};
use crate::map::{Map, MapDef, MapKind, MAX_MAP_ENTRIES};
use crate::program::Program;
use crate::store::VerifiedProgram;
use crate::verifier::HookRules;

/// Artifact magic: "C3PW" (Concord policy wire).
pub const MAGIC: [u8; 4] = *b"C3PW";
/// Current format version. Bumped on any layout change; [`open`]
/// rejects versions it does not speak.
pub const VERSION: u16 = 1;

/// Caps decoding work on hostile input; far above any real policy
/// (the verifier's own limits are much tighter).
const MAX_WIRE_INSNS: u32 = 1 << 20;
const MAX_WIRE_MAPS: u16 = 1 << 10;
const MAX_WIRE_NAME: u16 = 1 << 10;
/// Map-shape caps: [`open`] materializes maps before verification, so a
/// hostile artifact must not be able to demand an absurd allocation (or
/// trip [`Map::new`]'s own panics) just by writing large sizes.
const MAX_WIRE_KEY_SIZE: usize = 512;
const MAX_WIRE_VALUE_SIZE: usize = 4096;

// --- digest -----------------------------------------------------------

/// 128-bit digest as two independent 64-bit FNV-1a streams over the same
/// bytes (different offset bases, second stream also folds the length),
/// so a collision must defeat both simultaneously. Not cryptographic —
/// the trust model above never depends on that — but plenty to make
/// accidental corruption and casual tampering fail loudly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Digest128 {
    a: u64,
    b: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_BASIS_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_BASIS_B: u64 = 0x6c62_272e_07bb_0142;

struct DigestState {
    a: u64,
    b: u64,
    len: u64,
}

impl DigestState {
    fn new() -> Self {
        DigestState {
            a: FNV_BASIS_A,
            b: FNV_BASIS_B,
            len: 0,
        }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
        self.len += bytes.len() as u64;
    }

    fn finish(mut self) -> Digest128 {
        let len = self.len;
        self.update(&len.to_le_bytes());
        Digest128 {
            a: self.a,
            b: self.b,
        }
    }
}

fn digest_bytes(bytes: &[u8]) -> Digest128 {
    let mut st = DigestState::new();
    st.update(bytes);
    st.finish()
}

impl Digest128 {
    fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.a.to_le_bytes());
        out[8..].copy_from_slice(&self.b.to_le_bytes());
        out
    }
}

/// Digest of the verification context plus program identity: layout ABI,
/// hook rules, map definitions and the raw instruction stream. Computed
/// at seal time from what actually verified; recomputed at open time
/// from the load host's layout and rules. Any drift — different field
/// offsets, looser rules, edited instructions — changes the digest.
fn verify_digest(
    layout: &CtxLayout,
    rules: &HookRules,
    maps: &[MapDef],
    raw: &[RawInsn],
) -> Digest128 {
    let mut st = DigestState::new();
    st.update(b"layout:");
    for f in layout.fields() {
        st.update(f.name.as_bytes());
        st.update(&[0]);
        st.update(&(f.offset as u64).to_le_bytes());
        st.update(&(f.size as u64).to_le_bytes());
        st.update(&[match f.access {
            FieldAccess::ReadOnly => 0,
            FieldAccess::ReadWrite => 1,
        }]);
    }
    st.update(b"rules:");
    match rules.max_insns {
        None => st.update(&[0]),
        Some(n) => {
            st.update(&[1]);
            st.update(&(n as u64).to_le_bytes());
        }
    }
    match &rules.allowed_helpers {
        None => st.update(&[0]),
        Some(ids) => {
            st.update(&[1]);
            st.update(&(ids.len() as u64).to_le_bytes());
            for id in ids {
                st.update(&(*id as u32).to_le_bytes());
            }
        }
    }
    st.update(&[u8::from(rules.allow_ctx_writes)]);
    st.update(b"maps:");
    for def in maps {
        push_mapdef_digest(&mut st, def);
    }
    st.update(b"insns:");
    for r in raw {
        st.update(&raw_to_bytes(*r));
    }
    st.finish()
}

fn push_mapdef_digest(st: &mut DigestState, def: &MapDef) {
    st.update(&[map_kind_code(def.kind)]);
    st.update(&(def.key_size as u64).to_le_bytes());
    st.update(&(def.value_size as u64).to_le_bytes());
    st.update(&(def.max_entries as u64).to_le_bytes());
    st.update(def.name.as_bytes());
    st.update(&[0]);
}

// --- primitive writers/readers ----------------------------------------

fn map_kind_code(kind: MapKind) -> u8 {
    match kind {
        MapKind::Array => 0,
        MapKind::Hash => 1,
        MapKind::PerCpuArray => 2,
    }
}

fn map_kind_from(code: u8) -> Option<MapKind> {
    match code {
        0 => Some(MapKind::Array),
        1 => Some(MapKind::Hash),
        2 => Some(MapKind::PerCpuArray),
        _ => None,
    }
}

fn raw_to_bytes(r: RawInsn) -> [u8; 9] {
    let off = r.off.to_le_bytes();
    let imm = r.imm.to_le_bytes();
    [
        r.op, r.dst, r.src, off[0], off[1], imm[0], imm[1], imm[2], imm[3],
    ]
}

fn raw_from_bytes(b: &[u8]) -> RawInsn {
    RawInsn {
        op: b[0],
        dst: b[1],
        src: b[2],
        off: i16::from_le_bytes([b[3], b[4]]),
        imm: i32::from_le_bytes([b[5], b[6], b[7], b[8]]),
    }
}

/// Bounded sequential reader over the artifact body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn name(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u16()?;
        if len > MAX_WIRE_NAME {
            return Err(WireError::Malformed(what));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed(what))
    }
}

fn push_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= MAX_WIRE_NAME as usize);
    out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    out.extend_from_slice(bytes);
}

// --- seal / open -------------------------------------------------------

/// Serializes a verified policy into a wire artifact, binding it to the
/// verification context (`rules` must be the rules it verified under —
/// [`VerifiedProgram::seal`] guarantees that pairing).
pub fn seal(prog: &VerifiedProgram, rules: &HookRules) -> Vec<u8> {
    let p = prog.program();
    let raw = insn::encode(p.insns());
    let defs: Vec<MapDef> = p.maps().iter().map(|m| m.def().clone()).collect();

    let mut out = Vec::with_capacity(64 + raw.len() * 9);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags
    push_name(&mut out, p.name());
    out.extend_from_slice(&(defs.len() as u16).to_le_bytes());
    for def in &defs {
        out.push(map_kind_code(def.kind));
        out.extend_from_slice(&(def.key_size as u32).to_le_bytes());
        out.extend_from_slice(&(def.value_size as u32).to_le_bytes());
        out.extend_from_slice(&(def.max_entries as u32).to_le_bytes());
        push_name(&mut out, &def.name);
    }
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    for r in &raw {
        out.extend_from_slice(&raw_to_bytes(*r));
    }
    out.extend_from_slice(&verify_digest(prog.layout(), rules, &defs, &raw).to_bytes());
    let sum = digest_bytes(&out);
    out.extend_from_slice(&sum.to_bytes());
    out
}

/// Deserializes a wire artifact and **re-verifies** it against the load
/// host's `layout` and `rules`. Order of checks: checksum (tamper),
/// magic/version (format), structure (truncation/bounds), verification
/// digest (provenance), then the verifier itself. Only a program that
/// passes all five comes back as a [`VerifiedProgram`].
///
/// # Errors
///
/// Any [`WireError`]; see the variant docs for which check failed.
pub fn open(
    bytes: &[u8],
    layout: &CtxLayout,
    rules: &HookRules,
) -> Result<VerifiedProgram, WireError> {
    // Magic first (is this even our format?), then checksum over the
    // rest, so a wrong-file error reads as BadMagic rather than a
    // checksum complaint.
    if bytes.len() < MAGIC.len() {
        return Err(WireError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 2 + 2 + 16 + 16 {
        return Err(WireError::Truncated);
    }
    let (body, sum) = bytes.split_at(bytes.len() - 16);
    if digest_bytes(body).to_bytes() != sum {
        return Err(WireError::ChecksumMismatch);
    }

    let mut r = Reader {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion { version });
    }
    let flags = r.u16()?;
    if flags != 0 {
        return Err(WireError::Malformed("reserved flags set"));
    }
    let name = r.name("program name")?;

    let map_count = r.u16()?;
    if map_count > MAX_WIRE_MAPS {
        return Err(WireError::Malformed("map count"));
    }
    let mut defs = Vec::with_capacity(map_count as usize);
    for _ in 0..map_count {
        let kind =
            map_kind_from(r.take(1)?[0]).ok_or(WireError::Malformed("unknown map kind"))?;
        let key_size = r.u32()? as usize;
        let value_size = r.u32()? as usize;
        let max_entries = r.u32()? as usize;
        if key_size == 0 || key_size > MAX_WIRE_KEY_SIZE {
            return Err(WireError::Malformed("map key_size"));
        }
        if value_size == 0 || value_size > MAX_WIRE_VALUE_SIZE {
            return Err(WireError::Malformed("map value_size"));
        }
        if max_entries == 0 || max_entries > MAX_MAP_ENTRIES {
            return Err(WireError::Malformed("map max_entries"));
        }
        if matches!(kind, MapKind::Array | MapKind::PerCpuArray) && key_size != 4 {
            return Err(WireError::Malformed("array map key_size"));
        }
        let map_name = r.name("map name")?;
        defs.push(MapDef {
            name: map_name,
            kind,
            key_size,
            value_size,
            max_entries,
        });
    }

    let insn_count = r.u32()?;
    if insn_count > MAX_WIRE_INSNS {
        return Err(WireError::Malformed("instruction count"));
    }
    let mut raw = Vec::with_capacity(insn_count as usize);
    for _ in 0..insn_count {
        raw.push(raw_from_bytes(r.take(9)?));
    }

    let stored_digest: [u8; 16] = r.take(16)?.try_into().expect("fixed-size take");
    if r.pos != body.len() {
        return Err(WireError::Malformed("trailing bytes"));
    }
    if verify_digest(layout, rules, &defs, &raw).to_bytes() != stored_digest {
        return Err(WireError::DigestMismatch);
    }

    let insns = insn::decode(&raw).map_err(WireError::Decode)?;
    let maps: Vec<Arc<Map>> = defs.into_iter().map(|d| Arc::new(Map::new(d))).collect();
    let prog = Program::new(name, insns, maps);
    VerifiedProgram::new(prog, layout, rules).map_err(WireError::Verify)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let a = digest_bytes(b"ab");
        let b = digest_bytes(b"ba");
        assert_ne!(a, b);
    }

    #[test]
    fn digest_folds_length() {
        // Same-content prefixes of different lengths must differ even
        // when the trailing bytes are zero (zero bytes still mix, but
        // the length fold catches pathological cases too).
        let a = digest_bytes(&[0u8; 4]);
        let b = digest_bytes(&[0u8; 5]);
        assert_ne!(a, b);
    }
}
