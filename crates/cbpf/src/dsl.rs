//! A restricted C-style policy language, compiled to the bytecode ISA.
//!
//! The paper's users "implement their required policies … in a C-style
//! code, which is translated into native code and is checked by an eBPF
//! verifier" (§4.2). This module is that frontend: a small expression
//! language with `let`, `if`/`else` and `return`, where context fields
//! appear as bare identifiers and helpers as function calls:
//!
//! ```text
//! // NUMA-aware cmp_node: group waiters from the shuffler's socket.
//! if (curr_socket == shuffler_socket)
//!     return 1;
//! return 0;
//! ```
//!
//! The compiler performs no safety reasoning of its own — its output goes
//! through the same verifier as hand-written assembly, which is the
//! paper's trust model (the frontend is untrusted, the verifier is not).
//!
//! # Semantics
//!
//! * All values are 64-bit integers.
//! * Comparisons (`<`, `<=`, `>`, `>=`) are **signed** (C `long`).
//! * Division, modulo and `>>` are **unsigned** (eBPF semantics; division
//!   by zero yields 0, modulo by zero yields the dividend).
//! * `&&` and `||` short-circuit and yield 0/1.
//! * Falling off the end returns 0.

use std::collections::HashMap;

use crate::ctx::CtxLayout;
use crate::error::AsmError;
use crate::helpers::HelperId;
use crate::insn::{AluOp, JmpOp, MemSize, Reg};
use crate::program::{Program, ProgramBuilder};

/// Maximum `let` bindings plus expression depth (stack slots of 8 bytes).
const MAX_SLOTS: i64 = 56;

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Num(u64),
    Ident(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Assign,
    OrOr,
    AndAnd,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Pipe,
    Caret,
    Amp,
    Shl,
    Shr,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Tilde,
    KwLet,
    KwIf,
    KwElse,
    KwReturn,
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, AsmError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        // Line comment.
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        loop {
                            match chars.next() {
                                Some('\n') => {
                                    line += 1;
                                    prev = '\n';
                                }
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                                None => return Err(err(line, "unterminated comment")),
                            }
                        }
                    }
                    _ => out.push((Tok::Slash, line)),
                }
            }
            '0'..='9' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(&hex.replace('_', ""), 16)
                } else {
                    s.replace('_', "").parse::<u64>()
                }
                .map_err(|_| err(line, format!("bad number `{s}`")))?;
                out.push((Tok::Num(v), line));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((
                    match s.as_str() {
                        "let" => Tok::KwLet,
                        "if" => Tok::KwIf,
                        "else" => Tok::KwElse,
                        "return" => Tok::KwReturn,
                        _ => Tok::Ident(s),
                    },
                    line,
                ));
            }
            _ => {
                chars.next();
                let two = |chars: &mut std::iter::Peekable<std::str::Chars>, next: char| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '|' => {
                        if two(&mut chars, '|') {
                            Tok::OrOr
                        } else {
                            Tok::Pipe
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&') {
                            Tok::AndAnd
                        } else {
                            Tok::Amp
                        }
                    }
                    '=' => {
                        if two(&mut chars, '=') {
                            Tok::Eq
                        } else {
                            Tok::Assign
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=') {
                            Tok::Ne
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=') {
                            Tok::Le
                        } else if two(&mut chars, '<') {
                            Tok::Shl
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=') {
                            Tok::Ge
                        } else if two(&mut chars, '>') {
                            Tok::Shr
                        } else {
                            Tok::Gt
                        }
                    }
                    '^' => Tok::Caret,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '%' => Tok::Percent,
                    '~' => Tok::Tilde,
                    other => return Err(err(line, format!("unexpected character `{other}`"))),
                };
                out.push((tok, line));
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------- ast --

#[derive(Debug)]
enum Expr {
    Num(u64),
    Var(String, usize),
    Call(String, Vec<Expr>, usize),
    Unary(Tok, Box<Expr>),
    Binary(Tok, Box<Expr>, Box<Expr>),
}

#[derive(Debug)]
enum Stmt {
    Let(String, Expr, usize),
    Return(Expr),
    If(Expr, Vec<Stmt>, Vec<Stmt>),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), AsmError> {
        let line = self.line();
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(err(line, format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn program(&mut self) -> Result<Vec<Stmt>, AsmError> {
        let mut stmts = Vec::new();
        while self.peek().is_some() {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, AsmError> {
        if self.peek() == Some(&Tok::LBrace) {
            self.next();
            let mut stmts = Vec::new();
            while self.peek() != Some(&Tok::RBrace) {
                if self.peek().is_none() {
                    return Err(err(self.line(), "unterminated block"));
                }
                stmts.push(self.stmt()?);
            }
            self.next();
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, AsmError> {
        let line = self.line();
        match self.peek() {
            Some(Tok::KwLet) => {
                self.next();
                let name = match self.next() {
                    Some(Tok::Ident(n)) => n,
                    got => return Err(err(line, format!("expected name after let, got {got:?}"))),
                };
                self.expect(Tok::Assign)?;
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let(name, e, line))
            }
            Some(Tok::KwReturn) => {
                self.next();
                let e = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            Some(Tok::KwIf) => {
                self.next();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then = self.block()?;
                let otherwise = if self.peek() == Some(&Tok::KwElse) {
                    self.next();
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, otherwise))
            }
            got => Err(err(line, format!("expected statement, got {got:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, AsmError> {
        self.binary(0)
    }

    /// Precedence-climbing over the binary operator tiers.
    fn binary(&mut self, tier: usize) -> Result<Expr, AsmError> {
        const TIERS: &[&[Tok]] = &[
            &[Tok::OrOr],
            &[Tok::AndAnd],
            &[Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge],
            &[Tok::Pipe],
            &[Tok::Caret],
            &[Tok::Amp],
            &[Tok::Shl, Tok::Shr],
            &[Tok::Plus, Tok::Minus],
            &[Tok::Star, Tok::Slash, Tok::Percent],
        ];
        if tier == TIERS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(tier + 1)?;
        while let Some(t) = self.peek() {
            if TIERS[tier].contains(t) {
                let op = self.next().expect("peeked");
                let rhs = self.binary(tier + 1)?;
                lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, AsmError> {
        match self.peek() {
            Some(Tok::Minus) | Some(Tok::Bang) | Some(Tok::Tilde) => {
                let op = self.next().expect("peeked");
                Ok(Expr::Unary(op, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, AsmError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.next();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Tok::Comma) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args, line))
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            got => Err(err(line, format!("expected expression, got {got:?}"))),
        }
    }
}

// -------------------------------------------------------------- codegen --

struct Codegen<'a> {
    b: ProgramBuilder,
    layout: &'a CtxLayout,
    vars: HashMap<String, i64>, // name → stack slot index
    depth: i64,                 // current temporary-stack depth
    labels: u32,
}

impl<'a> Codegen<'a> {
    /// Stack byte offset (from r10) for slot `i`.
    fn slot_off(i: i64) -> i16 {
        (-8 * (i + 1)) as i16
    }

    fn fresh(&mut self, what: &str) -> String {
        self.labels += 1;
        format!("__{what}{}", self.labels)
    }

    fn push_tmp(&mut self, line: usize) -> Result<i64, AsmError> {
        let slot = self.vars.len() as i64 + self.depth;
        if slot >= MAX_SLOTS {
            return Err(err(line, "expression too deep"));
        }
        self.depth += 1;
        self.b
            .store(MemSize::Dw, Reg::R10, Self::slot_off(slot), Reg::R0);
        Ok(slot)
    }

    fn pop_tmp(&mut self, slot: i64, into: Reg) {
        self.b
            .load(MemSize::Dw, into, Reg::R10, Self::slot_off(slot));
        self.depth -= 1;
    }

    /// Emits code leaving the expression value in `r0`.
    fn expr(&mut self, e: &Expr) -> Result<(), AsmError> {
        match e {
            Expr::Num(v) => {
                if *v <= i32::MAX as u64 {
                    self.b.mov_imm(Reg::R0, *v as i32);
                } else {
                    self.b.ld_imm64(Reg::R0, *v);
                }
            }
            Expr::Var(name, line) => {
                if let Some(&slot) = self.vars.get(name) {
                    self.b
                        .load(MemSize::Dw, Reg::R0, Reg::R10, Self::slot_off(slot));
                } else if let Some(f) = self.layout.field(name) {
                    let size = match f.size {
                        1 => MemSize::B,
                        2 => MemSize::H,
                        4 => MemSize::W,
                        _ => MemSize::Dw,
                    };
                    // r6 holds the saved context pointer.
                    self.b.load(size, Reg::R0, Reg::R6, f.offset as i16);
                } else {
                    return Err(err(
                        *line,
                        format!("unknown identifier `{name}` (not a let binding or context field)"),
                    ));
                }
            }
            Expr::Call(name, args, line) => {
                let helper = HelperId::from_name(name)
                    .ok_or_else(|| err(*line, format!("unknown helper `{name}`")))?;
                if args.len() > 5 {
                    return Err(err(*line, "helpers take at most 5 arguments"));
                }
                // Evaluate arguments onto the stack, then fill r1..rN.
                let mut slots = Vec::new();
                for a in args {
                    self.expr(a)?;
                    slots.push(self.push_tmp(*line)?);
                }
                for (i, slot) in slots.iter().enumerate() {
                    self.b.load(
                        MemSize::Dw,
                        Reg(1 + i as u8),
                        Reg::R10,
                        Self::slot_off(*slot),
                    );
                }
                self.depth -= slots.len() as i64;
                self.b.call(helper);
            }
            Expr::Unary(op, inner) => {
                self.expr(inner)?;
                match op {
                    Tok::Minus => {
                        self.b.alu_imm(AluOp::Neg, Reg::R0, 0);
                    }
                    Tok::Tilde => {
                        self.b.alu_imm(AluOp::Xor, Reg::R0, -1);
                    }
                    Tok::Bang => {
                        let one = self.fresh("not_true");
                        let end = self.fresh("not_end");
                        self.b.jmp_imm(JmpOp::Eq, Reg::R0, 0, &one);
                        self.b.mov_imm(Reg::R0, 0);
                        self.b.ja(&end);
                        self.b.label(&one);
                        self.b.mov_imm(Reg::R0, 1);
                        self.b.label(&end);
                    }
                    _ => unreachable!("parser only produces unary -, ~, !"),
                }
            }
            Expr::Binary(op, lhs, rhs) => self.binary(op, lhs, rhs)?,
        }
        Ok(())
    }

    fn binary(&mut self, op: &Tok, lhs: &Expr, rhs: &Expr) -> Result<(), AsmError> {
        // Short-circuit forms first.
        if matches!(op, Tok::AndAnd | Tok::OrOr) {
            let settle = self.fresh("sc_settle");
            let end = self.fresh("sc_end");
            self.expr(lhs)?;
            match op {
                Tok::AndAnd => {
                    self.b.jmp_imm(JmpOp::Eq, Reg::R0, 0, &settle);
                }
                _ => {
                    self.b.jmp_imm(JmpOp::Ne, Reg::R0, 0, &settle);
                }
            }
            self.expr(rhs)?;
            self.b.label(&settle);
            // Normalize whatever r0 holds to 0/1.
            let one = self.fresh("sc_one");
            self.b.jmp_imm(JmpOp::Ne, Reg::R0, 0, &one);
            self.b.mov_imm(Reg::R0, 0);
            self.b.ja(&end);
            self.b.label(&one);
            self.b.mov_imm(Reg::R0, 1);
            self.b.label(&end);
            return Ok(());
        }

        self.expr(lhs)?;
        let slot = self.push_tmp(0)?;
        self.expr(rhs)?;
        self.pop_tmp(slot, Reg::R2); // r2 = lhs, r0 = rhs.

        let simple = |o: AluOp| Some(o);
        let alu = match op {
            Tok::Plus => simple(AluOp::Add),
            Tok::Minus => simple(AluOp::Sub),
            Tok::Star => simple(AluOp::Mul),
            Tok::Slash => simple(AluOp::Div),
            Tok::Percent => simple(AluOp::Mod),
            Tok::Pipe => simple(AluOp::Or),
            Tok::Caret => simple(AluOp::Xor),
            Tok::Amp => simple(AluOp::And),
            Tok::Shl => simple(AluOp::Lsh),
            Tok::Shr => simple(AluOp::Rsh),
            _ => None,
        };
        if let Some(a) = alu {
            // r2 = r2 op r0; move into r0.
            self.b.alu(a, Reg::R2, Reg::R0);
            self.b.mov(Reg::R0, Reg::R2);
            return Ok(());
        }

        // Comparisons (signed relational, per C `long`).
        let jop = match op {
            Tok::Eq => JmpOp::Eq,
            Tok::Ne => JmpOp::Ne,
            Tok::Lt => JmpOp::Slt,
            Tok::Le => JmpOp::Sle,
            Tok::Gt => JmpOp::Sgt,
            Tok::Ge => JmpOp::Sge,
            other => unreachable!("non-binary operator {other:?}"),
        };
        let yes = self.fresh("cmp_true");
        let end = self.fresh("cmp_end");
        self.b.jmp(jop, Reg::R2, Reg::R0, &yes);
        self.b.mov_imm(Reg::R0, 0);
        self.b.ja(&end);
        self.b.label(&yes);
        self.b.mov_imm(Reg::R0, 1);
        self.b.label(&end);
        Ok(())
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), AsmError> {
        for s in stmts {
            match s {
                Stmt::Let(name, e, line) => {
                    self.expr(e)?;
                    let slot = match self.vars.get(name) {
                        Some(&slot) => slot, // Rebinding reuses the slot.
                        None => {
                            let slot = self.vars.len() as i64;
                            if slot + self.depth >= MAX_SLOTS {
                                return Err(err(*line, "too many variables"));
                            }
                            self.vars.insert(name.clone(), slot);
                            slot
                        }
                    };
                    self.b
                        .store(MemSize::Dw, Reg::R10, Self::slot_off(slot), Reg::R0);
                }
                Stmt::Return(e) => {
                    self.expr(e)?;
                    self.b.exit();
                }
                Stmt::If(cond, then, otherwise) => {
                    let else_l = self.fresh("else");
                    let end_l = self.fresh("endif");
                    self.expr(cond)?;
                    self.b.jmp_imm(JmpOp::Eq, Reg::R0, 0, &else_l);
                    self.stmts(then)?;
                    self.b.ja(&end_l);
                    self.b.label(&else_l);
                    self.stmts(otherwise)?;
                    self.b.label(&end_l);
                }
            }
        }
        Ok(())
    }
}

/// Compiles C-style policy source into a program (unverified — run the
/// verifier next, exactly as for assembly).
///
/// Context fields of `layout` are readable as bare identifiers; helpers
/// are callable by name.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors, unknown
/// identifiers/helpers, and resource-limit violations.
pub fn compile(name: &str, src: &str, layout: &CtxLayout) -> Result<Program, AsmError> {
    let toks = lex(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let stmts = parser.program()?;
    let mut cg = Codegen {
        b: ProgramBuilder::new(name),
        layout,
        vars: HashMap::new(),
        depth: 0,
        labels: 0,
    };
    // Dedicate r6 to the context pointer: helpers clobber r1-r5.
    if layout.size() > 0 {
        cg.b.mov(Reg::R6, Reg::R1);
    }
    cg.stmts(&stmts)?;
    // Implicit `return 0`.
    cg.b.mov_imm(Reg::R0, 0);
    cg.b.exit();
    cg.b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::FieldAccess;
    use crate::helpers::FixedEnv;
    use crate::interp::run_program;
    use crate::verifier::verify;

    fn layout() -> CtxLayout {
        CtxLayout::builder()
            .field("a", 8, FieldAccess::ReadOnly)
            .field("b", 4, FieldAccess::ReadOnly)
            .field("prio", 8, FieldAccess::ReadOnly)
            .build()
    }

    fn run(src: &str, a: u64, b: u64, prio: i64) -> u64 {
        let l = layout();
        let prog = compile("t", src, &l).expect("compiles");
        verify(&prog, &l).expect("verifies");
        let mut ctx = vec![0u8; l.size()];
        l.write(&mut ctx, "a", a);
        l.write(&mut ctx, "b", b);
        l.write(&mut ctx, "prio", prio as u64);
        run_program(&prog, &mut ctx, &l, &FixedEnv::new().cpu(12).numa(3)).expect("runs")
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("return 2 + 3 * 4;", 0, 0, 0), 14);
        assert_eq!(run("return (2 + 3) * 4;", 0, 0, 0), 20);
        assert_eq!(run("return 10 - 2 - 3;", 0, 0, 0), 5);
        assert_eq!(run("return 7 / 2;", 0, 0, 0), 3);
        assert_eq!(run("return 7 % 4;", 0, 0, 0), 3);
        assert_eq!(run("return 1 << 4 | 3;", 0, 0, 0), 19);
        assert_eq!(run("return 0xff & 0x0f;", 0, 0, 0), 0x0f);
        assert_eq!(run("return 6 ^ 3;", 0, 0, 0), 5);
    }

    #[test]
    fn unary_operators() {
        assert_eq!(run("return -5 + 7;", 0, 0, 0), 2);
        assert_eq!(run("return !0;", 0, 0, 0), 1);
        assert_eq!(run("return !7;", 0, 0, 0), 0);
        assert_eq!(run("return ~0 & 0xff;", 0, 0, 0), 0xff);
    }

    #[test]
    fn ctx_fields_and_comparisons() {
        let src = "return a == b;";
        assert_eq!(run(src, 5, 5, 0), 1);
        assert_eq!(run(src, 5, 6, 0), 0);
        // Signed comparison with a negative field.
        assert_eq!(run("return prio < 0;", 0, 0, -3), 1);
        assert_eq!(run("return prio < 0;", 0, 0, 3), 0);
        assert_eq!(run("return prio >= -5;", 0, 0, -3), 1);
    }

    #[test]
    fn short_circuit_logic() {
        assert_eq!(run("return 1 && 2;", 0, 0, 0), 1);
        assert_eq!(run("return 1 && 0;", 0, 0, 0), 0);
        assert_eq!(run("return 0 || 3;", 0, 0, 0), 1);
        assert_eq!(run("return 0 || 0;", 0, 0, 0), 0);
        // Division by a zero field would be fine (eBPF: 0), but the short
        // circuit must prevent evaluation anyway.
        assert_eq!(run("return b != 0 && 10 / b > 1;", 0, 0, 0), 0);
        assert_eq!(run("return b != 0 && 10 / b > 1;", 0, 4, 0), 1);
    }

    #[test]
    fn let_if_else_and_implicit_return() {
        let src = r#"
            let x = a * 2;
            if (x > b) {
                return x - b;
            } else {
                return b - x;
            }
        "#;
        assert_eq!(run(src, 5, 4, 0), 6);
        assert_eq!(run(src, 1, 10, 0), 8);
        // Implicit return 0 at the end.
        assert_eq!(run("let x = 5;", 0, 0, 0), 0);
        // Rebinding.
        assert_eq!(run("let x = 1; let x = x + 1; return x;", 0, 0, 0), 2);
    }

    #[test]
    fn helper_calls() {
        assert_eq!(run("return cpu_id();", 0, 0, 0), 12);
        assert_eq!(run("return numa_id();", 0, 0, 0), 3);
        assert_eq!(run("return cpu_to_node(25);", 0, 0, 0), 2);
        assert_eq!(run("return cpu_to_node(cpu_id() + 10);", 0, 0, 0), 2);
    }

    #[test]
    fn the_papers_numa_policy_in_c() {
        let l = CtxLayout::builder()
            .field("lock_id", 8, FieldAccess::ReadOnly)
            .field("shuffler_socket", 4, FieldAccess::ReadOnly)
            .field("curr_socket", 4, FieldAccess::ReadOnly)
            .build();
        let src = r#"
            // NUMA-aware cmp_node: move same-socket waiters forward.
            if (curr_socket == shuffler_socket)
                return 1;
            return 0;
        "#;
        let prog = compile("numa", src, &l).unwrap();
        verify(&prog, &l).unwrap();
        let mut ctx = vec![0u8; l.size()];
        l.write(&mut ctx, "shuffler_socket", 2);
        l.write(&mut ctx, "curr_socket", 2);
        assert_eq!(
            run_program(&prog, &mut ctx, &l, &FixedEnv::new()).unwrap(),
            1
        );
        l.write(&mut ctx, "curr_socket", 5);
        assert_eq!(
            run_program(&prog, &mut ctx, &l, &FixedEnv::new()).unwrap(),
            0
        );
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let l = layout();
        let e = compile("t", "return bogus;", &l).unwrap_err();
        assert!(e.msg.contains("unknown identifier"), "{e}");
        let e = compile("t", "return nope();", &l).unwrap_err();
        assert!(e.msg.contains("unknown helper"), "{e}");
        let e = compile("t", "\n\nreturn @;", &l).unwrap_err();
        assert_eq!(e.line, 3);
        let e = compile("t", "if (1) { return 1;", &l).unwrap_err();
        assert!(e.msg.contains("unterminated"), "{e}");
        let e = compile("t", "let = 5;", &l).unwrap_err();
        assert!(e.msg.contains("expected name"), "{e}");
    }

    #[test]
    fn compiled_output_always_verifies() {
        // A grab-bag of shapes; everything the compiler emits must pass
        // the verifier (forward jumps only, bounded stack, typed ctx).
        let l = layout();
        for src in [
            "return 0;",
            "return a + b * prio - 3;",
            "let x = a; let y = x + b; let z = y * 2; return z % 7;",
            "if (a > b || prio < 0 && b != 0) return 1; return 2;",
            "if (a == 1) { if (b == 2) { return 3; } return 4; } return 5;",
            "return !(a == b) && ~prio != 0;",
            "return ktime_ns() + pid() + prandom();",
            "let t = task_priority(a); if (t > prio) return 1; return 0;",
        ] {
            let prog = compile("t", src, &l).unwrap_or_else(|e| panic!("{src}: {e}"));
            verify(&prog, &l).unwrap_or_else(|e| panic!("{src}: verifier: {e}"));
        }
    }

    #[test]
    fn deep_expressions_rejected_cleanly() {
        let l = layout();
        let mut src = String::from("return 1");
        for _ in 0..70 {
            src.push_str(" + (1");
        }
        src.push('1');
        for _ in 0..70 {
            src.push(')');
        }
        src.push(';');
        // Either a parse error or a depth error, never a panic.
        let _ = compile("t", &src, &l);
    }
}
