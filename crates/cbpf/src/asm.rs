//! Textual assembler and disassembler for policy programs.
//!
//! The paper's users "encode multiple policies in a C-style code" that is
//! compiled to eBPF; this assembler is the analogous authoring surface here.
//! Examples use it to keep policies readable.
//!
//! # Syntax
//!
//! ```text
//! ; comments start with ';' or '#'
//! entry:                      ; labels end with ':'
//!     mov   r6, 10            ; alu: op dst, (reg|imm) — "32" suffix = 32-bit
//!     add32 r6, r1
//!     ld64  r2, 0xdeadbeef    ; 64-bit immediate
//!     ldmap r1, counts        ; map reference by name
//!     ldxdw r3, [r10-8]       ; loads: ldxb/ldxh/ldxw/ldxdw
//!     stxdw [r10-8], r3       ; register stores: stxb/stxh/stxw/stxdw
//!     stw   [r10-4], 7        ; immediate stores: stb/sth/stw/stdw
//!     jeq   r3, 0, done       ; conditional jumps take a label
//!     ja    done
//!     call  cpu_id            ; helper by name or number
//! done:
//!     exit
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::AsmError;
use crate::helpers::HelperId;
use crate::insn::{AluOp, Insn, JmpOp, MemSize, Operand, Reg, NUM_REGS};
use crate::map::Map;
use crate::program::Program;

/// Assembles source with no maps.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any parse failure.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    assemble_named("anonymous", src, &[])
}

/// Assembles source; `ldmap` operands are resolved against `maps` by name.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any parse failure or an
/// unknown map/label/helper name.
pub fn assemble_named(name: &str, src: &str, maps: &[Arc<Map>]) -> Result<Program, AsmError> {
    let mut insns: Vec<Insn> = Vec::new();
    // (insn index, label name, line) for jump fixups.
    let mut fixups: Vec<(usize, String, usize)> = Vec::new();
    let mut labels: HashMap<String, usize> = HashMap::new();

    for (lineno, raw_line) in src.lines().enumerate() {
        let line = lineno + 1;
        let text = raw_line.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        if let Some(label) = text.strip_suffix(':') {
            let label = label.trim();
            check_ident(label, line)?;
            if labels.insert(label.to_string(), insns.len()).is_some() {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            continue;
        }
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let args: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        parse_insn(mnemonic, &args, line, maps, &mut insns, &mut fixups)?;
    }

    for (idx, label, line) in fixups {
        let target = *labels
            .get(&label)
            .ok_or_else(|| err(line, format!("undefined label `{label}`")))?;
        let off = i16::try_from(target as i64 - idx as i64 - 1)
            .map_err(|_| err(line, format!("jump to `{label}` out of range")))?;
        match &mut insns[idx] {
            Insn::Ja { off: o } => *o = off,
            Insn::Jmp { off: o, .. } => *o = off,
            _ => unreachable!("fixup recorded for non-jump"),
        }
    }

    Ok(Program::new(name, insns, maps.to_vec()))
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn check_ident(s: &str, line: usize) -> Result<(), AsmError> {
    if !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.starts_with(|c: char| c.is_ascii_digit())
    {
        Ok(())
    } else {
        Err(err(line, format!("bad identifier `{s}`")))
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let n: u8 = s
        .strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| err(line, format!("expected register, got `{s}`")))?;
    if n < NUM_REGS {
        Ok(Reg(n))
    } else {
        Err(err(line, format!("register r{n} out of range")))
    }
}

fn parse_imm(s: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad number `{s}`")))?
    } else {
        body.parse::<u64>()
            .map_err(|_| err(line, format!("bad number `{s}`")))?
    };
    Ok(if neg {
        (v as i64).wrapping_neg()
    } else {
        v as i64
    })
}

fn parse_imm32(s: &str, line: usize) -> Result<i32, AsmError> {
    let v = parse_imm(s, line)?;
    i32::try_from(v)
        .or_else(|_| {
            // Allow unsigned 32-bit literals like 0xffffffff.
            u32::try_from(v).map(|u| u as i32)
        })
        .map_err(|_| err(line, format!("immediate `{s}` does not fit in 32 bits")))
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    if s.starts_with('r') && s.len() <= 3 && s[1..].chars().all(|c| c.is_ascii_digit()) {
        Ok(Operand::Reg(parse_reg(s, line)?))
    } else {
        Ok(Operand::Imm(parse_imm32(s, line)?))
    }
}

/// Parses `[rN+off]` / `[rN-off]` / `[rN]`.
fn parse_mem(s: &str, line: usize) -> Result<(Reg, i16), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [reg+off], got `{s}`")))?;
    let (reg_s, off) = if let Some(pos) = inner.find(['+', '-']) {
        let (r, o) = inner.split_at(pos);
        (r.trim(), parse_imm(o, line)?)
    } else {
        (inner.trim(), 0)
    };
    let off = i16::try_from(off).map_err(|_| err(line, format!("offset in `{s}` too large")))?;
    Ok((parse_reg(reg_s, line)?, off))
}

fn expect_args(args: &[&str], n: usize, line: usize, mnemonic: &str) -> Result<(), AsmError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(err(
            line,
            format!("`{mnemonic}` takes {n} operand(s), got {}", args.len()),
        ))
    }
}

fn alu_from_mnemonic(m: &str) -> Option<(AluOp, bool)> {
    let (base, wide) = match m.strip_suffix("32") {
        Some(b) => (b, false),
        None => (m, true),
    };
    AluOp::ALL
        .iter()
        .find(|op| op.mnemonic() == base)
        .map(|op| (*op, wide))
}

fn mem_size_from_suffix(s: &str) -> Option<MemSize> {
    match s {
        "b" => Some(MemSize::B),
        "h" => Some(MemSize::H),
        "w" => Some(MemSize::W),
        "dw" => Some(MemSize::Dw),
        _ => None,
    }
}

fn parse_insn(
    mnemonic: &str,
    args: &[&str],
    line: usize,
    maps: &[Arc<Map>],
    insns: &mut Vec<Insn>,
    fixups: &mut Vec<(usize, String, usize)>,
) -> Result<(), AsmError> {
    // Jumps.
    if mnemonic == "ja" {
        expect_args(args, 1, line, mnemonic)?;
        fixups.push((insns.len(), args[0].to_string(), line));
        insns.push(Insn::Ja { off: 0 });
        return Ok(());
    }
    if let Some(op) = JmpOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        expect_args(args, 3, line, mnemonic)?;
        let dst = parse_reg(args[0], line)?;
        let src = parse_operand(args[1], line)?;
        fixups.push((insns.len(), args[2].to_string(), line));
        insns.push(Insn::Jmp {
            op: *op,
            dst,
            src,
            off: 0,
        });
        return Ok(());
    }

    match mnemonic {
        "exit" => {
            expect_args(args, 0, line, mnemonic)?;
            insns.push(Insn::Exit);
        }
        "call" => {
            expect_args(args, 1, line, mnemonic)?;
            let helper = if let Ok(n) = args[0].parse::<u32>() {
                n
            } else {
                HelperId::from_name(args[0])
                    .ok_or_else(|| err(line, format!("unknown helper `{}`", args[0])))?
                    as u32
            };
            insns.push(Insn::Call { helper });
        }
        "ld64" => {
            expect_args(args, 2, line, mnemonic)?;
            let dst = parse_reg(args[0], line)?;
            let imm = parse_imm(args[1], line)? as u64;
            insns.push(Insn::LdImm64 { dst, imm });
        }
        "ldmap" => {
            expect_args(args, 2, line, mnemonic)?;
            let dst = parse_reg(args[0], line)?;
            let map_id = maps
                .iter()
                .position(|m| m.def().name == args[1])
                .ok_or_else(|| err(line, format!("unknown map `{}`", args[1])))?
                as u32;
            insns.push(Insn::LdMapRef { dst, map_id });
        }
        _ if mnemonic.starts_with("ldx") => {
            let size = mem_size_from_suffix(&mnemonic[3..])
                .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
            expect_args(args, 2, line, mnemonic)?;
            let dst = parse_reg(args[0], line)?;
            let (base, off) = parse_mem(args[1], line)?;
            insns.push(Insn::Load {
                size,
                dst,
                base,
                off,
            });
        }
        _ if mnemonic.starts_with("stx") => {
            let size = mem_size_from_suffix(&mnemonic[3..])
                .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
            expect_args(args, 2, line, mnemonic)?;
            let (base, off) = parse_mem(args[0], line)?;
            let src = parse_reg(args[1], line)?;
            insns.push(Insn::Store {
                size,
                base,
                off,
                src: Operand::Reg(src),
            });
        }
        _ if mnemonic.starts_with("st") => {
            let size = mem_size_from_suffix(&mnemonic[2..])
                .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
            expect_args(args, 2, line, mnemonic)?;
            let (base, off) = parse_mem(args[0], line)?;
            let imm = parse_imm32(args[1], line)?;
            insns.push(Insn::Store {
                size,
                base,
                off,
                src: Operand::Imm(imm),
            });
        }
        _ => {
            let (op, wide) = alu_from_mnemonic(mnemonic)
                .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
            if op == AluOp::Neg {
                expect_args(args, 1, line, mnemonic)?;
                let dst = parse_reg(args[0], line)?;
                insns.push(Insn::Alu {
                    wide,
                    op,
                    dst,
                    src: Operand::Imm(0),
                });
            } else {
                expect_args(args, 2, line, mnemonic)?;
                let dst = parse_reg(args[0], line)?;
                let src = parse_operand(args[1], line)?;
                insns.push(Insn::Alu { wide, op, dst, src });
            }
        }
    }
    Ok(())
}

/// Disassembles a program back to parseable text (generated labels `L<n>`).
pub fn disassemble(prog: &Program) -> String {
    // Collect jump targets for label placement.
    let mut targets: Vec<usize> = Vec::new();
    for (pc, insn) in prog.insns().iter().enumerate() {
        let off = match insn {
            Insn::Ja { off } => Some(*off),
            Insn::Jmp { off, .. } => Some(*off),
            _ => None,
        };
        if let Some(off) = off {
            targets.push((pc as i64 + 1 + i64::from(off)) as usize);
        }
    }
    targets.sort_unstable();
    targets.dedup();
    let label_of =
        |pc: usize| -> Option<String> { targets.binary_search(&pc).ok().map(|i| format!("L{i}")) };

    let mut out = String::new();
    for (pc, insn) in prog.insns().iter().enumerate() {
        if let Some(l) = label_of(pc) {
            out.push_str(&l);
            out.push_str(":\n");
        }
        out.push_str("    ");
        match *insn {
            Insn::Alu { wide, op, dst, src } => {
                let suffix = if wide { "" } else { "32" };
                if op == AluOp::Neg {
                    out.push_str(&format!("{}{} {}", op.mnemonic(), suffix, dst));
                } else {
                    out.push_str(&format!(
                        "{}{} {}, {}",
                        op.mnemonic(),
                        suffix,
                        dst,
                        operand_text(src)
                    ));
                }
            }
            Insn::LdImm64 { dst, imm } => {
                out.push_str(&format!("ld64 {dst}, {:#x}", imm));
            }
            Insn::LdMapRef { dst, map_id } => {
                let name = prog
                    .map(map_id)
                    .map(|m| m.def().name.clone())
                    .unwrap_or_else(|| format!("map{map_id}"));
                out.push_str(&format!("ldmap {dst}, {name}"));
            }
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => {
                out.push_str(&format!(
                    "ldx{} {}, {}",
                    size.suffix(),
                    dst,
                    mem_text(base, off)
                ));
            }
            Insn::Store {
                size,
                base,
                off,
                src,
            } => match src {
                Operand::Reg(r) => out.push_str(&format!(
                    "stx{} {}, {}",
                    size.suffix(),
                    mem_text(base, off),
                    r
                )),
                Operand::Imm(i) => out.push_str(&format!(
                    "st{} {}, {}",
                    size.suffix(),
                    mem_text(base, off),
                    i
                )),
            },
            Insn::Ja { off } => {
                let t = (pc as i64 + 1 + i64::from(off)) as usize;
                out.push_str(&format!("ja {}", label_of(t).unwrap_or_default()));
            }
            Insn::Jmp { op, dst, src, off } => {
                let t = (pc as i64 + 1 + i64::from(off)) as usize;
                out.push_str(&format!(
                    "{} {}, {}, {}",
                    op.mnemonic(),
                    dst,
                    operand_text(src),
                    label_of(t).unwrap_or_default()
                ));
            }
            Insn::Call { helper } => {
                let name = HelperId::from_u32(helper)
                    .map(|h| h.name().to_string())
                    .unwrap_or_else(|| helper.to_string());
                out.push_str(&format!("call {name}"));
            }
            Insn::Exit => out.push_str("exit"),
        }
        out.push('\n');
    }
    if let Some(l) = label_of(prog.insns().len()) {
        out.push_str(&l);
        out.push_str(":\n");
    }
    out
}

fn operand_text(op: Operand) -> String {
    match op {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(i) => i.to_string(),
    }
}

fn mem_text(base: Reg, off: i16) -> String {
    if off == 0 {
        format!("[{base}]")
    } else if off < 0 {
        format!("[{base}{off}]")
    } else {
        format!("[{base}+{off}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{MapDef, MapKind};

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            r#"
            ; compute 6*7
            mov r0, 6
            mov r1, 7
            mul r0, r1
            exit
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.insns()[2],
            Insn::Alu {
                wide: true,
                op: AluOp::Mul,
                dst: Reg::R0,
                src: Operand::Reg(Reg::R1)
            }
        );
    }

    #[test]
    fn labels_and_jumps() {
        let p = assemble(
            r#"
            mov r0, 0
            jeq r0, 0, done
            mov r0, 1
        done:
            exit
            "#,
        )
        .unwrap();
        assert_eq!(
            p.insns()[1],
            Insn::Jmp {
                op: JmpOp::Eq,
                dst: Reg::R0,
                src: Operand::Imm(0),
                off: 1
            }
        );
    }

    #[test]
    fn memory_and_wide_immediates() {
        let p = assemble(
            r#"
            ld64 r1, 0xdeadbeefcafef00d
            stxdw [r10-8], r1
            ldxdw r0, [r10-8]
            stw [r10-12], -5
            exit
            "#,
        )
        .unwrap();
        assert_eq!(
            p.insns()[0],
            Insn::LdImm64 {
                dst: Reg::R1,
                imm: 0xdead_beef_cafe_f00d
            }
        );
        assert_eq!(
            p.insns()[3],
            Insn::Store {
                size: MemSize::W,
                base: Reg::R10,
                off: -12,
                src: Operand::Imm(-5)
            }
        );
    }

    #[test]
    fn helper_by_name_and_number() {
        let p = assemble("call cpu_id\ncall 4\nexit").unwrap();
        assert_eq!(p.insns()[0], Insn::Call { helper: 5 });
        assert_eq!(p.insns()[1], Insn::Call { helper: 4 });
    }

    #[test]
    fn maps_resolved_by_name() {
        let m = Arc::new(Map::new(MapDef {
            name: "counts".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 1,
        }));
        let p = assemble_named("t", "ldmap r1, counts\nmov r0, 0\nexit", &[m]).unwrap();
        assert_eq!(
            p.insns()[0],
            Insn::LdMapRef {
                dst: Reg::R1,
                map_id: 0
            }
        );
        let e = assemble_named("t", "ldmap r1, nope\nexit", &[]).unwrap_err();
        assert!(e.msg.contains("unknown map"));
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("mov r0, 0\nbogus r1\nexit").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn rejects_bad_register_and_duplicate_label() {
        assert!(assemble("mov r11, 0\nexit").is_err());
        assert!(assemble("x:\nx:\nexit").is_err());
        let e = assemble("ja nowhere\nexit").unwrap_err();
        assert!(e.msg.contains("undefined label"));
    }

    #[test]
    fn neg_and_32bit_ops() {
        let p = assemble("mov r0, 5\nneg r0\nadd32 r0, 1\nexit").unwrap();
        assert_eq!(
            p.insns()[1],
            Insn::Alu {
                wide: true,
                op: AluOp::Neg,
                dst: Reg::R0,
                src: Operand::Imm(0)
            }
        );
        assert_eq!(
            p.insns()[2],
            Insn::Alu {
                wide: false,
                op: AluOp::Add,
                dst: Reg::R0,
                src: Operand::Imm(1)
            }
        );
    }

    #[test]
    fn disassemble_assemble_roundtrip() {
        let m = Arc::new(Map::new(MapDef {
            name: "stats".into(),
            kind: MapKind::Hash,
            key_size: 4,
            value_size: 8,
            max_entries: 8,
        }));
        let src = r#"
            ldmap r1, stats
            st w [r10-4], 1
            mov r2, r10
            add r2, -4
            call map_lookup_elem
            jne r0, 0, hit
            mov r0, 0
            exit
        hit:
            ldxdw r0, [r0]
            exit
        "#
        .replace("st w", "stw");
        let p1 = assemble_named("rt", &src, std::slice::from_ref(&m)).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble_named("rt", &text, &[m]).unwrap();
        assert_eq!(p1.insns(), p2.insns());
    }

    #[test]
    fn unsigned_hex_immediate_fits() {
        let p = assemble("mov r0, 0xffffffff\nexit").unwrap();
        assert_eq!(
            p.insns()[0],
            Insn::Alu {
                wide: true,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Operand::Imm(-1)
            }
        );
    }
}
