//! In-memory object store — the analog of the BPF filesystem.
//!
//! Step 5 of the Concord workflow (Fig. 1) stores the compiled, verified
//! policy "in the file system" so it can be attached later and survive the
//! attaching process. This store pins verified programs and maps under
//! hierarchical paths (`"locks/mmap_sem/cmp_node"`).
//!
//! Only verified programs can be pinned: [`ObjectStore::pin_program`] takes
//! a [`VerifiedProgram`] token, which is only produced by
//! [`VerifiedProgram::new`] running the verifier.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::ctx::CtxLayout;
use crate::error::VerifyError;
use crate::map::Map;
use crate::prepare::PreparedProgram;
use crate::program::Program;
use crate::verifier::{verify_with_rules, HookRules};

/// A program that has passed verification against a specific layout and
/// hook rules; the only currency [`ObjectStore`] accepts.
///
/// Verification also lowers the program to its [`PreparedProgram`] fast
/// execution form once, so every attach site shares the pre-decoded code.
#[derive(Clone)]
pub struct VerifiedProgram {
    prog: Arc<Program>,
    layout: CtxLayout,
    rules: HookRules,
    prepared: Arc<PreparedProgram>,
}

impl VerifiedProgram {
    /// Verifies `prog` and wraps it on success.
    ///
    /// # Errors
    ///
    /// Propagates the verifier's rejection.
    pub fn new(prog: Program, layout: &CtxLayout, rules: &HookRules) -> Result<Self, VerifyError> {
        verify_with_rules(&prog, layout, rules)?;
        let prepared = prog.prepare(layout);
        Ok(VerifiedProgram {
            prog: Arc::new(prog),
            layout: layout.clone(),
            rules: rules.clone(),
            prepared: Arc::new(prepared),
        })
    }

    /// The hook rules the program was verified under.
    pub fn rules(&self) -> &HookRules {
        &self.rules
    }

    /// Serializes this verified policy into a [`crate::wire`] artifact,
    /// sealed against exactly the layout and rules it verified under.
    pub fn seal(&self) -> Vec<u8> {
        crate::wire::seal(self, &self.rules)
    }

    /// The verified program.
    pub fn program(&self) -> &Arc<Program> {
        &self.prog
    }

    /// The layout the program was verified against.
    pub fn layout(&self) -> &CtxLayout {
        &self.layout
    }

    /// The pre-decoded execution form; the path hook tables should run.
    pub fn prepared(&self) -> &Arc<PreparedProgram> {
        &self.prepared
    }
}

impl std::fmt::Debug for VerifiedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedProgram")
            .field("name", &self.prog.name())
            .finish()
    }
}

/// Pinned-object namespace for verified programs and maps.
#[derive(Default)]
pub struct ObjectStore {
    programs: RwLock<BTreeMap<String, VerifiedProgram>>,
    maps: RwLock<BTreeMap<String, Arc<Map>>>,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Pins a verified program at `path`, replacing any previous object.
    pub fn pin_program(&self, path: &str, prog: VerifiedProgram) {
        self.programs.write().insert(path.to_string(), prog);
    }

    /// Fetches a pinned program.
    pub fn get_program(&self, path: &str) -> Option<VerifiedProgram> {
        self.programs.read().get(path).cloned()
    }

    /// Removes a pinned program; returns it if present.
    pub fn unlink_program(&self, path: &str) -> Option<VerifiedProgram> {
        self.programs.write().remove(path)
    }

    /// Pins a map at `path`.
    pub fn pin_map(&self, path: &str, map: Arc<Map>) {
        self.maps.write().insert(path.to_string(), map);
    }

    /// Fetches a pinned map.
    pub fn get_map(&self, path: &str) -> Option<Arc<Map>> {
        self.maps.read().get(path).cloned()
    }

    /// Removes a pinned map; returns it if present.
    pub fn unlink_map(&self, path: &str) -> Option<Arc<Map>> {
        self.maps.write().remove(path)
    }

    /// Program paths under `prefix`, sorted.
    pub fn list_programs(&self, prefix: &str) -> Vec<String> {
        self.programs
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Map paths under `prefix`, sorted.
    pub fn list_maps(&self, prefix: &str) -> Vec<String> {
        self.maps
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Reg;
    use crate::map::{MapDef, MapKind};
    use crate::program::ProgramBuilder;

    fn verified() -> VerifiedProgram {
        let mut b = ProgramBuilder::new("p");
        b.mov_imm(Reg::R0, 0);
        b.exit();
        VerifiedProgram::new(
            b.build().unwrap(),
            &CtxLayout::empty(),
            &HookRules::permissive(),
        )
        .unwrap()
    }

    #[test]
    fn only_verified_programs_can_exist() {
        let bad = Program::new("bad", vec![], vec![]);
        assert!(matches!(
            VerifiedProgram::new(bad, &CtxLayout::empty(), &HookRules::permissive()),
            Err(VerifyError::BadProgramSize { .. })
        ));
    }

    #[test]
    fn pin_get_unlink_program() {
        let store = ObjectStore::new();
        store.pin_program("locks/mmap_sem/cmp_node", verified());
        assert!(store.get_program("locks/mmap_sem/cmp_node").is_some());
        assert!(store.get_program("locks/other").is_none());
        assert!(store.unlink_program("locks/mmap_sem/cmp_node").is_some());
        assert!(store.get_program("locks/mmap_sem/cmp_node").is_none());
        assert!(store.unlink_program("locks/mmap_sem/cmp_node").is_none());
    }

    #[test]
    fn list_by_prefix_sorted() {
        let store = ObjectStore::new();
        store.pin_program("locks/b", verified());
        store.pin_program("locks/a", verified());
        store.pin_program("profile/x", verified());
        assert_eq!(store.list_programs("locks/"), vec!["locks/a", "locks/b"]);
        assert_eq!(
            store.list_programs(""),
            vec!["locks/a", "locks/b", "profile/x"]
        );
    }

    #[test]
    fn maps_pin_roundtrip() {
        let store = ObjectStore::new();
        let m = Arc::new(Map::new(MapDef {
            name: "m".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 1,
        }));
        store.pin_map("maps/m", Arc::clone(&m));
        let got = store.get_map("maps/m").unwrap();
        assert_eq!(got.def().name, "m");
        assert_eq!(store.list_maps("maps/"), vec!["maps/m"]);
        assert!(store.unlink_map("maps/m").is_some());
        assert!(store.get_map("maps/m").is_none());
    }

    #[test]
    fn pin_replaces_previous() {
        let store = ObjectStore::new();
        store.pin_program("x", verified());
        let mut b = ProgramBuilder::new("second");
        b.mov_imm(Reg::R0, 1);
        b.exit();
        let v2 = VerifiedProgram::new(
            b.build().unwrap(),
            &CtxLayout::empty(),
            &HookRules::permissive(),
        )
        .unwrap();
        store.pin_program("x", v2);
        assert_eq!(store.get_program("x").unwrap().program().name(), "second");
    }
}
