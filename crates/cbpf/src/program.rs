//! Programs and a label-based builder API.
//!
//! A [`Program`] bundles decoded instructions with its map table — the
//! analog of a loaded eBPF object. Policies can be produced three ways:
//! hand-written assembly ([`crate::asm`]), the [`ProgramBuilder`] (used by
//! Concord's prebuilt policy library), or raw instruction vectors in tests.

use std::sync::Arc;

use crate::error::AsmError;
use crate::helpers::HelperId;
use crate::insn::{AluOp, Insn, JmpOp, MemSize, Operand, Reg};
use crate::map::Map;

/// A policy program plus its referenced maps.
#[derive(Clone)]
pub struct Program {
    name: String,
    insns: Vec<Insn>,
    maps: Vec<Arc<Map>>,
}

impl Program {
    /// Creates a program from parts.
    pub fn new(name: impl Into<String>, insns: Vec<Insn>, maps: Vec<Arc<Map>>) -> Self {
        Program {
            name: name.into(),
            insns,
            maps,
        }
    }

    /// Program name (used by the object store).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// The map table.
    pub fn maps(&self) -> &[Arc<Map>] {
        &self.maps
    }

    /// Resolves a map id from the table.
    pub fn map(&self, id: u32) -> Option<&Arc<Map>> {
        self.maps.get(id as usize)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("insns", &self.insns.len())
            .field("maps", &self.maps.len())
            .finish()
    }
}

#[derive(Clone, Debug)]
enum PendingJump {
    None,
    Label(String),
}

/// Fluent program builder with forward-reference labels.
///
/// # Examples
///
/// ```
/// use cbpf::program::ProgramBuilder;
/// use cbpf::insn::{JmpOp, Reg};
/// use cbpf::helpers::HelperId;
///
/// // return numa_id() == 0 ? 1 : 0
/// let mut b = ProgramBuilder::new("is_node0");
/// b.call(HelperId::NumaId);
/// b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "yes");
/// b.mov_imm(Reg::R0, 0);
/// b.exit();
/// b.label("yes");
/// b.mov_imm(Reg::R0, 1);
/// b.exit();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.len(), 6);
/// ```
pub struct ProgramBuilder {
    name: String,
    insns: Vec<Insn>,
    jumps: Vec<PendingJump>,
    labels: Vec<(String, usize)>,
    maps: Vec<Arc<Map>>,
}

impl ProgramBuilder {
    /// Starts a program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insns: Vec::new(),
            jumps: Vec::new(),
            labels: Vec::new(),
            maps: Vec::new(),
        }
    }

    /// Registers a map and returns its id for [`ProgramBuilder::ldmap`].
    pub fn register_map(&mut self, map: Arc<Map>) -> u32 {
        self.maps.push(map);
        (self.maps.len() - 1) as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.labels.push((name.into(), self.insns.len()));
        self
    }

    fn push(&mut self, insn: Insn) -> &mut Self {
        self.insns.push(insn);
        self.jumps.push(PendingJump::None);
        self
    }

    /// `dst = src` (64-bit).
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn::Alu {
            wide: true,
            op: AluOp::Mov,
            dst,
            src: Operand::Reg(src),
        })
    }

    /// `dst = imm` (sign-extended 32-bit immediate).
    pub fn mov_imm(&mut self, dst: Reg, imm: i32) -> &mut Self {
        self.push(Insn::Alu {
            wide: true,
            op: AluOp::Mov,
            dst,
            src: Operand::Imm(imm),
        })
    }

    /// `dst = imm` (full 64 bits).
    pub fn ld_imm64(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.push(Insn::LdImm64 { dst, imm })
    }

    /// `dst = &maps[map_id]`.
    pub fn ldmap(&mut self, dst: Reg, map_id: u32) -> &mut Self {
        self.push(Insn::LdMapRef { dst, map_id })
    }

    /// `dst = dst op src` (64-bit).
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn::Alu {
            wide: true,
            op,
            dst,
            src: Operand::Reg(src),
        })
    }

    /// `dst = dst op imm` (64-bit).
    pub fn alu_imm(&mut self, op: AluOp, dst: Reg, imm: i32) -> &mut Self {
        self.push(Insn::Alu {
            wide: true,
            op,
            dst,
            src: Operand::Imm(imm),
        })
    }

    /// `dst = dst op src` (32-bit, zero-extending).
    pub fn alu32(&mut self, op: AluOp, dst: Reg, src: Reg) -> &mut Self {
        self.push(Insn::Alu {
            wide: false,
            op,
            dst,
            src: Operand::Reg(src),
        })
    }

    /// `dst = dst op imm` (32-bit, zero-extending).
    pub fn alu32_imm(&mut self, op: AluOp, dst: Reg, imm: i32) -> &mut Self {
        self.push(Insn::Alu {
            wide: false,
            op,
            dst,
            src: Operand::Imm(imm),
        })
    }

    /// `dst = *(size*)(base + off)`.
    pub fn load(&mut self, size: MemSize, dst: Reg, base: Reg, off: i16) -> &mut Self {
        self.push(Insn::Load {
            size,
            dst,
            base,
            off,
        })
    }

    /// `*(size*)(base + off) = src`.
    pub fn store(&mut self, size: MemSize, base: Reg, off: i16, src: Reg) -> &mut Self {
        self.push(Insn::Store {
            size,
            base,
            off,
            src: Operand::Reg(src),
        })
    }

    /// `*(size*)(base + off) = imm`.
    pub fn store_imm(&mut self, size: MemSize, base: Reg, off: i16, imm: i32) -> &mut Self {
        self.push(Insn::Store {
            size,
            base,
            off,
            src: Operand::Imm(imm),
        })
    }

    /// Unconditional jump to `label`.
    pub fn ja(&mut self, label: impl Into<String>) -> &mut Self {
        self.insns.push(Insn::Ja { off: 0 });
        self.jumps.push(PendingJump::Label(label.into()));
        self
    }

    /// Conditional jump (register RHS) to `label`.
    pub fn jmp(&mut self, op: JmpOp, dst: Reg, src: Reg, label: impl Into<String>) -> &mut Self {
        self.insns.push(Insn::Jmp {
            op,
            dst,
            src: Operand::Reg(src),
            off: 0,
        });
        self.jumps.push(PendingJump::Label(label.into()));
        self
    }

    /// Conditional jump (immediate RHS) to `label`.
    pub fn jmp_imm(
        &mut self,
        op: JmpOp,
        dst: Reg,
        imm: i32,
        label: impl Into<String>,
    ) -> &mut Self {
        self.insns.push(Insn::Jmp {
            op,
            dst,
            src: Operand::Imm(imm),
            off: 0,
        });
        self.jumps.push(PendingJump::Label(label.into()));
        self
    }

    /// Helper call.
    pub fn call(&mut self, helper: HelperId) -> &mut Self {
        self.push(Insn::Call {
            helper: helper as u32,
        })
    }

    /// Program exit (returns `r0`).
    pub fn exit(&mut self) -> &mut Self {
        self.push(Insn::Exit)
    }

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on an undefined or duplicate label, or a jump
    /// offset that does not fit in 16 bits.
    pub fn build(self) -> Result<Program, AsmError> {
        let mut insns = self.insns;
        for (name, _) in &self.labels {
            if self.labels.iter().filter(|(n, _)| n == name).count() > 1 {
                return Err(AsmError {
                    line: 0,
                    msg: format!("duplicate label `{name}`"),
                });
            }
        }
        for (pc, pending) in self.jumps.iter().enumerate() {
            if let PendingJump::Label(name) = pending {
                let target = self
                    .labels
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, pos)| *pos)
                    .ok_or_else(|| AsmError {
                        line: 0,
                        msg: format!("undefined label `{name}`"),
                    })?;
                let rel = target as i64 - pc as i64 - 1;
                let off = i16::try_from(rel).map_err(|_| AsmError {
                    line: 0,
                    msg: format!("jump to `{name}` out of i16 range"),
                })?;
                match &mut insns[pc] {
                    Insn::Ja { off: o } => *o = off,
                    Insn::Jmp { off: o, .. } => *o = off,
                    _ => unreachable!("pending jump recorded for non-jump"),
                }
            }
        }
        Ok(Program {
            name: self.name,
            insns,
            maps: self.maps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{MapDef, MapKind};

    #[test]
    fn labels_resolve_forward_and_backward_refused_later_by_verifier() {
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.jmp_imm(JmpOp::Eq, Reg::R0, 0, "end");
        b.mov_imm(Reg::R0, 1);
        b.label("end");
        b.exit();
        let p = b.build().unwrap();
        match p.insns()[1] {
            Insn::Jmp { off, .. } => assert_eq!(off, 1),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.ja("nowhere");
        b.exit();
        let err = b.build().unwrap_err();
        assert!(err.msg.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new("t");
        b.label("x");
        b.mov_imm(Reg::R0, 0);
        b.label("x");
        b.exit();
        let err = b.build().unwrap_err();
        assert!(err.msg.contains("duplicate label"));
    }

    #[test]
    fn maps_registered_in_order() {
        let mut b = ProgramBuilder::new("t");
        let m1 = Arc::new(Map::new(MapDef {
            name: "one".into(),
            kind: MapKind::Array,
            key_size: 4,
            value_size: 8,
            max_entries: 1,
        }));
        let m2 = Arc::new(Map::new(MapDef {
            name: "two".into(),
            kind: MapKind::Hash,
            key_size: 8,
            value_size: 8,
            max_entries: 8,
        }));
        assert_eq!(b.register_map(m1), 0);
        assert_eq!(b.register_map(m2), 1);
        b.mov_imm(Reg::R0, 0);
        b.exit();
        let p = b.build().unwrap();
        assert_eq!(p.map(0).unwrap().def().name, "one");
        assert_eq!(p.map(1).unwrap().def().name, "two");
        assert!(p.map(2).is_none());
    }

    #[test]
    fn jump_to_own_label_is_offset_minus_one() {
        // A jump targeting itself (label right before it) resolves to -1;
        // the verifier will reject it as a back edge, but the builder must
        // encode it faithfully.
        let mut b = ProgramBuilder::new("t");
        b.mov_imm(Reg::R0, 0);
        b.label("self");
        b.ja("self");
        b.exit();
        let p = b.build().unwrap();
        match p.insns()[1] {
            Insn::Ja { off } => assert_eq!(off, -1),
            ref other => panic!("unexpected {other:?}"),
        }
    }
}
