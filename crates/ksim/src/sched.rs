//! Schedule exploration: strategy-driven interleaving control.
//!
//! Lock algorithms expose **schedule points** — the hook sites where the
//! paper's policies run: acquire entry, slow-path entry, critical-section
//! entry, release, shuffler phases. A [`SchedController`] installed on a
//! [`crate::Sim`] is consulted at every point and may inject a delay or a
//! vCPU preemption there, steering the interleaving. With no controller
//! installed a schedule point is a strict no-op: it charges no virtual
//! time, consumes no randomness and schedules no event, so every existing
//! run (figures, determinism gates) is bit-identical.
//!
//! This is the mechanism behind `concord::explore`, the systematic
//! concurrency-testing subsystem ("Concurrency Testing in the Linux Kernel
//! via eBPF" adapted to the DES): strategies perturb schedules, oracles
//! check the runs, and failing injection logs shrink to minimal replayable
//! artifacts.

use std::cell::RefCell;
use std::collections::HashMap;

use crate::exec::TaskId;
use crate::rng::SplitMix64;

/// Upper bound on a single injected delay or preemption window (virtual
/// ns). Keeps exploration runs finite and replay artifacts sane.
pub const MAX_INJECT_NS: u64 = 200_000;

/// Where in a lock algorithm a schedule point sits (the injection-point
/// enumeration of the hook sites in Table 1, plus the algorithm-internal
/// race windows a tester cares about).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SchedSite {
    /// Entry to an acquire path, before the fast-path attempt.
    Acquire,
    /// Slow path entered: the task is about to queue or spin.
    Contended,
    /// The lock was just acquired (critical-section entry).
    Acquired,
    /// The lock is about to be released.
    Release,
    /// A shuffler phase is about to run (queue reordering span).
    Shuffle,
    /// A policy/hook dispatch span.
    HookDispatch,
    /// An algorithm-internal window between two racy steps (e.g. between
    /// an MCS tail swap and the predecessor link store).
    Window,
}

impl SchedSite {
    /// Every site, in stable order.
    pub const ALL: [SchedSite; 7] = [
        SchedSite::Acquire,
        SchedSite::Contended,
        SchedSite::Acquired,
        SchedSite::Release,
        SchedSite::Shuffle,
        SchedSite::HookDispatch,
        SchedSite::Window,
    ];

    /// Stable name (artifact files, ctx marshalling).
    pub fn name(self) -> &'static str {
        match self {
            SchedSite::Acquire => "acquire",
            SchedSite::Contended => "contended",
            SchedSite::Acquired => "acquired",
            SchedSite::Release => "release",
            SchedSite::Shuffle => "shuffle",
            SchedSite::HookDispatch => "hook_dispatch",
            SchedSite::Window => "window",
        }
    }

    /// Inverse of [`SchedSite::name`].
    pub fn from_name(s: &str) -> Option<SchedSite> {
        SchedSite::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Stable small integer (ctx marshalling).
    pub fn code(self) -> u32 {
        SchedSite::ALL.iter().position(|s| *s == self).unwrap() as u32
    }
}

/// One visit to a schedule point, as presented to a strategy.
#[derive(Clone, Copy, Debug)]
pub struct SchedPoint {
    /// Global ordinal of this point within the run (0-based).
    pub index: u64,
    /// Ordinal of this point within the arriving task (0-based). Replay
    /// keys injections by `(task, task_seq)`: per-task ordinals survive
    /// cross-task reorderings that a global index would not.
    pub task_seq: u64,
    /// Which site fired.
    pub site: SchedSite,
    /// The arriving task.
    pub task: TaskId,
    /// Its pinned CPU.
    pub cpu: u32,
    /// Its socket.
    pub socket: u32,
    /// Identity of the lock (0 when the site has no lock).
    pub lock_id: u64,
    /// Virtual time of the visit.
    pub now_ns: u64,
}

/// What a strategy does at a schedule point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedAction {
    /// Continue untouched (charges nothing).
    Proceed,
    /// Suspend the arriving task for the given virtual nanoseconds.
    Delay(u64),
    /// Take the arriving task's vCPU offline for the given window (the
    /// §3.1.1 double-scheduling model: everything pinned there stalls).
    Preempt(u64),
}

impl SchedAction {
    fn capped(self) -> SchedAction {
        match self {
            SchedAction::Proceed | SchedAction::Delay(0) | SchedAction::Preempt(0) => {
                SchedAction::Proceed
            }
            SchedAction::Delay(ns) => SchedAction::Delay(ns.min(MAX_INJECT_NS)),
            SchedAction::Preempt(ns) => SchedAction::Preempt(ns.min(MAX_INJECT_NS)),
        }
    }
}

/// A pluggable schedule-exploration strategy.
pub trait ScheduleStrategy {
    /// Decides what happens at `p`. Called once per schedule point, in
    /// deterministic order.
    fn decide(&mut self, p: &SchedPoint) -> SchedAction;

    /// Short stable name for reports and artifacts.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// An injection a run actually performed: the `(task, task_seq)` key plus
/// the action. A list of these, with the seed and strategy descriptor, is
/// the replayable schedule artifact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Injection {
    /// Arriving task id (`TaskId.0`).
    pub task: u32,
    /// Per-task schedule-point ordinal at which the action fired.
    pub task_seq: u64,
    /// The (capped, non-`Proceed`) action.
    pub action: SchedAction,
}

struct ControllerState {
    strategy: Box<dyn ScheduleStrategy>,
    next_index: u64,
    per_task: HashMap<u32, u64>,
    log: Vec<Injection>,
}

/// Wraps a [`ScheduleStrategy`] for installation into a `Sim`: numbers
/// schedule points (globally and per task), caps actions at
/// [`MAX_INJECT_NS`], and records every non-`Proceed` decision so a
/// failing run can be shrunk and replayed.
pub struct SchedController {
    inner: RefCell<ControllerState>,
}

impl SchedController {
    /// Creates a controller around `strategy`.
    pub fn new(strategy: Box<dyn ScheduleStrategy>) -> Self {
        SchedController {
            inner: RefCell::new(ControllerState {
                strategy,
                next_index: 0,
                per_task: HashMap::new(),
                log: Vec::new(),
            }),
        }
    }

    /// Schedule points visited so far.
    pub fn points(&self) -> u64 {
        self.inner.borrow().next_index
    }

    /// The injection log so far (non-`Proceed` decisions, in firing order).
    pub fn injections(&self) -> Vec<Injection> {
        self.inner.borrow().log.clone()
    }

    /// The wrapped strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.inner.borrow().strategy.name()
    }

    /// Consults the strategy for one point; called by the executor.
    pub(crate) fn on_point(
        &self,
        site: SchedSite,
        task: TaskId,
        cpu: u32,
        socket: u32,
        lock_id: u64,
        now_ns: u64,
    ) -> SchedAction {
        let mut st = self.inner.borrow_mut();
        let index = st.next_index;
        st.next_index += 1;
        let seq = st.per_task.entry(task.0).or_insert(0);
        let task_seq = *seq;
        *seq += 1;
        let p = SchedPoint {
            index,
            task_seq,
            site,
            task,
            cpu,
            socket,
            lock_id,
            now_ns,
        };
        let action = st.strategy.decide(&p).capped();
        if action != SchedAction::Proceed {
            st.log.push(Injection {
                task: task.0,
                task_seq,
                action,
            });
        }
        action
    }
}

/// Bounded random delay injection: at each point, with probability
/// `p_mille`/1000, delay the arriving task by a random amount up to
/// `max_delay_ns`. The classic "naive randomized" baseline.
pub struct RandomDelayStrategy {
    rng: SplitMix64,
    p_mille: u32,
    max_delay_ns: u64,
}

impl RandomDelayStrategy {
    /// Creates a strategy with its own RNG stream (independent of the
    /// sim's seed, so installing it never perturbs workload randomness).
    pub fn new(seed: u64, p_mille: u32, max_delay_ns: u64) -> Self {
        RandomDelayStrategy {
            rng: SplitMix64::new(seed ^ 0x5eed_5eed_0bad_cafe),
            p_mille: p_mille.min(1000),
            max_delay_ns: max_delay_ns.clamp(1, MAX_INJECT_NS),
        }
    }
}

impl ScheduleStrategy for RandomDelayStrategy {
    fn decide(&mut self, _p: &SchedPoint) -> SchedAction {
        if self.rng.next_u64() % 1000 < u64::from(self.p_mille) {
            SchedAction::Delay(1 + self.rng.next_u64() % self.max_delay_ns)
        } else {
            SchedAction::Proceed
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// PCT-style randomized priorities with `d` change points, adapted to the
/// DES: each task draws a random priority in `0..buckets`; at every
/// schedule point the task is held back by `priority × unit` (priority 0
/// runs unhindered — the DES analog of "the highest-priority runnable
/// thread executes"). At `d` pre-drawn change-point ordinals, the arriving
/// task's priority is re-randomized, which is where the PCT guarantee of
/// covering depth-`d` bugs comes from.
pub struct PctStrategy {
    rng: SplitMix64,
    buckets: u64,
    unit_ns: u64,
    change_points: Vec<u64>,
    priorities: HashMap<u32, u64>,
}

impl PctStrategy {
    /// Creates a PCT strategy: `buckets` priority levels, `d` change
    /// points drawn over an expected `horizon` schedule points.
    pub fn new(seed: u64, buckets: u64, d: u32, horizon: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9c7_0000_0bad_beef);
        let horizon = horizon.max(1);
        let mut change_points: Vec<u64> = (0..d).map(|_| rng.next_u64() % horizon).collect();
        change_points.sort_unstable();
        PctStrategy {
            rng,
            buckets: buckets.max(2),
            unit_ns: 2_000,
            change_points,
            priorities: HashMap::new(),
        }
    }
}

impl ScheduleStrategy for PctStrategy {
    fn decide(&mut self, p: &SchedPoint) -> SchedAction {
        if self.change_points.binary_search(&p.index).is_ok() {
            let prio = self.rng.next_u64() % self.buckets;
            self.priorities.insert(p.task.0, prio);
        }
        let prio = match self.priorities.get(&p.task.0) {
            Some(v) => *v,
            None => {
                let v = self.rng.next_u64() % self.buckets;
                self.priorities.insert(p.task.0, v);
                v
            }
        };
        if prio == 0 {
            SchedAction::Proceed
        } else {
            SchedAction::Delay(prio * self.unit_ns)
        }
    }

    fn name(&self) -> &'static str {
        "pct"
    }
}

/// Replays a recorded injection list: the action fires when the arriving
/// task reaches the recorded per-task ordinal; everything else proceeds.
/// With the same sim seed this reproduces the recorded run bit-identically
/// (same trace hash), which is the repro-artifact contract.
pub struct ReplayStrategy {
    by_key: HashMap<(u32, u64), SchedAction>,
}

impl ReplayStrategy {
    /// Creates a replay strategy from an injection list.
    pub fn new(injections: &[Injection]) -> Self {
        ReplayStrategy {
            by_key: injections
                .iter()
                .map(|i| ((i.task, i.task_seq), i.action))
                .collect(),
        }
    }
}

impl ScheduleStrategy for ReplayStrategy {
    fn decide(&mut self, p: &SchedPoint) -> SchedAction {
        self.by_key
            .get(&(p.task.0, p.task_seq))
            .copied()
            .unwrap_or(SchedAction::Proceed)
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(index: u64, task: u32, task_seq: u64) -> SchedPoint {
        SchedPoint {
            index,
            task_seq,
            site: SchedSite::Acquire,
            task: TaskId(task),
            cpu: 0,
            socket: 0,
            lock_id: 1,
            now_ns: 0,
        }
    }

    #[test]
    fn site_names_roundtrip() {
        for s in SchedSite::ALL {
            assert_eq!(SchedSite::from_name(s.name()), Some(s));
            assert_eq!(SchedSite::ALL[s.code() as usize], s);
        }
        assert_eq!(SchedSite::from_name("bogus"), None);
    }

    #[test]
    fn controller_numbers_points_and_logs_injections() {
        struct EveryOther(bool);
        impl ScheduleStrategy for EveryOther {
            fn decide(&mut self, _: &SchedPoint) -> SchedAction {
                self.0 = !self.0;
                if self.0 {
                    SchedAction::Delay(10)
                } else {
                    SchedAction::Proceed
                }
            }
        }
        let c = SchedController::new(Box::new(EveryOther(false)));
        for i in 0..4 {
            c.on_point(SchedSite::Acquire, TaskId(i % 2), 0, 0, 7, 0);
        }
        assert_eq!(c.points(), 4);
        let log = c.injections();
        assert_eq!(log.len(), 2);
        // Tasks 0 and 1 alternate, so each fired once at its ordinal 0.
        assert_eq!(log[0], Injection { task: 0, task_seq: 0, action: SchedAction::Delay(10) });
        assert_eq!(log[1], Injection { task: 0, task_seq: 1, action: SchedAction::Delay(10) });
    }

    #[test]
    fn actions_are_capped_and_normalized() {
        assert_eq!(SchedAction::Delay(0).capped(), SchedAction::Proceed);
        assert_eq!(
            SchedAction::Delay(u64::MAX).capped(),
            SchedAction::Delay(MAX_INJECT_NS)
        );
        assert_eq!(
            SchedAction::Preempt(u64::MAX).capped(),
            SchedAction::Preempt(MAX_INJECT_NS)
        );
    }

    #[test]
    fn random_strategy_is_seed_deterministic() {
        let run = |seed| {
            let mut s = RandomDelayStrategy::new(seed, 300, 5_000);
            (0..64).map(|i| s.decide(&point(i, 0, i))).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        assert!(run(9).iter().any(|a| *a != SchedAction::Proceed));
        assert!(run(9).iter().any(|a| *a == SchedAction::Proceed));
    }

    #[test]
    fn pct_priority_zero_tasks_proceed() {
        let mut s = PctStrategy::new(3, 4, 2, 100);
        let actions: Vec<_> = (0..50)
            .map(|i| s.decide(&point(i, (i % 5) as u32, i / 5)))
            .collect();
        // Deterministic for a fixed seed, and some task draws priority 0.
        let mut s2 = PctStrategy::new(3, 4, 2, 100);
        let actions2: Vec<_> = (0..50)
            .map(|i| s2.decide(&point(i, (i % 5) as u32, i / 5)))
            .collect();
        assert_eq!(actions, actions2);
        // Priority-driven holds are whole multiples of the unit and stay
        // under the bucket ceiling.
        for a in &actions {
            if let SchedAction::Delay(ns) = a {
                assert!(*ns % 2_000 == 0 && *ns <= 3 * 2_000, "bad PCT delay {ns}");
            }
        }
    }

    #[test]
    fn replay_matches_only_recorded_keys() {
        let inj = [Injection {
            task: 2,
            task_seq: 3,
            action: SchedAction::Delay(42),
        }];
        let mut s = ReplayStrategy::new(&inj);
        assert_eq!(s.decide(&point(0, 2, 3)), SchedAction::Delay(42));
        assert_eq!(s.decide(&point(1, 2, 4)), SchedAction::Proceed);
        assert_eq!(s.decide(&point(2, 1, 3)), SchedAction::Proceed);
    }
}
