//! Virtual machine topology: sockets, cores and the CPU⇄socket mapping.

use std::fmt;

/// Identifier of a virtual CPU (hardware thread) in the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CpuId(pub u32);

/// Identifier of a socket (NUMA node) in the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SocketId(pub u32);

impl From<u32> for CpuId {
    fn from(v: u32) -> Self {
        CpuId(v)
    }
}

impl From<usize> for CpuId {
    fn from(v: usize) -> Self {
        CpuId(v as u32)
    }
}

impl From<u32> for SocketId {
    fn from(v: u32) -> Self {
        SocketId(v)
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Shape of the simulated machine.
///
/// CPUs are numbered contiguously; CPU `c` belongs to socket
/// `c / cores_per_socket`, matching the block-wise enumeration Linux uses on
/// most multi-socket x86 machines.
///
/// # Examples
///
/// ```
/// use ksim::{CpuId, Topology};
///
/// // The paper's evaluation machine: 8 sockets, 80 cores.
/// let topo = Topology::paper_machine();
/// assert_eq!(topo.num_cpus(), 80);
/// assert_eq!(topo.socket_of(CpuId(0)).0, 0);
/// assert_eq!(topo.socket_of(CpuId(79)).0, 7);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    sockets: u32,
    cores_per_socket: u32,
}

impl Topology {
    /// Creates a topology with the given socket count and cores per socket.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sockets: u32, cores_per_socket: u32) -> Self {
        assert!(sockets > 0, "topology needs at least one socket");
        assert!(cores_per_socket > 0, "topology needs at least one core");
        Topology {
            sockets,
            cores_per_socket,
        }
    }

    /// The 8-socket, 80-core machine used in the paper's evaluation (§5).
    pub fn paper_machine() -> Self {
        Topology::new(8, 10)
    }

    /// A small topology convenient for unit tests.
    pub fn small() -> Self {
        Topology::new(2, 4)
    }

    /// Total number of CPUs.
    pub fn num_cpus(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Number of sockets (NUMA nodes).
    pub fn num_sockets(&self) -> u32 {
        self.sockets
    }

    /// Number of cores on each socket.
    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// Socket that owns the given CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the topology.
    pub fn socket_of(&self, cpu: CpuId) -> SocketId {
        assert!(
            cpu.0 < self.num_cpus(),
            "{cpu} outside topology of {} cpus",
            self.num_cpus()
        );
        SocketId(cpu.0 / self.cores_per_socket)
    }

    /// CPUs belonging to a socket, in ascending order.
    pub fn cpus_of(&self, socket: SocketId) -> impl Iterator<Item = CpuId> {
        assert!(socket.0 < self.sockets, "{socket} outside topology");
        let base = socket.0 * self.cores_per_socket;
        (base..base + self.cores_per_socket).map(CpuId)
    }

    /// All CPUs in ascending order.
    pub fn all_cpus(&self) -> impl Iterator<Item = CpuId> {
        (0..self.num_cpus()).map(CpuId)
    }

    /// Spreads `n` tasks over CPUs socket-by-socket ("compact" placement):
    /// fills socket 0 first, then socket 1, and so on.
    ///
    /// This mirrors how will-it-scale pins threads and is the placement used
    /// by the figure benchmarks.
    pub fn compact_placement(&self, n: usize) -> Vec<CpuId> {
        (0..n)
            .map(|i| CpuId((i as u32) % self.num_cpus()))
            .collect()
    }

    /// Spreads `n` tasks round-robin across sockets ("scatter" placement):
    /// task `i` goes to socket `i % sockets`, next free core there.
    pub fn scatter_placement(&self, n: usize) -> Vec<CpuId> {
        let mut next_core = vec![0u32; self.sockets as usize];
        (0..n)
            .map(|i| {
                let s = (i as u32) % self.sockets;
                let core = next_core[s as usize] % self.cores_per_socket;
                next_core[s as usize] += 1;
                CpuId(s * self.cores_per_socket + core)
            })
            .collect()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_dimensions() {
        let t = Topology::paper_machine();
        assert_eq!(t.num_cpus(), 80);
        assert_eq!(t.num_sockets(), 8);
        assert_eq!(t.cores_per_socket(), 10);
    }

    #[test]
    fn socket_mapping_is_blockwise() {
        let t = Topology::new(4, 3);
        let sockets: Vec<u32> = t.all_cpus().map(|c| t.socket_of(c).0).collect();
        assert_eq!(sockets, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn cpus_of_socket_roundtrip() {
        let t = Topology::new(3, 5);
        for s in 0..3 {
            for cpu in t.cpus_of(SocketId(s)) {
                assert_eq!(t.socket_of(cpu), SocketId(s));
            }
        }
    }

    #[test]
    fn compact_placement_fills_sockets_in_order() {
        let t = Topology::new(2, 2);
        let p = t.compact_placement(6);
        assert_eq!(
            p,
            vec![CpuId(0), CpuId(1), CpuId(2), CpuId(3), CpuId(0), CpuId(1)]
        );
    }

    #[test]
    fn scatter_placement_alternates_sockets() {
        let t = Topology::new(2, 2);
        let p = t.scatter_placement(4);
        let s: Vec<u32> = p.iter().map(|c| t.socket_of(*c).0).collect();
        assert_eq!(s, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn socket_of_out_of_range_panics() {
        Topology::small().socket_of(CpuId(99));
    }
}
