//! Single-threaded, virtual-time async executor.
//!
//! Tasks are ordinary Rust futures. Every simulation primitive (delays,
//! charged memory accesses, park/unpark) suspends the task and schedules an
//! event in a binary heap ordered by `(virtual_time, sequence)`; the run loop
//! pops events and polls the corresponding task. Because there is exactly one
//! host thread, a task's poll executes atomically with respect to all other
//! tasks — the simulation primitives rely on this for race-free wakeup
//! registration (see `cell.rs`).

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::cache::{CacheModel, LatencyModel, LineId};
use crate::rng::SplitMix64;
use crate::sched::{SchedAction, SchedController, SchedSite};
use crate::topology::{CpuId, SocketId, Topology};

/// Identifier of a simulated task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u32);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Event {
    time: u64,
    seq: u64,
    task: TaskId,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct TaskSlot {
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    cpu: CpuId,
    socket: SocketId,
    parked: bool,
    unpark_token: bool,
    done: bool,
}

pub(crate) struct Shared {
    now: Cell<u64>,
    seq: Cell<u64>,
    heap: RefCell<BinaryHeap<Reverse<Event>>>,
    tasks: RefCell<Vec<TaskSlot>>,
    pub(crate) cache: RefCell<CacheModel>,
    topo: Topology,
    rng: RefCell<SplitMix64>,
    live: Cell<usize>,
    events_processed: Cell<u64>,
    trace_hash: Cell<u64>,
    next_obj_id: Cell<u64>,
    trace_log: RefCell<Option<Vec<(u64, u32)>>>,
    /// Per-CPU "descheduled until" times (the double-scheduling model:
    /// a hypervisor may take a vCPU away; events for tasks pinned there
    /// are deferred to the end of the window).
    offline_until: RefCell<Vec<u64>>,
    /// Scratch buffer for draining watcher lists without allocating: it is
    /// swapped against a line's watcher vector on every wake, so buffers
    /// (and their capacity) circulate instead of being freed and regrown
    /// on each store/RMW (see [`TaskCtx::wake_watchers`]).
    wake_scratch: RefCell<Vec<TaskId>>,
    /// Schedule-exploration controller consulted at every
    /// [`TaskCtx::sched_point`]. `None` (the default) makes every schedule
    /// point a strict no-op: no event, no randomness, no virtual time.
    sched: RefCell<Option<Rc<SchedController>>>,
}

impl Shared {
    pub(crate) fn schedule(&self, task: TaskId, at: u64) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.heap.borrow_mut().push(Reverse(Event {
            time: at,
            seq,
            task,
        }));
    }

    pub(crate) fn now(&self) -> u64 {
        self.now.get()
    }
}

/// Aggregate results of a simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Virtual time at which the run loop stopped.
    pub final_time_ns: u64,
    /// Number of events the executor processed.
    pub events: u64,
    /// Tasks that ran to completion.
    pub tasks_completed: usize,
    /// Tasks still suspended when the heap drained (parked or watching a
    /// line that was never written again) — a non-empty list usually means
    /// a deadlock or a forgotten wakeup in the workload.
    pub stuck_tasks: Vec<TaskId>,
    /// Modeled memory-system counters: loads, stores, line transfers.
    pub loads: u64,
    /// Modeled stores (including the write half of RMWs).
    pub stores: u64,
    /// Cache-line transfers between sockets or from memory.
    pub transfers: u64,
    /// Order-sensitive hash of the processed event sequence; equal seeds
    /// and workloads must produce equal hashes (determinism check).
    pub trace_hash: u64,
}

/// Configures and creates a [`Sim`].
///
/// # Examples
///
/// ```
/// use ksim::{SimBuilder, Topology};
///
/// let sim = SimBuilder::new()
///     .topology(Topology::paper_machine())
///     .seed(42)
///     .build();
/// assert_eq!(sim.topology().num_cpus(), 80);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SimBuilder {
    topology: Topology,
    latency: LatencyModel,
    seed: u64,
}

impl SimBuilder {
    /// Creates a builder with the paper's 8×10 topology, default latencies
    /// and seed 0.
    pub fn new() -> Self {
        SimBuilder {
            topology: Topology::paper_machine(),
            latency: LatencyModel::default(),
            seed: 0,
        }
    }

    /// Sets the machine shape.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets the latency constants of the cache model.
    pub fn latency(mut self, l: LatencyModel) -> Self {
        self.latency = l;
        self
    }

    /// Sets the seed for all simulation randomness.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builds the simulator.
    pub fn build(self) -> Sim {
        assert!(
            self.topology.num_sockets() <= 64,
            "cache model uses a 64-bit socket mask"
        );
        Sim {
            shared: Rc::new(Shared {
                now: Cell::new(0),
                seq: Cell::new(0),
                // Pre-size for one in-flight event per CPU (the steady
                // state of a saturated machine) so early pushes don't
                // regrow the heap's backing buffer.
                heap: RefCell::new(BinaryHeap::with_capacity(
                    self.topology.num_cpus() as usize * 2,
                )),
                tasks: RefCell::new(Vec::new()),
                cache: RefCell::new(CacheModel::new(self.latency)),
                topo: self.topology,
                rng: RefCell::new(SplitMix64::new(self.seed)),
                live: Cell::new(0),
                events_processed: Cell::new(0),
                trace_hash: Cell::new(0xcbf2_9ce4_8422_2325),
                next_obj_id: Cell::new(1),
                trace_log: RefCell::new(None),
                offline_until: RefCell::new(vec![0; self.topology.num_cpus() as usize]),
                wake_scratch: RefCell::new(Vec::new()),
                sched: RefCell::new(None),
            }),
        }
    }
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder::new()
    }
}

/// The discrete-event simulator.
///
/// Cloning is cheap (reference-counted); all clones drive the same machine.
#[derive(Clone)]
pub struct Sim {
    pub(crate) shared: Rc<Shared>,
}

impl Sim {
    /// The machine shape this simulator models.
    pub fn topology(&self) -> Topology {
        self.shared.topo
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.shared.now()
    }

    /// Spawns a task pinned to `cpu`; it becomes runnable at the current
    /// virtual time.
    ///
    /// The closure receives the task's [`TaskCtx`] and returns its future.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is outside the topology.
    pub fn spawn_on<F, Fut>(&self, cpu: CpuId, f: F) -> TaskId
    where
        F: FnOnce(TaskCtx) -> Fut,
        Fut: Future<Output = ()> + 'static,
    {
        let socket = self.shared.topo.socket_of(cpu);
        let id = TaskId(self.shared.tasks.borrow().len() as u32);
        let ctx = TaskCtx {
            shared: Rc::clone(&self.shared),
            id,
            cpu,
            socket,
        };
        let future: Pin<Box<dyn Future<Output = ()>>> = Box::pin(f(ctx));
        self.shared.tasks.borrow_mut().push(TaskSlot {
            future: Some(future),
            cpu,
            socket,
            parked: false,
            unpark_token: false,
            done: false,
        });
        self.shared.live.set(self.shared.live.get() + 1);
        self.shared.schedule(id, self.shared.now());
        id
    }

    /// Runs until no events remain, returning run statistics.
    pub fn run(&self) -> SimStats {
        self.run_until(u64::MAX)
    }

    /// Runs until the event heap is empty or virtual time would exceed
    /// `deadline_ns`.
    pub fn run_until(&self, deadline_ns: u64) -> SimStats {
        let waker = noop_waker();
        let mut cx = Context::from_waker(&waker);
        loop {
            let ev = match self.shared.heap.borrow_mut().pop() {
                Some(Reverse(ev)) => ev,
                None => break,
            };
            if ev.time > deadline_ns {
                // Put it back for a later `run_until` call.
                self.shared.heap.borrow_mut().push(Reverse(ev));
                break;
            }
            debug_assert!(ev.time >= self.shared.now.get(), "time went backwards");
            // A task on a preempted vCPU cannot run: defer its event to
            // the end of the offline window.
            {
                let tasks = self.shared.tasks.borrow();
                if let Some(slot) = tasks.get(ev.task.0 as usize) {
                    let until = self.shared.offline_until.borrow()[slot.cpu.0 as usize];
                    if until > ev.time {
                        drop(tasks);
                        self.shared.schedule(ev.task, until);
                        continue;
                    }
                }
            }
            self.shared.now.set(ev.time);
            self.shared
                .events_processed
                .set(self.shared.events_processed.get() + 1);
            let h = self.shared.trace_hash.get();
            let mixed = h
                .wrapping_mul(0x100_0000_01b3)
                .rotate_left(17)
                .wrapping_add(ev.time ^ u64::from(ev.task.0) << 32);
            self.shared.trace_hash.set(mixed);
            if let Some(log) = self.shared.trace_log.borrow_mut().as_mut() {
                log.push((ev.time, ev.task.0));
            }

            // Take the future out so the poll can re-borrow the task table.
            let mut fut = {
                let mut tasks = self.shared.tasks.borrow_mut();
                let slot = &mut tasks[ev.task.0 as usize];
                if slot.done {
                    continue;
                }
                match slot.future.take() {
                    Some(f) => f,
                    // Already being polled — impossible on one thread.
                    None => continue,
                }
            };
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    let mut tasks = self.shared.tasks.borrow_mut();
                    tasks[ev.task.0 as usize].done = true;
                    self.shared.live.set(self.shared.live.get() - 1);
                }
                Poll::Pending => {
                    let mut tasks = self.shared.tasks.borrow_mut();
                    tasks[ev.task.0 as usize].future = Some(fut);
                }
            }
        }
        self.stats()
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> SimStats {
        let (loads, stores, transfers) = self.shared.cache.borrow().counters();
        let tasks = self.shared.tasks.borrow();
        let stuck = tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        SimStats {
            final_time_ns: self.shared.now(),
            events: self.shared.events_processed.get(),
            tasks_completed: tasks.iter().filter(|s| s.done).count(),
            stuck_tasks: stuck,
            loads,
            stores,
            transfers,
            trace_hash: self.shared.trace_hash.get(),
        }
    }

    /// Allocates a fresh cache line (used by `SimWord`/`SimCell`).
    pub(crate) fn alloc_line(&self) -> LineId {
        self.shared.cache.borrow_mut().alloc_line()
    }

    /// Deschedules a virtual CPU until `until_ns` (the paper's §3.1.1
    /// "double scheduling" context: the hypervisor preempts a vCPU, and
    /// whatever task runs there — lock holder or next-in-line waiter —
    /// stops making progress until the window ends).
    pub fn preempt_cpu(&self, cpu: CpuId, until_ns: u64) {
        let mut off = self.shared.offline_until.borrow_mut();
        let slot = &mut off[cpu.0 as usize];
        *slot = (*slot).max(until_ns);
    }

    /// Whether `cpu` is running (not inside a preemption window) at the
    /// current virtual time.
    pub fn cpu_online(&self, cpu: CpuId) -> bool {
        self.shared.offline_until.borrow()[cpu.0 as usize] <= self.shared.now()
    }

    /// Enables capture of the full `(time, task)` event sequence, for
    /// debugging determinism issues. Expensive; off by default.
    pub fn capture_trace(&self, on: bool) {
        *self.shared.trace_log.borrow_mut() = if on { Some(Vec::new()) } else { None };
    }

    /// The captured event sequence, if capture was enabled: a borrowed
    /// view — no copy is made. Empty when capture is off.
    ///
    /// The returned guard borrows the log; drop it before resuming the
    /// simulation (running while it is held would panic on the interior
    /// borrow). To keep the data across further simulation, use
    /// [`Sim::take_trace`].
    pub fn trace(&self) -> std::cell::Ref<'_, [(u64, u32)]> {
        std::cell::Ref::map(self.shared.trace_log.borrow(), |log| {
            log.as_deref().unwrap_or(&[])
        })
    }

    /// Moves the captured event sequence out, leaving capture enabled
    /// with a fresh empty log. Returns an empty vector if capture was
    /// never enabled.
    pub fn take_trace(&self) -> Vec<(u64, u32)> {
        self.shared
            .trace_log
            .borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Allocates a per-simulation object id (lock identities); determinism
    /// requires these to be scoped to the simulation, never process-global.
    pub fn alloc_id(&self) -> u64 {
        let id = self.shared.next_obj_id.get();
        self.shared.next_obj_id.set(id + 1);
        id
    }

    /// Installs (or, with `None`, removes) the schedule-exploration
    /// controller. While installed, every [`TaskCtx::sched_point`] in the
    /// workload consults its strategy, which may delay or preempt the
    /// arriving task to steer the interleaving.
    pub fn set_sched_hook(&self, controller: Option<Rc<SchedController>>) {
        *self.shared.sched.borrow_mut() = controller;
    }
}

/// Per-task handle passed to every spawned task.
///
/// All simulation primitives — delays, parking, charged memory accesses —
/// go through this context so that costs are attributed to the right CPU and
/// socket.
#[derive(Clone)]
pub struct TaskCtx {
    pub(crate) shared: Rc<Shared>,
    id: TaskId,
    cpu: CpuId,
    socket: SocketId,
}

impl TaskCtx {
    /// This task's identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The virtual CPU this task is pinned to.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    /// The socket (NUMA node) of this task's CPU.
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.shared.now()
    }

    /// The latency constants of the machine this task runs on.
    pub fn latency(&self) -> LatencyModel {
        *self.shared.cache.borrow().latency()
    }

    /// Deterministic pseudo-random 64-bit value.
    pub fn rng_u64(&self) -> u64 {
        self.shared.rng.borrow_mut().next_u64()
    }

    /// Suspends this task for `ns` nanoseconds of virtual time.
    ///
    /// Models computation (critical-section work, backoff) without burning
    /// host CPU. `advance(0)` completes immediately without suspension.
    pub fn advance(&self, ns: u64) -> Delay {
        Delay {
            ctx: self.clone(),
            ns,
            armed: false,
        }
    }

    /// Parks this task until another task calls [`TaskCtx::unpark`] on it.
    ///
    /// Follows `std::thread::park` token semantics: an `unpark` that arrives
    /// before the `park` makes the `park` return immediately. Spurious
    /// wake-ups are possible; callers must re-check their condition.
    pub fn park(&self) -> Park {
        Park {
            ctx: self.clone(),
            armed: false,
        }
    }

    /// Makes `target` runnable again after the scheduler wake-up latency.
    ///
    /// Charges nothing to the caller; callers that want to model the cost of
    /// the wake-up syscall should `advance` explicitly.
    pub fn unpark(&self, target: TaskId) {
        let mut tasks = self.shared.tasks.borrow_mut();
        let slot = &mut tasks[target.0 as usize];
        if slot.done {
            return;
        }
        if slot.parked {
            slot.parked = false;
            let wake = self.shared.cache.borrow().latency().wake_latency;
            drop(tasks);
            self.shared.schedule(target, self.shared.now() + wake);
        } else {
            slot.unpark_token = true;
        }
    }

    /// Suspends until any event is delivered to this task (used by
    /// `SimCell::wait_while` after registering a line watcher).
    pub(crate) fn suspend(&self) -> Suspend {
        Suspend { armed: false }
    }

    /// Schedules a (possibly spurious) wake-up for this task at `at_ns`.
    pub(crate) fn schedule_self_at(&self, at_ns: u64) {
        self.shared.schedule(self.id, at_ns.max(self.shared.now()));
    }

    /// Registers this task to be woken when `line` is next written.
    pub(crate) fn watch_line(&self, line: LineId) {
        self.shared.cache.borrow_mut().watch(line, self.id);
    }

    /// Deregisters this task from `line`'s watcher list.
    pub(crate) fn unwatch_line(&self, line: LineId) {
        self.shared.cache.borrow_mut().unwatch(line, self.id);
    }

    /// Wakes every current watcher of `line` after the given per-wake
    /// cost.
    ///
    /// The watcher list is drained by swapping it against the executor's
    /// scratch buffer, so the steady state allocates nothing: the line
    /// inherits an empty vector that retains capacity from a previous
    /// cycle, and the drained buffer becomes the next scratch.
    pub(crate) fn wake_watchers(&self, line: LineId, cost: u64) {
        let mut scratch = self.shared.wake_scratch.take();
        self.shared
            .cache
            .borrow_mut()
            .swap_watchers(line, &mut scratch);
        let now = self.shared.now();
        for w in scratch.drain(..) {
            self.shared.schedule(w, now + cost);
        }
        *self.shared.wake_scratch.borrow_mut() = scratch;
    }

    /// A schedule point: lets an installed [`SchedController`] perturb the
    /// interleaving here (delay this task, or take its vCPU offline for a
    /// window). With no controller installed this completes immediately
    /// without charging time, consuming randomness or scheduling an event,
    /// so instrumented algorithms behave bit-identically in normal runs.
    pub async fn sched_point(&self, site: SchedSite, lock_id: u64) {
        let controller = match self.shared.sched.borrow().as_ref() {
            Some(c) => Rc::clone(c),
            None => return,
        };
        let action = controller.on_point(
            site,
            self.id,
            self.cpu.0,
            self.socket.0,
            lock_id,
            self.shared.now(),
        );
        match action {
            SchedAction::Proceed => {}
            SchedAction::Delay(ns) => self.advance(ns).await,
            SchedAction::Preempt(ns) => {
                // Take this task's vCPU offline; our own resume event is
                // deferred past the window by the run loop, like every
                // other event pinned there.
                let until = self.shared.now() + ns;
                {
                    let mut off = self.shared.offline_until.borrow_mut();
                    let slot = &mut off[self.cpu.0 as usize];
                    *slot = (*slot).max(until);
                }
                self.advance(1).await;
            }
        }
    }

    /// CPU and socket of another task (used by topology-aware policies).
    pub fn task_cpu(&self, t: TaskId) -> (CpuId, SocketId) {
        let tasks = self.shared.tasks.borrow();
        let s = &tasks[t.0 as usize];
        (s.cpu, s.socket)
    }
}

/// Future returned by [`TaskCtx::advance`].
pub struct Delay {
    ctx: TaskCtx,
    ns: u64,
    armed: bool,
}

impl Future for Delay {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.ns == 0 {
            return Poll::Ready(());
        }
        if !self.armed {
            self.armed = true;
            let at = self.ctx.shared.now() + self.ns;
            self.ctx.shared.schedule(self.ctx.id, at);
            // Remember the deadline so spurious polls stay pending.
            self.ns = at;
            Poll::Pending
        } else if self.ctx.shared.now() >= self.ns {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// Future returned by [`TaskCtx::park`].
pub struct Park {
    ctx: TaskCtx,
    armed: bool,
}

impl Future for Park {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let mut tasks = self.ctx.shared.tasks.borrow_mut();
        let slot = &mut tasks[self.ctx.id.0 as usize];
        if slot.unpark_token {
            slot.unpark_token = false;
            slot.parked = false;
            return Poll::Ready(());
        }
        if !self.armed {
            slot.parked = true;
            drop(tasks);
            self.armed = true;
            Poll::Pending
        } else if slot.parked {
            // Spurious poll while still parked.
            Poll::Pending
        } else {
            Poll::Ready(())
        }
    }
}

/// Future that completes on the next event delivered to the task.
pub(crate) struct Suspend {
    armed: bool,
}

impl Future for Suspend {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if !self.armed {
            self.armed = true;
            Poll::Pending
        } else {
            Poll::Ready(())
        }
    }
}

fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(
        |_| RawWaker::new(std::ptr::null(), &VTABLE),
        |_| {},
        |_| {},
        |_| {},
    );
    // SAFETY: the vtable functions are all no-ops and the data pointer is
    // never dereferenced, so every `RawWaker` contract holds trivially.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_advance_virtual_time() {
        let sim = SimBuilder::new().build();
        sim.spawn_on(CpuId(0), |t| async move {
            t.advance(100).await;
            t.advance(250).await;
        });
        let stats = sim.run();
        assert_eq!(stats.final_time_ns, 350);
        assert_eq!(stats.tasks_completed, 1);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn tasks_interleave_by_virtual_time() {
        let sim = SimBuilder::new().build();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (cpu, delay) in [(0u32, 300u64), (1, 100), (2, 200)] {
            let order = Rc::clone(&order);
            sim.spawn_on(CpuId(cpu), move |t| async move {
                t.advance(delay).await;
                order.borrow_mut().push(delay);
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![100, 200, 300]);
    }

    #[test]
    fn park_unpark_roundtrip() {
        let sim = SimBuilder::new().build();
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        let sleeper = sim.spawn_on(CpuId(0), move |t| async move {
            t.park().await;
            f2.set(true);
        });
        sim.spawn_on(CpuId(1), move |t| async move {
            t.advance(1_000).await;
            t.unpark(sleeper);
        });
        let stats = sim.run();
        assert!(flag.get());
        // Wakee resumed at 1000 + wake_latency.
        assert_eq!(
            stats.final_time_ns,
            1_000 + LatencyModel::default().wake_latency
        );
    }

    #[test]
    fn unpark_before_park_is_not_lost() {
        let sim = SimBuilder::new().build();
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        let target = sim.spawn_on(CpuId(0), move |t| async move {
            // Park only after the unpark has been issued.
            t.advance(5_000).await;
            t.park().await;
            d.set(true);
        });
        sim.spawn_on(CpuId(1), move |t| async move {
            t.unpark(target);
        });
        let stats = sim.run();
        assert!(done.get());
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn stuck_parked_task_is_reported() {
        let sim = SimBuilder::new().build();
        sim.spawn_on(CpuId(0), |t| async move {
            t.park().await;
        });
        let stats = sim.run();
        assert_eq!(stats.stuck_tasks, vec![TaskId(0)]);
        assert_eq!(stats.tasks_completed, 0);
    }

    #[test]
    fn run_until_stops_at_deadline_and_resumes() {
        let sim = SimBuilder::new().build();
        let steps = Rc::new(Cell::new(0u32));
        let s = Rc::clone(&steps);
        sim.spawn_on(CpuId(0), move |t| async move {
            for _ in 0..10 {
                t.advance(100).await;
                s.set(s.get() + 1);
            }
        });
        sim.run_until(450);
        assert_eq!(steps.get(), 4);
        let stats = sim.run();
        assert_eq!(steps.get(), 10);
        assert_eq!(stats.final_time_ns, 1_000);
    }

    #[test]
    fn preempted_cpu_defers_its_tasks() {
        let sim = SimBuilder::new().build();
        let done_at = Rc::new(Cell::new(0u64));
        let d = Rc::clone(&done_at);
        sim.spawn_on(CpuId(3), move |t| async move {
            t.advance(100).await;
            d.set(t.now());
        });
        sim.preempt_cpu(CpuId(3), 50_000);
        assert!(!sim.cpu_online(CpuId(3)));
        assert!(sim.cpu_online(CpuId(4)));
        let stats = sim.run();
        // The task could not start until the window ended.
        assert_eq!(done_at.get(), 50_100);
        assert!(stats.stuck_tasks.is_empty());
        assert!(sim.cpu_online(CpuId(3)), "window over");
    }

    #[test]
    fn preemption_does_not_affect_other_cpus() {
        let sim = SimBuilder::new().build();
        sim.preempt_cpu(CpuId(0), 10_000);
        let done_at = Rc::new(Cell::new(0u64));
        let d = Rc::clone(&done_at);
        sim.spawn_on(CpuId(1), move |t| async move {
            t.advance(100).await;
            d.set(t.now());
        });
        sim.run();
        assert_eq!(done_at.get(), 100);
    }

    #[test]
    fn identical_seeds_produce_identical_trace_hash() {
        let run = |seed| {
            let sim = SimBuilder::new().seed(seed).build();
            for cpu in 0..8u32 {
                sim.spawn_on(CpuId(cpu), move |t| async move {
                    for _ in 0..50 {
                        let jitter = t.rng_u64() % 97;
                        t.advance(10 + jitter).await;
                    }
                });
            }
            sim.run()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn trace_capture_is_borrowed_and_takeable() {
        let sim = SimBuilder::new().build();
        sim.capture_trace(true);
        sim.spawn_on(CpuId(0), |t| async move {
            t.advance(10).await;
            t.advance(20).await;
        });
        let stats = sim.run();
        // The borrowed view sees every processed event without copying.
        assert_eq!(sim.trace().len() as u64, stats.events);
        assert_eq!(sim.trace().last(), Some(&(30, 0)));
        // Taking moves the log out but leaves capture enabled.
        let log = sim.take_trace();
        assert_eq!(log.len() as u64, stats.events);
        assert!(sim.trace().is_empty());
        sim.spawn_on(CpuId(1), |t| async move {
            t.advance(5).await;
        });
        sim.run();
        assert!(!sim.trace().is_empty(), "capture stays on after take");
    }

    #[test]
    fn trace_is_empty_when_capture_disabled() {
        let sim = SimBuilder::new().build();
        sim.spawn_on(CpuId(0), |t| async move {
            t.advance(10).await;
        });
        sim.run();
        assert!(sim.trace().is_empty());
        assert!(sim.take_trace().is_empty());
    }
}
