//! Charged shared-memory cells: the simulation's "atomics".
//!
//! Each cell occupies its own cache line in the [`crate::cache`] model.
//! Every access is an `async fn` that (1) computes and claims its coherence
//! cost at issue time, (2) suspends for that latency, and (3) applies its
//! memory effect atomically at *completion* — the executor is
//! single-threaded, so the apply step is indivisible. Operations therefore
//! linearize in completion order: a task whose line is local wins a race
//! against one that must pull the line across the interconnect, exactly as
//! on hardware. (Applying at issue instead would let a remote CAS beat a
//! local one for free, which starves lock handoffs of their locality
//! advantage.)
//!
//! Spin-waiting uses [`SimCell::wait_while`], which registers the task as a
//! *watcher* of the line instead of simulating every polling iteration:
//! wakeups are driven by stores, keeping the event count proportional to
//! lock handoffs rather than spin cycles. The re-check after a wakeup pays a
//! real (usually cross-socket) load, which is exactly the invalidation-storm
//! cost that makes test-and-set locks collapse and queue locks scale.

use std::cell::Cell;

use crate::cache::LineId;
use crate::exec::{Sim, TaskCtx};

/// A shared cell holding a small `Copy` value on its own cache line.
pub struct SimCell<T: Copy> {
    line: LineId,
    val: Cell<T>,
}

impl<T: Copy + 'static> SimCell<T> {
    /// Creates a cell on a fresh cache line of `sim`'s machine.
    pub fn new(sim: &Sim, init: T) -> Self {
        SimCell {
            line: sim.alloc_line(),
            val: Cell::new(init),
        }
    }

    /// Creates a cell sharing the cache line of `other` (for modeling
    /// false sharing or packed lock words).
    pub fn new_on_line_of<U: Copy>(other: &SimCell<U>, init: T) -> Self {
        SimCell {
            line: other.line,
            val: Cell::new(init),
        }
    }

    /// The cache line this cell lives on.
    pub fn line(&self) -> LineId {
        self.line
    }

    /// Reads the value without charging any cost (for assertions and
    /// statistics only — never inside a simulated algorithm).
    pub fn peek(&self) -> T {
        self.val.get()
    }

    /// Writes the value without charging any cost (initialization only).
    pub fn poke(&self, v: T) {
        self.val.set(v);
    }

    /// Charged load; returns the value as of completion.
    pub async fn load(&self, t: &TaskCtx) -> T {
        let cost = t.shared.cache.borrow_mut().load_cost(self.line, t.socket());
        t.advance(cost).await;
        self.val.get()
    }

    /// Charged store; applied at completion, waking spin-waiters then.
    pub async fn store(&self, t: &TaskCtx, v: T) {
        let cost = t
            .shared
            .cache
            .borrow_mut()
            .store_cost(self.line, t.socket());
        t.advance(cost).await;
        self.val.set(v);
        t.wake_watchers(self.line, t.latency().load_hit);
    }

    /// Charged atomic read-modify-write, applied at completion; returns
    /// the previous value.
    pub async fn rmw(&self, t: &TaskCtx, f: impl FnOnce(T) -> T) -> T {
        let base = t
            .shared
            .cache
            .borrow_mut()
            .store_cost(self.line, t.socket());
        t.advance(base + t.latency().rmw_extra).await;
        let old = self.val.get();
        self.val.set(f(old));
        t.wake_watchers(self.line, t.latency().load_hit);
        old
    }

    /// Charged compare-and-swap; returns `Ok(old)` on success, `Err(actual)`
    /// on failure. A failed CAS still pays the full RMW cost, as on real
    /// hardware (the line is acquired exclusively either way), and the
    /// comparison happens at completion, when the line is actually held.
    pub async fn compare_exchange(&self, t: &TaskCtx, expected: T, new: T) -> Result<T, T>
    where
        T: PartialEq,
    {
        let base = t
            .shared
            .cache
            .borrow_mut()
            .store_cost(self.line, t.socket());
        t.advance(base + t.latency().rmw_extra).await;
        let old = self.val.get();
        if old == expected {
            self.val.set(new);
            t.wake_watchers(self.line, t.latency().load_hit);
            Ok(old)
        } else {
            // Value unchanged: watchers stay registered for the next write.
            Err(old)
        }
    }

    /// Charged atomic swap; returns the previous value.
    pub async fn swap(&self, t: &TaskCtx, v: T) -> T {
        self.rmw(t, |_| v).await
    }

    /// Spin-waits (watcher-based) until `pred(value)` is false; returns the
    /// value that ended the wait.
    ///
    /// Models `while pred(load()) cpu_relax();`.
    pub async fn wait_while(&self, t: &TaskCtx, pred: impl Fn(T) -> bool) -> T {
        loop {
            // Charge a load for the check, then decide on the *current*
            // value in the same executor poll as the watcher registration:
            // a store can only happen between polls, so checking a stale
            // value here would lose the wakeup of a store that landed
            // during the load's latency window.
            let _ = self.load(t).await;
            let v = self.val.get();
            if !pred(v) {
                return v;
            }
            t.watch_line(self.line);
            t.suspend().await;
        }
    }

    /// Like [`SimCell::wait_while`] but gives up at `deadline_ns` of virtual
    /// time, returning `Err(last_value)` on timeout.
    ///
    /// Used to model spin-then-park strategies.
    pub async fn wait_while_deadline(
        &self,
        t: &TaskCtx,
        pred: impl Fn(T) -> bool,
        deadline_ns: u64,
    ) -> Result<T, T> {
        let mut deadline_armed = false;
        loop {
            // See `wait_while`: the decision and the watcher registration
            // must use the value as of this poll, not the load-issue value.
            let _ = self.load(t).await;
            let v = self.val.get();
            if !pred(v) {
                return Ok(v);
            }
            if t.now() >= deadline_ns {
                return Err(v);
            }
            if !deadline_armed {
                t.schedule_self_at(deadline_ns);
                deadline_armed = true;
            }
            t.watch_line(self.line);
            t.suspend().await;
            t.unwatch_line(self.line);
        }
    }
}

/// A charged cell holding a `u64`, with arithmetic and bit RMWs.
pub struct SimWord {
    cell: SimCell<u64>,
}

impl SimWord {
    /// Creates a word on a fresh cache line.
    pub fn new(sim: &Sim, init: u64) -> Self {
        SimWord {
            cell: SimCell::new(sim, init),
        }
    }

    /// Creates a word sharing another word's cache line (packed lock
    /// words, false sharing).
    pub fn new_on_line_of(other: &SimWord, init: u64) -> Self {
        SimWord {
            cell: SimCell::new_on_line_of(&other.cell, init),
        }
    }

    /// The cache line this word lives on.
    pub fn line(&self) -> LineId {
        self.cell.line()
    }

    /// Uncharged read (assertions/statistics only).
    pub fn peek(&self) -> u64 {
        self.cell.peek()
    }

    /// Uncharged write (initialization only).
    pub fn poke(&self, v: u64) {
        self.cell.poke(v);
    }

    /// Charged load.
    pub async fn load(&self, t: &TaskCtx) -> u64 {
        self.cell.load(t).await
    }

    /// Charged store.
    pub async fn store(&self, t: &TaskCtx, v: u64) {
        self.cell.store(t, v).await
    }

    /// Charged fetch-add; returns the previous value.
    pub async fn fetch_add(&self, t: &TaskCtx, v: u64) -> u64 {
        self.cell.rmw(t, |x| x.wrapping_add(v)).await
    }

    /// Charged fetch-sub; returns the previous value.
    pub async fn fetch_sub(&self, t: &TaskCtx, v: u64) -> u64 {
        self.cell.rmw(t, |x| x.wrapping_sub(v)).await
    }

    /// Charged fetch-or; returns the previous value.
    pub async fn fetch_or(&self, t: &TaskCtx, v: u64) -> u64 {
        self.cell.rmw(t, |x| x | v).await
    }

    /// Charged fetch-and; returns the previous value.
    pub async fn fetch_and(&self, t: &TaskCtx, v: u64) -> u64 {
        self.cell.rmw(t, |x| x & v).await
    }

    /// Charged swap; returns the previous value.
    pub async fn swap(&self, t: &TaskCtx, v: u64) -> u64 {
        self.cell.swap(t, v).await
    }

    /// Charged compare-and-swap.
    pub async fn compare_exchange(&self, t: &TaskCtx, expected: u64, new: u64) -> Result<u64, u64> {
        self.cell.compare_exchange(t, expected, new).await
    }

    /// Watcher-based spin-wait; see [`SimCell::wait_while`].
    pub async fn wait_while(&self, t: &TaskCtx, pred: impl Fn(u64) -> bool) -> u64 {
        self.cell.wait_while(t, pred).await
    }

    /// Deadline-bounded spin-wait; see [`SimCell::wait_while_deadline`].
    pub async fn wait_while_deadline(
        &self,
        t: &TaskCtx,
        pred: impl Fn(u64) -> bool,
        deadline_ns: u64,
    ) -> Result<u64, u64> {
        self.cell.wait_while_deadline(t, pred, deadline_ns).await
    }
}

/// A charged boolean flag (e.g., a test-and-set lock byte).
pub struct SimFlag {
    cell: SimCell<bool>,
}

impl SimFlag {
    /// Creates a flag on a fresh cache line.
    pub fn new(sim: &Sim, init: bool) -> Self {
        SimFlag {
            cell: SimCell::new(sim, init),
        }
    }

    /// Uncharged read (assertions only).
    pub fn peek(&self) -> bool {
        self.cell.peek()
    }

    /// Charged load.
    pub async fn load(&self, t: &TaskCtx) -> bool {
        self.cell.load(t).await
    }

    /// Charged store.
    pub async fn store(&self, t: &TaskCtx, v: bool) {
        self.cell.store(t, v).await
    }

    /// Charged test-and-set; returns the previous value.
    pub async fn test_and_set(&self, t: &TaskCtx) -> bool {
        self.cell.rmw(t, |_| true).await
    }

    /// Charged clear.
    pub async fn clear(&self, t: &TaskCtx) {
        self.cell.store(t, false).await
    }

    /// Spin-waits until the flag is false; see [`SimCell::wait_while`].
    pub async fn wait_clear(&self, t: &TaskCtx) {
        self.cell.wait_while(t, |v| v).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SimBuilder;
    use crate::topology::CpuId;
    use std::rc::Rc;

    #[test]
    fn rmw_is_atomic_across_tasks() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 0));
        for cpu in 0..16u32 {
            let w = Rc::clone(&w);
            sim.spawn_on(CpuId(cpu % 80), move |t| async move {
                for _ in 0..100 {
                    w.fetch_add(&t, 1).await;
                }
            });
        }
        let stats = sim.run();
        assert_eq!(w.peek(), 1_600);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn cas_success_and_failure() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 5));
        let w2 = Rc::clone(&w);
        sim.spawn_on(CpuId(0), move |t| async move {
            assert_eq!(w2.compare_exchange(&t, 5, 9).await, Ok(5));
            assert_eq!(w2.compare_exchange(&t, 5, 11).await, Err(9));
        });
        sim.run();
        assert_eq!(w.peek(), 9);
    }

    #[test]
    fn wait_while_wakes_on_store() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 0));
        let seen = Rc::new(Cell::new(0));
        let (w1, s1) = (Rc::clone(&w), Rc::clone(&seen));
        sim.spawn_on(CpuId(0), move |t| async move {
            let v = w1.wait_while(&t, |v| v == 0).await;
            s1.set(v);
        });
        let w2 = Rc::clone(&w);
        sim.spawn_on(CpuId(10), move |t| async move {
            t.advance(10_000).await;
            w2.store(&t, 42).await;
        });
        let stats = sim.run();
        assert_eq!(seen.get(), 42);
        assert!(stats.final_time_ns >= 10_000);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn wait_while_returns_immediately_if_condition_holds() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 3));
        let w1 = Rc::clone(&w);
        sim.spawn_on(CpuId(0), move |t| async move {
            assert_eq!(w1.wait_while(&t, |v| v == 0).await, 3);
        });
        let stats = sim.run();
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn wait_while_deadline_times_out() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 0));
        let timed_out = Rc::new(Cell::new(false));
        let (w1, to) = (Rc::clone(&w), Rc::clone(&timed_out));
        sim.spawn_on(CpuId(0), move |t| async move {
            let r = w1.wait_while_deadline(&t, |v| v == 0, 5_000).await;
            to.set(r.is_err());
        });
        let stats = sim.run();
        assert!(timed_out.get());
        assert!(stats.stuck_tasks.is_empty());
        assert!(stats.final_time_ns >= 5_000);
    }

    #[test]
    fn wait_while_deadline_succeeds_before_deadline() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 0));
        let got = Rc::new(Cell::new(0u64));
        let (w1, g) = (Rc::clone(&w), Rc::clone(&got));
        sim.spawn_on(CpuId(0), move |t| async move {
            let r = w1.wait_while_deadline(&t, |v| v == 0, 1_000_000).await;
            g.set(r.unwrap());
        });
        let w2 = Rc::clone(&w);
        sim.spawn_on(CpuId(1), move |t| async move {
            t.advance(2_000).await;
            w2.store(&t, 7).await;
        });
        sim.run();
        assert_eq!(got.get(), 7);
    }

    #[test]
    fn many_spinners_all_wake() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 0));
        let woke = Rc::new(Cell::new(0u32));
        for cpu in 0..40u32 {
            let (w1, k) = (Rc::clone(&w), Rc::clone(&woke));
            sim.spawn_on(CpuId(cpu), move |t| async move {
                w1.wait_while(&t, |v| v == 0).await;
                k.set(k.get() + 1);
            });
        }
        let w2 = Rc::clone(&w);
        sim.spawn_on(CpuId(79), move |t| async move {
            t.advance(50_000).await;
            w2.store(&t, 1).await;
        });
        let stats = sim.run();
        assert_eq!(woke.get(), 40);
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn failed_cas_preserves_watchers() {
        let sim = SimBuilder::new().build();
        let w = Rc::new(SimWord::new(&sim, 0));
        let done = Rc::new(Cell::new(false));
        let (w1, d1) = (Rc::clone(&w), Rc::clone(&done));
        sim.spawn_on(CpuId(0), move |t| async move {
            w1.wait_while(&t, |v| v != 9).await;
            d1.set(true);
        });
        let w2 = Rc::clone(&w);
        sim.spawn_on(CpuId(11), move |t| async move {
            t.advance(1_000).await;
            // Failed CAS: does not change the value, must not strand the
            // waiter forever (watchers preserved).
            let _ = w2.compare_exchange(&t, 5, 6).await;
            t.advance(1_000).await;
            w2.store(&t, 9).await;
        });
        let stats = sim.run();
        assert!(done.get());
        assert!(stats.stuck_tasks.is_empty());
    }

    #[test]
    fn cells_share_lines_when_requested() {
        let sim = SimBuilder::new().build();
        let a: SimCell<u32> = SimCell::new(&sim, 0);
        let b: SimCell<u8> = SimCell::new_on_line_of(&a, 0);
        assert_eq!(a.line(), b.line());
        let c: SimCell<u32> = SimCell::new(&sim, 0);
        assert_ne!(a.line(), c.line());
    }
}
